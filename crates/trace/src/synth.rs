//! Seeded synthetic trace generators.
//!
//! These generators produce the controlled branch behaviors used throughout
//! the test suite, the benches and the examples: counted loop nests (the
//! behavior that makes the paper's floating-point benchmarks nearly
//! perfectly predictable), biased coins (irregular data-dependent branches),
//! fixed repeating patterns (the case the two-level predictor learns
//! exactly), correlated branches (where global history beats per-branch
//! counters), and per-branch Markov chains.
//!
//! All randomized generators take an explicit seed and are fully
//! deterministic.

use crate::rng::SmallRng;

use crate::record::BranchRecord;
use crate::trace::Trace;

/// Base code address used for synthetic branch pcs.
const CODE_BASE: u64 = 0x1_0000;
/// Synthetic branches are spaced this many bytes apart (one 4-byte
/// instruction word, so branch addresses are dense the way real code is —
/// this matters for the set-indexing of practical branch history tables).
const PC_STRIDE: u64 = 4;
/// Synthetic instructions elapsing between consecutive branches.
const INSTS_PER_BRANCH: u64 = 4;

fn synth_pc(index: usize) -> u64 {
    CODE_BASE + index as u64 * PC_STRIDE
}

/// A counted loop nest, innermost loop last.
///
/// `LoopNest::new(&[10, 50])` models
/// `for i in 0..10 { for j in 0..50 { .. } }`: each loop level contributes
/// one backward conditional branch that is taken on every iteration except
/// the last. This is the regular behavior of the paper's `matrix300` /
/// `tomcatv` style benchmarks.
///
/// # Example
///
/// ```
/// use tlabp_trace::synth::LoopNest;
///
/// let trace = LoopNest::new(&[3, 4]).generate();
/// // Inner branch executes 3*4 times, outer 3 times.
/// assert_eq!(trace.conditional_branches().count(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    counts: Vec<u64>,
}

impl LoopNest {
    /// Creates a loop nest with the given per-level iteration counts
    /// (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or any count is zero.
    #[must_use]
    pub fn new(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "loop nest needs at least one level");
        assert!(counts.iter().all(|&c| c > 0), "loop counts must be positive");
        LoopNest { counts: counts.to_vec() }
    }

    /// Generates the trace for one complete execution of the nest.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut trace = Trace::new();
        let mut instret = 0;
        self.run_level(0, &mut trace, &mut instret);
        trace.set_total_instructions(instret + INSTS_PER_BRANCH);
        trace
    }

    fn run_level(&self, level: usize, trace: &mut Trace, instret: &mut u64) {
        let pc = synth_pc(level);
        let target = pc.saturating_sub(PC_STRIDE / 2); // backward branch
        for i in 0..self.counts[level] {
            if level + 1 < self.counts.len() {
                self.run_level(level + 1, trace, instret);
            }
            *instret += INSTS_PER_BRANCH;
            let taken = i + 1 != self.counts[level];
            trace.push(BranchRecord::conditional(pc, taken, target, *instret));
        }
    }
}

/// Independent biased coin flips for a set of static branches.
///
/// Each of `branches` static conditional branches is visited round-robin;
/// branch *i* is taken with probability `taken_prob[i]`. This models the
/// irregular, data-dependent branches of the paper's integer benchmarks,
/// for which history-based prediction is hardest.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasedCoins {
    taken_prob: Vec<f64>,
    occurrences: usize,
    seed: u64,
}

impl BiasedCoins {
    /// Creates a generator with one probability per static branch.
    ///
    /// `occurrences` is the number of dynamic executions *per branch*.
    ///
    /// # Panics
    ///
    /// Panics if `taken_prob` is empty or contains values outside `[0, 1]`.
    #[must_use]
    pub fn new(taken_prob: &[f64], occurrences: usize, seed: u64) -> Self {
        assert!(!taken_prob.is_empty(), "need at least one branch");
        assert!(
            taken_prob.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must be in [0, 1]"
        );
        BiasedCoins { taken_prob: taken_prob.to_vec(), occurrences, seed }
    }

    /// Creates a generator where every branch has the same taken probability.
    #[must_use]
    pub fn uniform(branches: usize, taken_prob: f64, occurrences: usize, seed: u64) -> Self {
        BiasedCoins::new(&vec![taken_prob; branches], occurrences, seed)
    }

    /// Generates the trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut trace = Trace::new();
        let mut instret = 0;
        for _ in 0..self.occurrences {
            for (i, &p) in self.taken_prob.iter().enumerate() {
                instret += INSTS_PER_BRANCH;
                let pc = synth_pc(i);
                let taken = rng.random_bool(p);
                trace.push(BranchRecord::conditional(pc, taken, pc + PC_STRIDE * 4, instret));
            }
        }
        trace
    }
}

/// A single static branch that repeats a fixed outcome pattern.
///
/// This is the canonical demonstration of the paper's mechanism: once the
/// pattern history table has seen each k-bit history of the pattern, a
/// two-level predictor with history length ≥ the pattern's "distinguishing
/// length" predicts it perfectly, while a per-branch two-bit counter cannot.
///
/// # Example
///
/// ```
/// use tlabp_trace::synth::RepeatingPattern;
///
/// // Alternating taken / not-taken.
/// let trace = RepeatingPattern::new(&[true, false], 100).generate();
/// assert_eq!(trace.conditional_branches().count(), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatingPattern {
    pattern: Vec<bool>,
    repetitions: usize,
}

impl RepeatingPattern {
    /// Creates a generator repeating `pattern` `repetitions` times.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    #[must_use]
    pub fn new(pattern: &[bool], repetitions: usize) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        RepeatingPattern { pattern: pattern.to_vec(), repetitions }
    }

    /// Generates the trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut trace = Trace::new();
        let mut instret = 0;
        let pc = synth_pc(0);
        for _ in 0..self.repetitions {
            for &taken in &self.pattern {
                instret += INSTS_PER_BRANCH;
                trace.push(BranchRecord::conditional(pc, taken, pc + PC_STRIDE, instret));
            }
        }
        trace
    }
}

/// Correlated branches: the outcome of the last branch is a boolean
/// function of the two feeder branches before it.
///
/// Each round executes three static branches: two independent "feeder"
/// branches whose outcomes are random coin flips, and one "dependent"
/// branch whose outcome is `feeder_a XOR feeder_b` (or `AND` / `OR`).
/// Per-branch schemes with no pattern history (e.g. a branch target buffer
/// of two-bit counters) cannot exceed 50% on the XOR dependent branch, while
/// a global-history two-level predictor learns it exactly — the behavior
/// the paper attributes to inter-branch correlation captured by GAg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    /// Dependent branch taken iff exactly one feeder was taken.
    Xor,
    /// Dependent branch taken iff both feeders were taken.
    And,
    /// Dependent branch taken iff at least one feeder was taken.
    Or,
}

/// Generator for correlated-branch traces; see [`Correlation`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedBranches {
    correlation: Correlation,
    rounds: usize,
    feeder_taken_prob: f64,
    seed: u64,
}

impl CorrelatedBranches {
    /// Creates a generator running `rounds` rounds of two feeders plus one
    /// dependent branch, feeders taken with probability `feeder_taken_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `feeder_taken_prob` is outside `[0, 1]`.
    #[must_use]
    pub fn new(correlation: Correlation, rounds: usize, feeder_taken_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&feeder_taken_prob), "probability must be in [0, 1]");
        CorrelatedBranches { correlation, rounds, feeder_taken_prob, seed }
    }

    /// Generates the trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut trace = Trace::new();
        let mut instret = 0;
        for _ in 0..self.rounds {
            let a = rng.random_bool(self.feeder_taken_prob);
            let b = rng.random_bool(self.feeder_taken_prob);
            let dep = match self.correlation {
                Correlation::Xor => a ^ b,
                Correlation::And => a && b,
                Correlation::Or => a || b,
            };
            for (i, taken) in [(0usize, a), (1, b), (2, dep)] {
                instret += INSTS_PER_BRANCH;
                let pc = synth_pc(i);
                trace.push(BranchRecord::conditional(pc, taken, pc + PC_STRIDE, instret));
            }
        }
        trace
    }
}

/// Per-branch two-state Markov chains.
///
/// Each static branch holds a hidden taken/not-taken state; after each
/// execution it stays in its state with probability `persistence` and flips
/// otherwise. High persistence produces long runs (phase-like behavior,
/// favorable to counters); persistence near 0 produces alternation
/// (favorable to history-based prediction).
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovBranches {
    branches: usize,
    persistence: f64,
    occurrences: usize,
    seed: u64,
}

impl MarkovBranches {
    /// Creates a generator with `branches` static branches executed
    /// round-robin `occurrences` times each.
    ///
    /// # Panics
    ///
    /// Panics if `branches == 0` or `persistence` is outside `[0, 1]`.
    #[must_use]
    pub fn new(branches: usize, persistence: f64, occurrences: usize, seed: u64) -> Self {
        assert!(branches > 0, "need at least one branch");
        assert!((0.0..=1.0).contains(&persistence), "persistence must be in [0, 1]");
        MarkovBranches { branches, persistence, occurrences, seed }
    }

    /// Generates the trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut state: Vec<bool> = (0..self.branches).map(|_| rng.random_bool(0.5)).collect();
        let mut trace = Trace::new();
        let mut instret = 0;
        for _ in 0..self.occurrences {
            for (i, s) in state.iter_mut().enumerate() {
                instret += INSTS_PER_BRANCH;
                let pc = synth_pc(i);
                trace.push(BranchRecord::conditional(pc, *s, pc + PC_STRIDE, instret));
                if !rng.random_bool(self.persistence) {
                    *s = !*s;
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_nest_counts_and_directions() {
        let trace = LoopNest::new(&[3]).generate();
        let dirs: Vec<bool> = trace.conditional_branches().map(|b| b.taken).collect();
        assert_eq!(dirs, vec![true, true, false]);
        assert!(trace.conditional_branches().all(|b| b.is_backward()));
    }

    #[test]
    fn nested_loop_inner_executions() {
        let trace = LoopNest::new(&[2, 5]).generate();
        let inner_pc = synth_pc(1);
        let inner: Vec<bool> =
            trace.conditional_branches().filter(|b| b.pc == inner_pc).map(|b| b.taken).collect();
        assert_eq!(inner.len(), 10);
        // Inner loop exits (not taken) exactly twice, once per outer iteration.
        assert_eq!(inner.iter().filter(|&&t| !t).count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn loop_nest_rejects_zero_count() {
        let _ = LoopNest::new(&[3, 0]);
    }

    #[test]
    fn biased_coins_deterministic_and_biased() {
        let gen = BiasedCoins::uniform(4, 0.9, 500, 7);
        let a = gen.generate();
        let b = gen.generate();
        assert_eq!(a, b, "same seed must give identical traces");
        let taken = a.conditional_branches().filter(|br| br.taken).count();
        let total = a.conditional_branches().count();
        assert_eq!(total, 2000);
        let rate = taken as f64 / total as f64;
        assert!((0.85..=0.95).contains(&rate), "rate {rate} not near 0.9");
    }

    #[test]
    fn different_seeds_differ() {
        let a = BiasedCoins::uniform(2, 0.5, 100, 1).generate();
        let b = BiasedCoins::uniform(2, 0.5, 100, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn repeating_pattern_is_exact() {
        let trace = RepeatingPattern::new(&[true, true, false], 4).generate();
        let dirs: Vec<bool> = trace.conditional_branches().map(|b| b.taken).collect();
        assert_eq!(dirs.len(), 12);
        assert_eq!(&dirs[..3], &[true, true, false]);
        assert_eq!(&dirs[9..], &[true, true, false]);
    }

    #[test]
    fn correlated_xor_holds_every_round() {
        let trace = CorrelatedBranches::new(Correlation::Xor, 200, 0.5, 3).generate();
        let branches: Vec<_> = trace.conditional_branches().collect();
        assert_eq!(branches.len(), 600);
        for round in branches.chunks(3) {
            assert_eq!(round[2].taken, round[0].taken ^ round[1].taken);
        }
    }

    #[test]
    fn correlated_and_or_semantics() {
        for (corr, f) in [
            (Correlation::And, (|a, b| a && b) as fn(bool, bool) -> bool),
            (Correlation::Or, |a, b| a || b),
        ] {
            let trace = CorrelatedBranches::new(corr, 50, 0.5, 11).generate();
            for round in trace.conditional_branches().collect::<Vec<_>>().chunks(3) {
                assert_eq!(round[2].taken, f(round[0].taken, round[1].taken));
            }
        }
    }

    #[test]
    fn markov_high_persistence_has_long_runs() {
        let trace = MarkovBranches::new(1, 0.98, 2000, 5).generate();
        let dirs: Vec<bool> = trace.conditional_branches().map(|b| b.taken).collect();
        let flips = dirs.windows(2).filter(|w| w[0] != w[1]).count();
        // Expected flips ≈ 2000 * 0.02 = 40; allow generous slack.
        assert!(flips < 120, "too many flips for persistence 0.98: {flips}");
    }

    #[test]
    fn instret_is_strictly_increasing() {
        let trace = CorrelatedBranches::new(Correlation::Xor, 20, 0.4, 9).generate();
        let instrets: Vec<u64> = trace.iter().map(|e| e.instret()).collect();
        assert!(instrets.windows(2).all(|w| w[0] < w[1]));
    }
}
