//! Trace substrate for the Two-Level Adaptive Branch Prediction reproduction.
//!
//! The original study (Yeh & Patt, *Alternative Implementations of Two-Level
//! Adaptive Branch Prediction*) drove its branch-prediction simulator with
//! instruction/address traces produced by a Motorola 88100 instruction-level
//! simulator running the SPEC'89 benchmarks. This crate provides the
//! equivalent plumbing for our reproduction:
//!
//! * [`BranchRecord`] / [`TraceEvent`] — the events a trace generator emits
//!   and a predictor simulator consumes: branches (with class, direction and
//!   target) and traps (used to trigger simulated context switches), each
//!   stamped with the cumulative dynamic instruction count.
//! * [`Trace`] — an in-memory event sequence with query helpers.
//! * [`PackedCond`] / [`InternedConds`] — compact conditional-branch
//!   streams for the simulator's fast paths: 8 bytes per event, and a
//!   pc-interned 4-byte form whose dense ids let per-address predictor
//!   state become direct vector indexing.
//! * [`PatternStream`] — a materialized first-level (pattern, outcome)
//!   stream: the simulator derives it once per first-level signature and
//!   replays second-level (PHT automaton) variants over it.
//! * [`io`] — a compact binary on-disk format with a versioned header.
//! * [`synth`] — seeded synthetic trace generators (loops, biased coins,
//!   repeating patterns, correlated branches, Markov chains) used by unit
//!   tests, property tests, benches and the examples.
//! * [`stats`] — the branch-mix statistics behind the paper's Figure 4 and
//!   the static-branch counts behind Table 1.
//!
//! # Example
//!
//! ```
//! use tlabp_trace::synth::LoopNest;
//! use tlabp_trace::stats::BranchMix;
//!
//! // A doubly nested loop: 10 outer iterations of a 50-iteration inner loop.
//! let trace = LoopNest::new(&[10, 50]).generate();
//! let mix = BranchMix::from_trace(&trace);
//! assert!(mix.conditional > 0);
//! assert!(trace.conditional_branches().count() > 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod intern;
mod pattern_stream;
mod record;
mod trace;

pub mod import;
pub mod io;
pub mod rng;
pub mod stats;
pub mod synth;

pub use intern::{InternedCond, InternedConds};
pub use pattern_stream::{PatternStream, MAX_PATTERN_BITS};
pub use record::{BranchClass, BranchRecord, TrapRecord};
pub use trace::{PackedCond, Trace, TraceEvent};
