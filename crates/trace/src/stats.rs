//! Trace statistics: the branch-class mix of Figure 4 and the
//! static-conditional-branch counts of Table 1.

use std::collections::HashSet;

use crate::record::BranchClass;
use crate::trace::Trace;

/// Dynamic branch-class distribution of a trace (the paper's Figure 4).
///
/// The paper observes that roughly 80 percent of dynamic branches are
/// conditional, which is why conditional-branch prediction is the mechanism
/// that matters most.
///
/// # Example
///
/// ```
/// use tlabp_trace::synth::LoopNest;
/// use tlabp_trace::stats::BranchMix;
///
/// let mix = BranchMix::from_trace(&LoopNest::new(&[100]).generate());
/// assert_eq!(mix.total(), 100);
/// assert_eq!(mix.fraction(tlabp_trace::BranchClass::Conditional), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchMix {
    /// Dynamic conditional branches.
    pub conditional: u64,
    /// Dynamic unconditional jumps.
    pub unconditional: u64,
    /// Dynamic calls.
    pub calls: u64,
    /// Dynamic returns.
    pub returns: u64,
}

impl BranchMix {
    /// Tallies the branch classes of a trace.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut mix = BranchMix::default();
        for branch in trace.branches() {
            match branch.class {
                BranchClass::Conditional => mix.conditional += 1,
                BranchClass::Unconditional => mix.unconditional += 1,
                BranchClass::Call => mix.calls += 1,
                BranchClass::Return => mix.returns += 1,
            }
        }
        mix
    }

    /// Total dynamic branches of all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.conditional + self.unconditional + self.calls + self.returns
    }

    /// Count for one class.
    #[must_use]
    pub fn count(&self, class: BranchClass) -> u64 {
        match class {
            BranchClass::Conditional => self.conditional,
            BranchClass::Unconditional => self.unconditional,
            BranchClass::Call => self.calls,
            BranchClass::Return => self.returns,
        }
    }

    /// Fraction of dynamic branches in `class` (0 if the trace has no
    /// branches).
    #[must_use]
    pub fn fraction(&self, class: BranchClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64
        }
    }
}

/// Summary statistics for one trace, as reported in the paper's Section 4.1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceSummary {
    /// Number of distinct static conditional branch addresses (Table 1).
    pub static_conditional_branches: usize,
    /// Number of dynamic conditional branch executions.
    pub dynamic_conditional_branches: u64,
    /// Fraction of dynamic conditional branches that were taken.
    pub taken_rate: f64,
    /// Fraction of all dynamic instructions that were branches.
    pub branch_instruction_fraction: f64,
    /// Dynamic branch-class mix (Figure 4).
    pub mix: BranchMix,
    /// Number of trap events (context-switch triggers).
    pub traps: u64,
    /// Total dynamic instructions.
    pub total_instructions: u64,
}

impl TraceSummary {
    /// Computes the summary for a trace.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mix = BranchMix::from_trace(trace);
        let mut statics = HashSet::new();
        let mut dynamic = 0u64;
        let mut taken = 0u64;
        for branch in trace.conditional_branches() {
            statics.insert(branch.pc);
            dynamic += 1;
            taken += u64::from(branch.taken);
        }
        let traps = trace.iter().filter(|e| e.as_branch().is_none()).count() as u64;
        let total_instructions = trace.total_instructions();
        TraceSummary {
            static_conditional_branches: statics.len(),
            dynamic_conditional_branches: dynamic,
            taken_rate: if dynamic == 0 { 0.0 } else { taken as f64 / dynamic as f64 },
            branch_instruction_fraction: if total_instructions == 0 {
                0.0
            } else {
                mix.total() as f64 / total_instructions as f64
            },
            mix,
            traps,
            total_instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchRecord, TrapRecord};
    use crate::synth::{BiasedCoins, LoopNest};

    #[test]
    fn mix_counts_each_class() {
        let mut trace = Trace::new();
        trace.push(BranchRecord::conditional(0x10, true, 0x4, 1));
        trace.push(BranchRecord::unconditional(0x20, BranchClass::Unconditional, 0x60, 2));
        trace.push(BranchRecord::unconditional(0x60, BranchClass::Call, 0x100, 3));
        trace.push(BranchRecord::unconditional(0x108, BranchClass::Return, 0x64, 4));
        trace.push(BranchRecord::conditional(0x10, false, 0x4, 5));

        let mix = BranchMix::from_trace(&trace);
        assert_eq!(mix.conditional, 2);
        assert_eq!(mix.unconditional, 1);
        assert_eq!(mix.calls, 1);
        assert_eq!(mix.returns, 1);
        assert_eq!(mix.total(), 5);
        assert!((mix.fraction(BranchClass::Conditional) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_zero_fractions() {
        let mix = BranchMix::from_trace(&Trace::new());
        assert_eq!(mix.total(), 0);
        assert_eq!(mix.fraction(BranchClass::Call), 0.0);
    }

    #[test]
    fn summary_counts_static_branches() {
        let trace = BiasedCoins::uniform(17, 0.5, 10, 1).generate();
        let summary = TraceSummary::from_trace(&trace);
        assert_eq!(summary.static_conditional_branches, 17);
        assert_eq!(summary.dynamic_conditional_branches, 170);
    }

    #[test]
    fn summary_taken_rate_for_loop() {
        // 100-iteration loop: 99 taken, 1 not taken.
        let summary = TraceSummary::from_trace(&LoopNest::new(&[100]).generate());
        assert!((summary.taken_rate - 0.99).abs() < 1e-12);
    }

    #[test]
    fn summary_counts_traps() {
        let mut trace = Trace::new();
        trace.push(BranchRecord::conditional(0x10, true, 0x4, 1));
        trace.push(TrapRecord::new(0x20, 2));
        trace.push(TrapRecord::new(0x24, 3));
        let summary = TraceSummary::from_trace(&trace);
        assert_eq!(summary.traps, 2);
    }

    #[test]
    fn branch_fraction_uses_total_instructions() {
        let mut trace = Trace::new();
        trace.push(BranchRecord::conditional(0x10, true, 0x4, 10));
        trace.set_total_instructions(100);
        let summary = TraceSummary::from_trace(&trace);
        assert!((summary.branch_instruction_fraction - 0.01).abs() < 1e-12);
    }
}
