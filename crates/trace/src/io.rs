//! Compact binary serialization for traces.
//!
//! The format is little-endian with a versioned header:
//!
//! ```text
//! magic   : 4 bytes  = b"TLBP"
//! version : u16      = 1
//! count   : u64      number of events
//! total   : u64      total dynamic instructions
//! events  : count records
//! ```
//!
//! Each event is one tag byte followed by its payload:
//!
//! ```text
//! tag 0..=3 (branch, tag = BranchClass): pc u64, taken u8, target u64, instret u64
//! tag 255   (trap):                      pc u64, instret u64
//! ```
//!
//! # Example
//!
//! ```
//! use tlabp_trace::io::{read_trace, write_trace};
//! use tlabp_trace::synth::LoopNest;
//!
//! let trace = LoopNest::new(&[4, 4]).generate();
//! let bytes = write_trace(&trace);
//! let back = read_trace(&bytes)?;
//! assert_eq!(trace, back);
//! # Ok::<(), tlabp_trace::io::ReadTraceError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::record::{BranchClass, BranchRecord, TrapRecord};
use crate::trace::{Trace, TraceEvent};

/// File magic identifying the trace format.
pub const MAGIC: &[u8; 4] = b"TLBP";
/// Current format version.
pub const VERSION: u16 = 1;

const TRAP_TAG: u8 = 255;

/// Error produced when decoding a binary trace fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadTraceError {
    /// The buffer did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found (zero-padded if short).
        found: [u8; 4],
    },
    /// The header declared an unsupported version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer ended before the declared number of events was read.
    Truncated {
        /// Index of the event being decoded when input ran out.
        at_event: u64,
    },
    /// An event carried an unknown tag byte.
    UnknownTag {
        /// The offending tag.
        tag: u8,
        /// Index of the event with the bad tag.
        at_event: u64,
    },
    /// Decoded events were not monotonically ordered by `instret`.
    NonMonotonic {
        /// Index of the out-of-order event.
        at_event: u64,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}, expected {MAGIC:?}")
            }
            ReadTraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found}, expected {VERSION}")
            }
            ReadTraceError::Truncated { at_event } => {
                write!(f, "trace truncated while decoding event {at_event}")
            }
            ReadTraceError::UnknownTag { tag, at_event } => {
                write!(f, "unknown event tag {tag} at event {at_event}")
            }
            ReadTraceError::NonMonotonic { at_event } => {
                write!(f, "event {at_event} has instret lower than its predecessor")
            }
        }
    }
}

impl Error for ReadTraceError {}

/// Serializes a trace into the binary format.
///
/// The inverse of [`read_trace`]; the two round-trip exactly.
#[must_use]
pub fn write_trace(trace: &Trace) -> Vec<u8> {
    // Header + worst-case 26 bytes per event.
    let mut buf = Vec::with_capacity(22 + trace.len() * 26);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    buf.extend_from_slice(&trace.total_instructions().to_le_bytes());
    for event in trace.events() {
        match *event {
            TraceEvent::Branch(b) => {
                buf.push(b.class.to_tag());
                buf.extend_from_slice(&b.pc.to_le_bytes());
                buf.push(u8::from(b.taken));
                buf.extend_from_slice(&b.target.to_le_bytes());
                buf.extend_from_slice(&b.instret.to_le_bytes());
            }
            TraceEvent::Trap(t) => {
                buf.push(TRAP_TAG);
                buf.extend_from_slice(&t.pc.to_le_bytes());
                buf.extend_from_slice(&t.instret.to_le_bytes());
            }
        }
    }
    buf
}

/// Deserializes a trace from the binary format produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ReadTraceError`] if the magic or version do not match, the
/// buffer is truncated, an event tag is unknown, or events are not ordered
/// by instruction count.
pub fn read_trace(bytes: &[u8]) -> Result<Trace, ReadTraceError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 || &bytes[..4] != MAGIC {
        let mut found = [0u8; 4];
        let n = cur.remaining().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(ReadTraceError::BadMagic { found });
    }
    cur.pos = 4;
    if cur.remaining() < 2 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let version = cur.get_u16_le();
    if version != VERSION {
        return Err(ReadTraceError::UnsupportedVersion { found: version });
    }
    if cur.remaining() < 16 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let count = cur.get_u64_le();
    let total = cur.get_u64_le();

    let capacity = usize::try_from(count).unwrap_or(usize::MAX).min(1 << 24);
    let mut trace = Trace::with_capacity(capacity);
    let mut last_instret = 0u64;
    for i in 0..count {
        if cur.remaining() < 1 {
            return Err(ReadTraceError::Truncated { at_event: i });
        }
        let tag = cur.get_u8();
        let event = if tag == TRAP_TAG {
            if cur.remaining() < 16 {
                return Err(ReadTraceError::Truncated { at_event: i });
            }
            let pc = cur.get_u64_le();
            let instret = cur.get_u64_le();
            TraceEvent::Trap(TrapRecord::new(pc, instret))
        } else {
            let class = BranchClass::from_tag(tag)
                .ok_or(ReadTraceError::UnknownTag { tag, at_event: i })?;
            if cur.remaining() < 25 {
                return Err(ReadTraceError::Truncated { at_event: i });
            }
            let pc = cur.get_u64_le();
            let taken = cur.get_u8() != 0;
            let target = cur.get_u64_le();
            let instret = cur.get_u64_le();
            TraceEvent::Branch(BranchRecord { pc, class, taken, target, instret })
        };
        if event.instret() < last_instret {
            return Err(ReadTraceError::NonMonotonic { at_event: i });
        }
        last_instret = event.instret();
        trace.push(event);
    }
    if total >= last_instret {
        trace.set_total_instructions(total);
    }
    Ok(trace)
}

/// A minimal little-endian read cursor over a byte slice (replaces the
/// external `bytes` crate so the build has no registry dependencies).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.bytes[self.pos];
        self.pos += 1;
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.bytes[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x1000, true, 0x0f00, 10));
        t.push(BranchRecord::unconditional(0x0f10, BranchClass::Call, 0x4000, 14));
        t.push(TrapRecord::new(0x4004, 20));
        t.push(BranchRecord::unconditional(0x4010, BranchClass::Return, 0x0f14, 25));
        t.push(BranchRecord::conditional(0x1000, false, 0x0f00, 31));
        t.set_total_instructions(40);
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let bytes = write_trace(&t);
        let back = read_trace(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let back = read_trace(&write_trace(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(b"NOPE....").unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic { .. }));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = write_trace(&sample_trace());
        bytes[4] = 99;
        let err = read_trace(&bytes).unwrap_err();
        assert_eq!(err, ReadTraceError::UnsupportedVersion { found: 99 });
    }

    #[test]
    fn rejects_truncation_mid_event() {
        let bytes = write_trace(&sample_trace());
        let cut = &bytes[..bytes.len() - 5];
        let err = read_trace(cut).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated { .. }));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut bytes = write_trace(&sample_trace());
        // First event tag lives right after the 22-byte header.
        bytes[22] = 42;
        let err = read_trace(&bytes).unwrap_err();
        assert_eq!(err, ReadTraceError::UnknownTag { tag: 42, at_event: 0 });
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ReadTraceError::Truncated { at_event: 7 }.to_string();
        assert!(msg.contains("event 7"));
    }
}
