//! Compact binary serialization for traces and derived trace artifacts.
//!
//! Two little-endian formats share the `b"TLBP"` magic and a version
//! field:
//!
//! **Version 1** — a bare event trace:
//!
//! ```text
//! magic   : 4 bytes  = b"TLBP"
//! version : u16      = 1
//! count   : u64      number of events
//! total   : u64      total dynamic instructions
//! events  : count records
//! ```
//!
//! Each event is one tag byte followed by its payload:
//!
//! ```text
//! tag 0..=3 (branch, tag = BranchClass): pc u64, taken u8, target u64, instret u64
//! tag 255   (trap):                      pc u64, instret u64
//! ```
//!
//! **Version 2** — the artifact container behind the disk tier of the
//! simulator's trace store: the raw trace *plus* every derived form
//! (packed conditional stream, pc-interned stream, materialized
//! first-level pattern streams), so a warm cache hit restores the whole
//! derivation chain without re-running the VM or any derivation pass:
//!
//! ```text
//! magic       : 4 bytes = b"TLBP"
//! version     : u16     = 2
//! fingerprint : u64     workload-codegen fingerprint (caller-defined)
//! sections    : u32     number of sections
//! per section:
//!   kind      : u8      1 trace, 2 packed, 3 interned, 4 pattern stream
//!   len       : u64     payload byte length
//!   payload   : len bytes
//!   checksum  : u64     fx-fold of the payload (see [`checksum`])
//! ```
//!
//! Every section is independently length-prefixed and checksummed;
//! [`read_artifacts`] rejects truncation at any byte boundary, any
//! checksum mismatch, trailing bytes, and any payload whose decoded
//! parts fail the owning container's structural validation
//! ([`InternedConds::from_raw_parts`],
//! [`PatternStream::from_raw_parts`]). A reader that cannot prove a file
//! intact never yields a bundle — the disk tier falls back to
//! regeneration instead of risking wrong numbers.
//!
//! A third format, the **memo artifact** (`b"TLBM"`, [`write_memo`] /
//! [`read_memo`]), stores one memoized service response — the canonical
//! plan JSON plus its pre-encoded result-frame payloads — with the same
//! per-section checksum discipline, so the sweep daemon's persistent
//! memo tier inherits the container's torn/corrupt-file guarantees.
//!
//! The module also exports the filesystem discipline those tiers share:
//! [`write_file_atomic`] (unique temp file + rename, readers never see a
//! partial file) and [`FileLock`] (advisory cross-process lock file with
//! stale-lock scavenging).
//!
//! # Example
//!
//! ```
//! use tlabp_trace::io::{read_trace, write_trace};
//! use tlabp_trace::synth::LoopNest;
//!
//! let trace = LoopNest::new(&[4, 4]).generate();
//! let bytes = write_trace(&trace);
//! let back = read_trace(&bytes)?;
//! assert_eq!(trace, back);
//! # Ok::<(), tlabp_trace::io::ReadTraceError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::intern::{InternedCond, InternedConds};
use crate::pattern_stream::PatternStream;
use crate::record::{BranchClass, BranchRecord, TrapRecord};
use crate::trace::{PackedCond, Trace, TraceEvent};

/// File magic identifying the trace format.
pub const MAGIC: &[u8; 4] = b"TLBP";
/// Version of the bare-trace format ([`write_trace`] / [`read_trace`]).
pub const VERSION: u16 = 1;
/// Version of the artifact container ([`write_artifacts`] /
/// [`read_artifacts`]).
pub const ARTIFACT_VERSION: u16 = 2;

const TRAP_TAG: u8 = 255;

/// Section kind tags of the v2 artifact container.
mod section {
    pub const TRACE: u8 = 1;
    pub const PACKED: u8 = 2;
    pub const INTERNED: u8 = 3;
    pub const STREAM: u8 = 4;
}

/// Error produced when decoding a binary trace fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadTraceError {
    /// The buffer did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found (zero-padded if short).
        found: [u8; 4],
    },
    /// The header declared an unsupported version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer ended before the declared number of events was read.
    Truncated {
        /// Index of the event being decoded when input ran out.
        at_event: u64,
    },
    /// An event carried an unknown tag byte.
    UnknownTag {
        /// The offending tag.
        tag: u8,
        /// Index of the event with the bad tag.
        at_event: u64,
    },
    /// Decoded events were not monotonically ordered by `instret`.
    NonMonotonic {
        /// Index of the out-of-order event.
        at_event: u64,
    },
    /// An artifact section's stored checksum did not match its payload.
    SectionChecksum {
        /// The section's kind tag.
        kind: u8,
    },
    /// An artifact section's payload decoded but failed structural
    /// validation (e.g. an interned id outside the pc table).
    BadSection {
        /// The section's kind tag.
        kind: u8,
    },
    /// Bytes remained after the last declared artifact section.
    TrailingBytes {
        /// Number of unexpected trailing bytes.
        count: usize,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}, expected {MAGIC:?}")
            }
            ReadTraceError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found} (bare trace is {VERSION}, \
                     artifact container is {ARTIFACT_VERSION})"
                )
            }
            ReadTraceError::Truncated { at_event } => {
                write!(f, "trace truncated while decoding event {at_event}")
            }
            ReadTraceError::UnknownTag { tag, at_event } => {
                write!(f, "unknown event tag {tag} at event {at_event}")
            }
            ReadTraceError::NonMonotonic { at_event } => {
                write!(f, "event {at_event} has instret lower than its predecessor")
            }
            ReadTraceError::SectionChecksum { kind } => {
                write!(f, "artifact section kind {kind} failed its checksum")
            }
            ReadTraceError::BadSection { kind } => {
                write!(f, "artifact section kind {kind} failed structural validation")
            }
            ReadTraceError::TrailingBytes { count } => {
                write!(f, "{count} unexpected byte(s) after the last artifact section")
            }
        }
    }
}

impl Error for ReadTraceError {}

/// Serializes a trace into the binary format.
///
/// The inverse of [`read_trace`]; the two round-trip exactly.
#[must_use]
pub fn write_trace(trace: &Trace) -> Vec<u8> {
    // Header + worst-case 26 bytes per event.
    let mut buf = Vec::with_capacity(22 + trace.len() * 26);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    buf.extend_from_slice(&trace.total_instructions().to_le_bytes());
    for event in trace.events() {
        encode_event(&mut buf, event);
    }
    buf
}

/// Appends one event in the shared v1/v2 event encoding.
fn encode_event(buf: &mut Vec<u8>, event: &TraceEvent) {
    match *event {
        TraceEvent::Branch(b) => {
            buf.push(b.class.to_tag());
            buf.extend_from_slice(&b.pc.to_le_bytes());
            buf.push(u8::from(b.taken));
            buf.extend_from_slice(&b.target.to_le_bytes());
            buf.extend_from_slice(&b.instret.to_le_bytes());
        }
        TraceEvent::Trap(t) => {
            buf.push(TRAP_TAG);
            buf.extend_from_slice(&t.pc.to_le_bytes());
            buf.extend_from_slice(&t.instret.to_le_bytes());
        }
    }
}

/// Deserializes a trace from the binary format produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ReadTraceError`] if the magic or version do not match, the
/// buffer is truncated, an event tag is unknown, or events are not ordered
/// by instruction count.
pub fn read_trace(bytes: &[u8]) -> Result<Trace, ReadTraceError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 || &bytes[..4] != MAGIC {
        let mut found = [0u8; 4];
        let n = cur.remaining().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(ReadTraceError::BadMagic { found });
    }
    cur.pos = 4;
    if cur.remaining() < 2 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let version = cur.get_u16_le();
    if version != VERSION {
        return Err(ReadTraceError::UnsupportedVersion { found: version });
    }
    if cur.remaining() < 16 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let count = cur.get_u64_le();
    let total = cur.get_u64_le();
    decode_events(&mut cur, count, total)
}

/// Decodes `count` events in the shared v1/v2 encoding, enforcing
/// monotonic `instret` ordering, and applies the declared total.
fn decode_events(cur: &mut Cursor<'_>, count: u64, total: u64) -> Result<Trace, ReadTraceError> {
    let capacity = usize::try_from(count).unwrap_or(usize::MAX).min(1 << 24);
    let mut trace = Trace::with_capacity(capacity);
    let mut last_instret = 0u64;
    for i in 0..count {
        if cur.remaining() < 1 {
            return Err(ReadTraceError::Truncated { at_event: i });
        }
        let tag = cur.get_u8();
        let event = if tag == TRAP_TAG {
            if cur.remaining() < 16 {
                return Err(ReadTraceError::Truncated { at_event: i });
            }
            let pc = cur.get_u64_le();
            let instret = cur.get_u64_le();
            TraceEvent::Trap(TrapRecord::new(pc, instret))
        } else {
            let class = BranchClass::from_tag(tag)
                .ok_or(ReadTraceError::UnknownTag { tag, at_event: i })?;
            if cur.remaining() < 25 {
                return Err(ReadTraceError::Truncated { at_event: i });
            }
            let pc = cur.get_u64_le();
            let taken = cur.get_u8() != 0;
            let target = cur.get_u64_le();
            let instret = cur.get_u64_le();
            TraceEvent::Branch(BranchRecord { pc, class, taken, target, instret })
        };
        if event.instret() < last_instret {
            return Err(ReadTraceError::NonMonotonic { at_event: i });
        }
        last_instret = event.instret();
        trace.push(event);
    }
    if total >= last_instret {
        trace.set_total_instructions(total);
    }
    Ok(trace)
}

/// A checksum over `bytes`: the in-tree FxHash word fold (rotate, xor,
/// multiply by a golden-ratio constant) over 8-byte chunks, with the
/// length folded in last so zero-padding of the tail chunk cannot alias
/// a longer payload. Not cryptographic — it guards against torn writes,
/// truncation and bit rot in our own cache files, not an adversary.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let fold = |hash: u64, word: u64| (hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash = fold(hash, u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut word = [0u8; 8];
        word[..rest.len()].copy_from_slice(rest);
        hash = fold(hash, u64::from_le_bytes(word));
    }
    fold(hash, bytes.len() as u64)
}

/// The decoded contents of a v2 artifact container: whichever forms the
/// writer had materialized, plus the pattern streams keyed by the
/// caller's opaque stream-key encoding (the trace crate does not know
/// the simulator's first-level signatures — it stores the bytes
/// verbatim).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArtifactBundle {
    /// The workload-codegen fingerprint the writer recorded; readers
    /// compare it against the expected value and treat a mismatch as a
    /// stale artifact.
    pub fingerprint: u64,
    /// The raw event trace, if serialized.
    pub trace: Option<Trace>,
    /// The packed conditional-branch stream, if serialized.
    pub packed: Option<Vec<PackedCond>>,
    /// The pc-interned conditional stream, if serialized.
    pub interned: Option<InternedConds>,
    /// Materialized first-level pattern streams, each tagged with its
    /// opaque key bytes, in serialization order.
    pub streams: Vec<(Vec<u8>, PatternStream)>,
}

/// Serializes an artifact container: every form the caller hands in, in
/// a fixed section order (trace, packed, interned, streams), each
/// length-prefixed and checksummed.
///
/// The inverse of [`read_artifacts`]; the two round-trip exactly.
#[must_use]
pub fn write_artifacts(
    fingerprint: u64,
    trace: Option<&Trace>,
    packed: Option<&[PackedCond]>,
    interned: Option<&InternedConds>,
    streams: &[(Vec<u8>, &PatternStream)],
) -> Vec<u8> {
    let sections = usize::from(trace.is_some())
        + usize::from(packed.is_some())
        + usize::from(interned.is_some())
        + streams.len();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&u32::try_from(sections).expect("section count fits u32").to_le_bytes());

    if let Some(trace) = trace {
        let mut payload = Vec::with_capacity(16 + trace.len() * 26);
        payload.extend_from_slice(&(trace.len() as u64).to_le_bytes());
        payload.extend_from_slice(&trace.total_instructions().to_le_bytes());
        for event in trace.events() {
            encode_event(&mut payload, event);
        }
        push_section(&mut buf, section::TRACE, &payload);
    }
    if let Some(packed) = packed {
        let mut payload = Vec::with_capacity(8 + packed.len() * 8);
        payload.extend_from_slice(&(packed.len() as u64).to_le_bytes());
        for cond in packed {
            payload.extend_from_slice(&cond.bits().to_le_bytes());
        }
        push_section(&mut buf, section::PACKED, &payload);
    }
    if let Some(interned) = interned {
        let mut payload = Vec::with_capacity(16 + interned.len() * 4 + interned.pcs().len() * 8);
        payload.extend_from_slice(&(interned.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(interned.pcs().len() as u64).to_le_bytes());
        for event in interned.events() {
            payload.extend_from_slice(&event.bits().to_le_bytes());
        }
        for pc in interned.pcs() {
            payload.extend_from_slice(&pc.to_le_bytes());
        }
        push_section(&mut buf, section::INTERNED, &payload);
    }
    for (key, stream) in streams {
        let lanes = stream.lanes();
        let mut payload =
            Vec::with_capacity(2 + key.len() + 13 + stream.len() * 4 + lanes.len() * 4);
        payload.extend_from_slice(&u16::try_from(key.len()).expect("key fits u16").to_le_bytes());
        payload.extend_from_slice(key);
        payload.extend_from_slice(&stream.history_bits().to_le_bytes());
        payload.push(u8::from(stream.is_laned()));
        payload.extend_from_slice(&(stream.len() as u64).to_le_bytes());
        for &event in stream.events() {
            payload.extend_from_slice(&event.to_le_bytes());
        }
        for &lane in lanes {
            payload.extend_from_slice(&lane.to_le_bytes());
        }
        push_section(&mut buf, section::STREAM, &payload);
    }
    buf
}

fn push_section(buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&checksum(payload).to_le_bytes());
}

/// Deserializes a v2 artifact container produced by [`write_artifacts`].
///
/// # Errors
///
/// Returns a [`ReadTraceError`] if the magic or version do not match,
/// the buffer is truncated at any byte boundary, bytes trail the last
/// section, any section checksum mismatches, or any payload fails the
/// structural validation of its form. An `Err` means the file proves
/// nothing — callers fall back to regeneration.
pub fn read_artifacts(bytes: &[u8]) -> Result<ArtifactBundle, ReadTraceError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 || &bytes[..4] != MAGIC {
        let mut found = [0u8; 4];
        let n = cur.remaining().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(ReadTraceError::BadMagic { found });
    }
    cur.pos = 4;
    if cur.remaining() < 2 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let version = cur.get_u16_le();
    if version != ARTIFACT_VERSION {
        return Err(ReadTraceError::UnsupportedVersion { found: version });
    }
    if cur.remaining() < 12 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let mut bundle = ArtifactBundle { fingerprint: cur.get_u64_le(), ..ArtifactBundle::default() };
    let sections = cur.get_u32_le();
    for _ in 0..sections {
        if cur.remaining() < 9 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let kind = cur.get_u8();
        let len = cur.get_u64_le();
        let Ok(len) = usize::try_from(len) else {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        };
        if cur.remaining() < len + 8 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let payload = &bytes[cur.pos..cur.pos + len];
        cur.pos += len;
        let stored = cur.get_u64_le();
        if checksum(payload) != stored {
            return Err(ReadTraceError::SectionChecksum { kind });
        }
        decode_section(&mut bundle, kind, payload)?;
    }
    if cur.remaining() > 0 {
        return Err(ReadTraceError::TrailingBytes { count: cur.remaining() });
    }
    Ok(bundle)
}

/// Decodes one checksum-verified section payload into the bundle.
fn decode_section(
    bundle: &mut ArtifactBundle,
    kind: u8,
    payload: &[u8],
) -> Result<(), ReadTraceError> {
    let bad = ReadTraceError::BadSection { kind };
    let mut cur = Cursor { bytes: payload, pos: 0 };
    match kind {
        section::TRACE => {
            if cur.remaining() < 16 {
                return Err(bad);
            }
            let count = cur.get_u64_le();
            let total = cur.get_u64_le();
            let trace = decode_events(&mut cur, count, total)
                .map_err(|_| ReadTraceError::BadSection { kind })?;
            if cur.remaining() != 0 {
                return Err(bad);
            }
            bundle.trace = Some(trace);
        }
        section::PACKED => {
            if cur.remaining() < 8 {
                return Err(bad);
            }
            let count = cur.get_u64_le();
            if cur.remaining() as u64 != count.saturating_mul(8) {
                return Err(bad);
            }
            let packed =
                (0..count).map(|_| PackedCond::from_bits(cur.get_u64_le())).collect::<Vec<_>>();
            bundle.packed = Some(packed);
        }
        section::INTERNED => {
            if cur.remaining() < 16 {
                return Err(bad);
            }
            let events = cur.get_u64_le();
            let pcs = cur.get_u64_le();
            if cur.remaining() as u64 != events.saturating_mul(4) + pcs.saturating_mul(8) {
                return Err(bad);
            }
            let events: Vec<InternedCond> =
                (0..events).map(|_| InternedCond::from_bits(cur.get_u32_le())).collect();
            let pcs: Vec<u64> = (0..pcs).map(|_| cur.get_u64_le()).collect();
            bundle.interned = Some(InternedConds::from_raw_parts(events, pcs).ok_or(bad)?);
        }
        section::STREAM => {
            if cur.remaining() < 2 {
                return Err(bad);
            }
            let key_len = usize::from(cur.get_u16_le());
            if cur.remaining() < key_len {
                return Err(bad);
            }
            let key = payload[cur.pos..cur.pos + key_len].to_vec();
            cur.pos += key_len;
            if cur.remaining() < 13 {
                return Err(bad);
            }
            let history_bits = cur.get_u32_le();
            let laned = match cur.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(bad),
            };
            let count = cur.get_u64_le();
            let lanes_len = if laned { count } else { 0 };
            if cur.remaining() as u64 != (count + lanes_len).saturating_mul(4) {
                return Err(bad);
            }
            let events: Vec<u32> = (0..count).map(|_| cur.get_u32_le()).collect();
            let lanes: Vec<u32> = (0..lanes_len).map(|_| cur.get_u32_le()).collect();
            let stream =
                PatternStream::from_raw_parts(history_bits, events, lanes, laned).ok_or(bad)?;
            bundle.streams.push((key, stream));
        }
        _ => return Err(bad),
    }
    Ok(())
}

/// A minimal little-endian read cursor over a byte slice (replaces the
/// external `bytes` crate so the build has no registry dependencies).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.bytes[self.pos];
        self.pos += 1;
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.bytes[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
}

/// File magic identifying a memo artifact ([`write_memo`] /
/// [`read_memo`]): one memoized sweep-service response.
pub const MEMO_MAGIC: &[u8; 4] = b"TLBM";
/// Version of the memo artifact format.
pub const MEMO_VERSION: u16 = 1;

/// Section kind tags of the memo artifact.
mod memo_section {
    /// The canonical plan JSON (exactly one, first).
    pub const PLAN: u8 = 1;
    /// One pre-encoded result-frame payload (zero or more, in plan
    /// order).
    pub const FRAME: u8 = 2;
}

/// The decoded contents of a memo artifact: one memoized service
/// response keyed by the plan's wire hash and the fingerprints of the
/// workloads it measures.
///
/// The frames are the service's pre-encoded `result` frame *payloads*
/// (not whole lines): replaying the stored strings is what makes a
/// response served from this tier byte-identical to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoArtifact {
    /// `Plan::wire_hash` of the canonical plan JSON; part of the file
    /// name, repeated inside so a renamed file cannot impersonate
    /// another plan's response.
    pub plan_hash: u64,
    /// A fold over the codegen fingerprints of every workload the plan
    /// touches; a workload edit changes it, so stale responses are
    /// rejected by construction.
    pub fingerprint: u64,
    /// The canonical plan JSON — the daemon's memo key.
    pub plan: String,
    /// Pre-encoded result-frame payloads, in plan order.
    pub frames: Vec<String>,
}

/// Serializes a memo artifact: a fixed header, then the plan and every
/// frame as independently checksummed sections.
///
/// The inverse of [`read_memo`]; the two round-trip exactly.
///
/// ```text
/// magic     : 4 bytes = b"TLBM"
/// version   : u16     = 1
/// plan_hash : u64
/// fingerprint : u64
/// sections  : u32     = 1 + frames
/// per section:
///   kind    : u8      1 plan json, 2 frame payload
///   len     : u64     payload byte length
///   payload : len bytes (UTF-8)
///   checksum: u64     fx-fold of the payload (see [`checksum`])
/// ```
#[must_use]
pub fn write_memo(artifact: &MemoArtifact) -> Vec<u8> {
    let sections = 1 + artifact.frames.len();
    let mut buf = Vec::new();
    buf.extend_from_slice(MEMO_MAGIC);
    buf.extend_from_slice(&MEMO_VERSION.to_le_bytes());
    buf.extend_from_slice(&artifact.plan_hash.to_le_bytes());
    buf.extend_from_slice(&artifact.fingerprint.to_le_bytes());
    buf.extend_from_slice(&u32::try_from(sections).expect("section count fits u32").to_le_bytes());
    push_section(&mut buf, memo_section::PLAN, artifact.plan.as_bytes());
    for frame in &artifact.frames {
        push_section(&mut buf, memo_section::FRAME, frame.as_bytes());
    }
    buf
}

/// Deserializes a memo artifact produced by [`write_memo`].
///
/// # Errors
///
/// Returns a [`ReadTraceError`] if the magic or version do not match,
/// the buffer is truncated at any byte boundary, bytes trail the last
/// section, any section checksum mismatches, a section payload is not
/// UTF-8, or the sections are not exactly one plan followed by frames.
/// An `Err` means the file proves nothing — the daemon treats it as a
/// miss and regenerates on the next cold execution.
pub fn read_memo(bytes: &[u8]) -> Result<MemoArtifact, ReadTraceError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 || &bytes[..4] != MEMO_MAGIC {
        let mut found = [0u8; 4];
        let n = cur.remaining().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(ReadTraceError::BadMagic { found });
    }
    cur.pos = 4;
    if cur.remaining() < 2 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let version = cur.get_u16_le();
    if version != MEMO_VERSION {
        return Err(ReadTraceError::UnsupportedVersion { found: version });
    }
    if cur.remaining() < 20 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let plan_hash = cur.get_u64_le();
    let fingerprint = cur.get_u64_le();
    let sections = cur.get_u32_le();
    let mut plan: Option<String> = None;
    let mut frames = Vec::new();
    for index in 0..sections {
        if cur.remaining() < 9 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let kind = cur.get_u8();
        let len = cur.get_u64_le();
        let Ok(len) = usize::try_from(len) else {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        };
        if cur.remaining() < len + 8 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let payload = &bytes[cur.pos..cur.pos + len];
        cur.pos += len;
        let stored = cur.get_u64_le();
        if checksum(payload) != stored {
            return Err(ReadTraceError::SectionChecksum { kind });
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| ReadTraceError::BadSection { kind })?
            .to_owned();
        match kind {
            memo_section::PLAN if index == 0 && plan.is_none() => plan = Some(text),
            memo_section::FRAME if plan.is_some() => frames.push(text),
            _ => return Err(ReadTraceError::BadSection { kind }),
        }
    }
    if cur.remaining() > 0 {
        return Err(ReadTraceError::TrailingBytes { count: cur.remaining() });
    }
    let plan = plan.ok_or(ReadTraceError::BadSection { kind: memo_section::PLAN })?;
    Ok(MemoArtifact { plan_hash, fingerprint, plan, frames })
}

/// A held advisory cross-process lock: a lock file created exclusively,
/// removed on drop (and scavenged as stale by other writers if the
/// holding process dies first). See [`FileLock::acquire`].
pub struct FileLock {
    path: std::path::PathBuf,
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl FileLock {
    /// Acquires the advisory lock at `lock_path` (created with
    /// `create_new`, so exactly one process wins). A lock file older
    /// than `stale` is treated as abandoned by a crashed writer and
    /// broken with a warning. Returns `None` — with a warning — when
    /// the lock cannot be acquired within `wait`: callers proceed
    /// unlocked rather than stalling real work on a cache courtesy,
    /// because every writer pairs this lock with [`write_file_atomic`],
    /// so the worst unlocked outcome is last-writer-wins, never a torn
    /// file.
    #[must_use]
    pub fn acquire(
        lock_path: &std::path::Path,
        wait: std::time::Duration,
        stale: std::time::Duration,
    ) -> Option<FileLock> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(lock_path) {
                Ok(_) => return Some(FileLock { path: lock_path.to_path_buf() }),
                Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => {
                    let is_stale = std::fs::metadata(lock_path)
                        .and_then(|meta| meta.modified())
                        .ok()
                        .and_then(|modified| modified.elapsed().ok())
                        .is_some_and(|age| age >= stale);
                    if is_stale {
                        eprintln!("warning: breaking stale artifact lock {}", lock_path.display());
                        let _ = std::fs::remove_file(lock_path);
                        continue;
                    }
                    if std::time::Instant::now() >= deadline {
                        eprintln!(
                            "warning: timed out waiting for artifact lock {}; writing anyway",
                            lock_path.display()
                        );
                        return None;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(_) => return None,
            }
        }
    }
}

/// Writes `bytes` to `path` via a unique temp file in the same
/// directory, then renames over the target, so readers only ever
/// observe complete files (the parent directory is created if missing).
///
/// # Errors
///
/// Propagates directory-creation, write, and rename failures; a failed
/// rename removes the temp file.
pub fn write_file_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    std::fs::create_dir_all(dir)?;
    let temp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&temp, bytes)?;
    std::fs::rename(&temp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&temp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x1000, true, 0x0f00, 10));
        t.push(BranchRecord::unconditional(0x0f10, BranchClass::Call, 0x4000, 14));
        t.push(TrapRecord::new(0x4004, 20));
        t.push(BranchRecord::unconditional(0x4010, BranchClass::Return, 0x0f14, 25));
        t.push(BranchRecord::conditional(0x1000, false, 0x0f00, 31));
        t.set_total_instructions(40);
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let bytes = write_trace(&t);
        let back = read_trace(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let back = read_trace(&write_trace(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(b"NOPE....").unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic { .. }));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = write_trace(&sample_trace());
        bytes[4] = 99;
        let err = read_trace(&bytes).unwrap_err();
        assert_eq!(err, ReadTraceError::UnsupportedVersion { found: 99 });
    }

    #[test]
    fn rejects_truncation_mid_event() {
        let bytes = write_trace(&sample_trace());
        let cut = &bytes[..bytes.len() - 5];
        let err = read_trace(cut).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated { .. }));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut bytes = write_trace(&sample_trace());
        // First event tag lives right after the 22-byte header.
        bytes[22] = 42;
        let err = read_trace(&bytes).unwrap_err();
        assert_eq!(err, ReadTraceError::UnknownTag { tag: 42, at_event: 0 });
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ReadTraceError::Truncated { at_event: 7 }.to_string();
        assert!(msg.contains("event 7"));
    }

    #[allow(clippy::type_complexity)]
    fn sample_bundle() -> (Trace, Vec<PackedCond>, InternedConds, Vec<(Vec<u8>, PatternStream)>) {
        let trace = crate::synth::LoopNest::new(&[6, 9]).generate();
        let packed = trace.pack_conditionals();
        let interned = InternedConds::from_packed(&packed);
        let mut unlaned = PatternStream::new(6, false);
        let mut laned = PatternStream::new(4, true);
        for (i, cond) in packed.iter().enumerate() {
            unlaned.push(i % 64, cond.taken());
            laned.push_with_lane(i % 16, cond.taken(), (i % 5) as u32);
        }
        (trace, packed, interned, vec![(vec![0, 9, 0, 0, 0], unlaned), (b"laned".to_vec(), laned)])
    }

    fn write_sample(fingerprint: u64) -> Vec<u8> {
        let (trace, packed, interned, streams) = sample_bundle();
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        write_artifacts(fingerprint, Some(&trace), Some(&packed), Some(&interned), &refs)
    }

    #[test]
    fn artifacts_round_trip_every_section() {
        let (trace, packed, interned, streams) = sample_bundle();
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        let bytes = write_artifacts(0xfeed, Some(&trace), Some(&packed), Some(&interned), &refs);
        let bundle = read_artifacts(&bytes).unwrap();
        assert_eq!(bundle.fingerprint, 0xfeed);
        assert_eq!(bundle.trace.as_ref(), Some(&trace));
        assert_eq!(bundle.packed.as_deref(), Some(packed.as_slice()));
        assert_eq!(bundle.interned.as_ref(), Some(&interned));
        assert_eq!(bundle.streams, streams);
    }

    #[test]
    fn artifacts_round_trip_each_section_alone() {
        let (trace, packed, interned, streams) = sample_bundle();
        let bundle = read_artifacts(&write_artifacts(1, Some(&trace), None, None, &[])).unwrap();
        assert_eq!(bundle.trace, Some(trace));
        assert_eq!(bundle.packed, None);
        let bundle = read_artifacts(&write_artifacts(2, None, Some(&packed), None, &[])).unwrap();
        assert_eq!(bundle.packed.as_deref(), Some(packed.as_slice()));
        let bundle = read_artifacts(&write_artifacts(3, None, None, Some(&interned), &[])).unwrap();
        assert_eq!(bundle.interned, Some(interned));
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        let bundle = read_artifacts(&write_artifacts(4, None, None, None, &refs)).unwrap();
        assert_eq!(bundle.streams, streams);
        let empty = read_artifacts(&write_artifacts(5, None, None, None, &[])).unwrap();
        assert_eq!(empty, ArtifactBundle { fingerprint: 5, ..ArtifactBundle::default() });
    }

    #[test]
    fn artifacts_reject_truncation_at_every_byte_boundary() {
        let bytes = write_sample(0xabcd);
        for cut in 0..bytes.len() {
            assert!(
                read_artifacts(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
        assert!(read_artifacts(&bytes).is_ok());
    }

    #[test]
    fn artifacts_detect_any_single_bit_flip_in_payloads() {
        let bytes = write_sample(0x1234);
        // Flip one bit in every byte past the fixed header; the magic,
        // version, fingerprint and section-count bytes are covered by the
        // dedicated header tests (a fingerprint flip legitimately decodes —
        // staleness is the store's comparison, not the container's).
        for pos in 18..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(
                read_artifacts(&corrupt).is_err(),
                "bit flip at byte {pos} must not decode cleanly"
            );
        }
    }

    #[test]
    fn artifacts_reject_checksum_flip_with_checksum_error() {
        let bytes = write_sample(7);
        // The first section's checksum occupies the 8 bytes before the
        // second section's kind tag; flipping the final byte of the file
        // hits the *last* section's checksum, which is easiest to address.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x80;
        assert!(matches!(
            read_artifacts(&corrupt).unwrap_err(),
            ReadTraceError::SectionChecksum { kind: section::STREAM }
        ));
    }

    #[test]
    fn artifacts_reject_trailing_bytes() {
        let mut bytes = write_sample(7);
        bytes.push(0);
        assert!(matches!(
            read_artifacts(&bytes).unwrap_err(),
            ReadTraceError::TrailingBytes { count: 1 }
        ));
    }

    #[test]
    fn artifacts_reject_v1_files_with_versioned_error() {
        let bytes = write_trace(&sample_trace());
        assert_eq!(
            read_artifacts(&bytes).unwrap_err(),
            ReadTraceError::UnsupportedVersion { found: VERSION }
        );
        // And the bare-trace reader symmetrically rejects v2 containers.
        let v2 = write_sample(1);
        assert_eq!(
            read_trace(&v2).unwrap_err(),
            ReadTraceError::UnsupportedVersion { found: ARTIFACT_VERSION }
        );
    }

    #[test]
    fn artifacts_reject_bad_section_structure() {
        let (_, _, interned, _) = sample_bundle();
        let bytes = write_artifacts(9, None, None, Some(&interned), &[]);
        // Rewrite the first interned event's id to point past the pc
        // table, then re-stamp the section checksum so only structural
        // validation can catch it. Payload starts at header(18) + kind(1)
        // + len(8); events follow two u64 counts.
        let payload_start = 18 + 1 + 8;
        let mut corrupt = bytes.clone();
        let huge = (u32::MAX).to_le_bytes();
        corrupt[payload_start + 16..payload_start + 20].copy_from_slice(&huge);
        let payload_len = bytes.len() - payload_start - 8;
        let sum = checksum(&corrupt[payload_start..payload_start + payload_len]);
        let checksum_at = payload_start + payload_len;
        corrupt[checksum_at..checksum_at + 8].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            read_artifacts(&corrupt).unwrap_err(),
            ReadTraceError::BadSection { kind: section::INTERNED }
        );
    }

    #[test]
    fn checksum_distinguishes_length_and_content() {
        assert_ne!(checksum(b""), checksum(&[0]));
        assert_ne!(checksum(&[0]), checksum(&[0, 0]));
        assert_ne!(checksum(b"abcdefgh"), checksum(b"abcdefgi"));
        assert_eq!(checksum(b"abcdefgh"), checksum(b"abcdefgh"));
    }

    fn sample_memo() -> MemoArtifact {
        MemoArtifact {
            plan_hash: 0x1234_5678_9abc_def0,
            fingerprint: 0x0fed_cba9_8765_4321,
            plan: r#"{"version":1,"jobs":[{"scheme":"PAg(12)"}]}"#.to_owned(),
            frames: vec![
                r#"{"index":0,"outcome":{"skipped":"with spaces"}}"#.to_owned(),
                r#"{"index":1,"outcome":{"skipped":"second"}}"#.to_owned(),
            ],
        }
    }

    #[test]
    fn memo_round_trips() {
        let memo = sample_memo();
        assert_eq!(read_memo(&write_memo(&memo)).unwrap(), memo);
        let empty = MemoArtifact { frames: Vec::new(), ..sample_memo() };
        assert_eq!(read_memo(&write_memo(&empty)).unwrap(), empty);
    }

    #[test]
    fn memo_rejects_every_truncation() {
        let bytes = write_memo(&sample_memo());
        for cut in 0..bytes.len() {
            assert!(read_memo(&bytes[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn memo_rejects_every_bit_flip_past_the_magic() {
        let memo = sample_memo();
        let bytes = write_memo(&memo);
        for pos in 4..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            // A flip in the stored plan_hash/fingerprint header words
            // still decodes (they are caller-validated metadata); any
            // flip in a section must fail the checksum or the structure.
            if (6..22).contains(&pos) {
                let back = read_memo(&corrupt).expect("header metadata flips still decode");
                assert!(
                    back.plan_hash != memo.plan_hash || back.fingerprint != memo.fingerprint,
                    "flip at {pos} must surface in the decoded metadata"
                );
            } else {
                assert!(read_memo(&corrupt).is_err(), "bit flip at byte {pos} must not decode");
            }
        }
    }

    #[test]
    fn memo_rejects_trailing_bytes_and_wrong_formats() {
        let mut bytes = write_memo(&sample_memo());
        bytes.push(0);
        assert_eq!(read_memo(&bytes).unwrap_err(), ReadTraceError::TrailingBytes { count: 1 });
        assert!(matches!(
            read_memo(&write_trace(&sample_trace())).unwrap_err(),
            ReadTraceError::BadMagic { .. }
        ));
    }

    #[test]
    fn file_lock_is_exclusive_and_breaks_stale_locks() {
        let dir = std::env::temp_dir().join(format!("tlabp-io-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let lock_path = dir.join("x.tlabm.lock");
        let wait = std::time::Duration::from_millis(50);
        let stale = std::time::Duration::from_secs(3600);
        let held = FileLock::acquire(&lock_path, wait, stale).expect("first acquire wins");
        assert!(
            FileLock::acquire(&lock_path, wait, stale).is_none(),
            "second acquire times out while the lock is held"
        );
        drop(held);
        assert!(!lock_path.exists(), "drop removes the lock file");
        // A zero stale budget treats any existing lock as abandoned.
        let _orphan = std::fs::File::create(&lock_path).unwrap();
        let reacquired = FileLock::acquire(&lock_path, wait, std::time::Duration::ZERO);
        assert!(reacquired.is_some(), "stale lock is broken and re-acquired");
        drop(reacquired);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_file_atomic_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("tlabp-io-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("artifact.tlabm");
        write_file_atomic(&path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        write_file_atomic(&path, b"rewritten").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"rewritten");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files survive: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
