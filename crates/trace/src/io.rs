//! Compact binary serialization for traces and derived trace artifacts.
//!
//! Two little-endian formats share the `b"TLBP"` magic and a version
//! field:
//!
//! **Version 1** — a bare event trace:
//!
//! ```text
//! magic   : 4 bytes  = b"TLBP"
//! version : u16      = 1
//! count   : u64      number of events
//! total   : u64      total dynamic instructions
//! events  : count records
//! ```
//!
//! Each event is one tag byte followed by its payload:
//!
//! ```text
//! tag 0..=3 (branch, tag = BranchClass): pc u64, taken u8, target u64, instret u64
//! tag 255   (trap):                      pc u64, instret u64
//! ```
//!
//! **Version 2** — the artifact container behind the disk tier of the
//! simulator's trace store: the raw trace *plus* every derived form
//! (packed conditional stream, pc-interned stream, materialized
//! first-level pattern streams), so a warm cache hit restores the whole
//! derivation chain without re-running the VM or any derivation pass:
//!
//! ```text
//! magic       : 4 bytes = b"TLBP"
//! version     : u16     = 2
//! fingerprint : u64     workload-codegen fingerprint (caller-defined)
//! sections    : u32     number of sections
//! per section:
//!   kind      : u8      1 trace, 2 packed, 3 interned, 4 pattern stream
//!   len       : u64     payload byte length
//!   payload   : len bytes
//!   checksum  : u64     fx-fold of the payload (see [`checksum`])
//! ```
//!
//! Every section is independently length-prefixed and checksummed;
//! [`read_artifacts`] rejects truncation at any byte boundary, any
//! checksum mismatch, trailing bytes, and any payload whose decoded
//! parts fail the owning container's structural validation
//! ([`InternedConds::from_raw_parts`],
//! [`PatternStream::from_raw_parts`]). A reader that cannot prove a file
//! intact never yields a bundle — the disk tier falls back to
//! regeneration instead of risking wrong numbers.
//!
//! **Version 3** — the *chunked* artifact container
//! ([`write_artifacts_chunked`]): the same four section kinds, but each
//! section's items are split into fixed-budget chunks (default ~4 MiB,
//! [`CHUNK_BYTES_ENV`]) that are varint+delta encoded and independently
//! checksummed, behind a seekable per-section chunk table:
//!
//! ```text
//! magic       : 4 bytes = b"TLBP"
//! version     : u16     = 3
//! fingerprint : u64
//! sections    : u32
//! per section:
//!   kind          : u8
//!   meta_len      : u32, meta bytes   (kind-specific section metadata)
//!   chunk count   : u32
//!   chunk table   : count x (encoded_len u64, items u64, checksum u64)
//!   head checksum : u64  fx-fold of kind + meta + chunk table
//!   chunk payloads, concatenated (encoded_len bytes each)
//! ```
//!
//! Because every chunk decodes independently (delta state resets at
//! chunk boundaries) and the chunk table is read before any payload, a
//! reader can `seek` straight to chunk *k* of a section — that is what
//! [`ChunkedArtifact`] does for the simulator's streaming replay tier,
//! which holds a bounded window of decoded chunks instead of a whole
//! hydrated section. [`read_artifacts`] accepts v2 and v3 containers;
//! new files are written as v3 while existing v2 files keep reading.
//!
//! A third format, the **memo artifact** (`b"TLBM"`, [`write_memo`] /
//! [`read_memo`]), stores one memoized service response — the canonical
//! plan JSON plus its pre-encoded result-frame payloads — with the same
//! per-section checksum discipline, so the sweep daemon's persistent
//! memo tier inherits the container's torn/corrupt-file guarantees.
//!
//! The module also exports the filesystem discipline those tiers share:
//! [`write_file_atomic`] (unique temp file + rename, readers never see a
//! partial file) and [`FileLock`] (advisory cross-process lock file with
//! stale-lock scavenging).
//!
//! # Example
//!
//! ```
//! use tlabp_trace::io::{read_trace, write_trace};
//! use tlabp_trace::synth::LoopNest;
//!
//! let trace = LoopNest::new(&[4, 4]).generate();
//! let bytes = write_trace(&trace);
//! let back = read_trace(&bytes)?;
//! assert_eq!(trace, back);
//! # Ok::<(), tlabp_trace::io::ReadTraceError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::intern::{InternedCond, InternedConds};
use crate::pattern_stream::PatternStream;
use crate::record::{BranchClass, BranchRecord, TrapRecord};
use crate::trace::{PackedCond, Trace, TraceEvent};

/// File magic identifying the trace format.
pub const MAGIC: &[u8; 4] = b"TLBP";
/// Version of the bare-trace format ([`write_trace`] / [`read_trace`]).
pub const VERSION: u16 = 1;
/// Version of the legacy whole-section artifact container
/// ([`write_artifacts`]).
pub const ARTIFACT_VERSION: u16 = 2;
/// Version of the chunked artifact container
/// ([`write_artifacts_chunked`] / [`ChunkedArtifact`]).
pub const ARTIFACT_VERSION_CHUNKED: u16 = 3;

/// Environment variable naming the chunk byte budget of v3 artifacts.
pub const CHUNK_BYTES_ENV: &str = "TLABP_CHUNK_BYTES";
/// Default chunk byte budget when [`CHUNK_BYTES_ENV`] is unset.
pub const DEFAULT_CHUNK_BYTES: usize = 4 << 20;
/// Smallest accepted chunk budget — below this the per-chunk table
/// overhead dominates the payload.
pub const MIN_CHUNK_BYTES: usize = 64 << 10;

/// Pattern-stream chunks hold a multiple of this many events (except
/// the final chunk), matching the replay kernels' block size so a
/// streamed walk re-chunks into exactly the block sequence the
/// in-memory walk produces.
pub const STREAM_CHUNK_ALIGN: usize = 1 << 14;

/// The chunk byte budget: [`CHUNK_BYTES_ENV`] when it holds an integer
/// of at least [`MIN_CHUNK_BYTES`], else [`DEFAULT_CHUNK_BYTES`]
/// (garbage or undersized values warn and take the default).
#[must_use]
pub fn chunk_bytes_from_env() -> usize {
    let Ok(raw) = std::env::var(CHUNK_BYTES_ENV) else { return DEFAULT_CHUNK_BYTES };
    if raw.is_empty() {
        return DEFAULT_CHUNK_BYTES;
    }
    match raw.trim().parse::<usize>() {
        Ok(bytes) if bytes >= MIN_CHUNK_BYTES => bytes,
        Ok(bytes) => {
            eprintln!(
                "warning: {CHUNK_BYTES_ENV}={bytes} is below the {MIN_CHUNK_BYTES}-byte \
                 minimum; using {MIN_CHUNK_BYTES}"
            );
            MIN_CHUNK_BYTES
        }
        Err(_) => {
            eprintln!(
                "warning: ignoring {CHUNK_BYTES_ENV}={raw:?} (expected a byte count); \
                 using {DEFAULT_CHUNK_BYTES}"
            );
            DEFAULT_CHUNK_BYTES
        }
    }
}

const TRAP_TAG: u8 = 255;

/// Section kind tags of the v2 artifact container.
mod section {
    pub const TRACE: u8 = 1;
    pub const PACKED: u8 = 2;
    pub const INTERNED: u8 = 3;
    pub const STREAM: u8 = 4;
}

/// Error produced when decoding a binary trace fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadTraceError {
    /// The buffer did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found (zero-padded if short).
        found: [u8; 4],
    },
    /// The header declared an unsupported version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer ended before the declared number of events was read.
    Truncated {
        /// Index of the event being decoded when input ran out.
        at_event: u64,
    },
    /// An event carried an unknown tag byte.
    UnknownTag {
        /// The offending tag.
        tag: u8,
        /// Index of the event with the bad tag.
        at_event: u64,
    },
    /// Decoded events were not monotonically ordered by `instret`.
    NonMonotonic {
        /// Index of the out-of-order event.
        at_event: u64,
    },
    /// An artifact section's stored checksum did not match its payload.
    SectionChecksum {
        /// The section's kind tag.
        kind: u8,
    },
    /// An artifact section's payload decoded but failed structural
    /// validation (e.g. an interned id outside the pc table).
    BadSection {
        /// The section's kind tag.
        kind: u8,
    },
    /// Bytes remained after the last declared artifact section.
    TrailingBytes {
        /// Number of unexpected trailing bytes.
        count: usize,
    },
    /// An I/O error while reading a seekable chunked artifact.
    Io {
        /// The failing operation's [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}, expected {MAGIC:?}")
            }
            ReadTraceError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found} (bare trace is {VERSION}, \
                     artifact container is {ARTIFACT_VERSION})"
                )
            }
            ReadTraceError::Truncated { at_event } => {
                write!(f, "trace truncated while decoding event {at_event}")
            }
            ReadTraceError::UnknownTag { tag, at_event } => {
                write!(f, "unknown event tag {tag} at event {at_event}")
            }
            ReadTraceError::NonMonotonic { at_event } => {
                write!(f, "event {at_event} has instret lower than its predecessor")
            }
            ReadTraceError::SectionChecksum { kind } => {
                write!(f, "artifact section kind {kind} failed its checksum")
            }
            ReadTraceError::BadSection { kind } => {
                write!(f, "artifact section kind {kind} failed structural validation")
            }
            ReadTraceError::TrailingBytes { count } => {
                write!(f, "{count} unexpected byte(s) after the last artifact section")
            }
            ReadTraceError::Io { kind } => {
                write!(f, "i/o error while reading chunked artifact: {kind}")
            }
        }
    }
}

impl Error for ReadTraceError {}

/// Serializes a trace into the binary format.
///
/// The inverse of [`read_trace`]; the two round-trip exactly.
#[must_use]
pub fn write_trace(trace: &Trace) -> Vec<u8> {
    // Header + worst-case 26 bytes per event.
    let mut buf = Vec::with_capacity(22 + trace.len() * 26);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    buf.extend_from_slice(&trace.total_instructions().to_le_bytes());
    for event in trace.events() {
        encode_event(&mut buf, event);
    }
    buf
}

/// Appends one event in the shared v1/v2 event encoding.
fn encode_event(buf: &mut Vec<u8>, event: &TraceEvent) {
    match *event {
        TraceEvent::Branch(b) => {
            buf.push(b.class.to_tag());
            buf.extend_from_slice(&b.pc.to_le_bytes());
            buf.push(u8::from(b.taken));
            buf.extend_from_slice(&b.target.to_le_bytes());
            buf.extend_from_slice(&b.instret.to_le_bytes());
        }
        TraceEvent::Trap(t) => {
            buf.push(TRAP_TAG);
            buf.extend_from_slice(&t.pc.to_le_bytes());
            buf.extend_from_slice(&t.instret.to_le_bytes());
        }
    }
}

/// Deserializes a trace from the binary format produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ReadTraceError`] if the magic or version do not match, the
/// buffer is truncated, an event tag is unknown, or events are not ordered
/// by instruction count.
pub fn read_trace(bytes: &[u8]) -> Result<Trace, ReadTraceError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 || &bytes[..4] != MAGIC {
        let mut found = [0u8; 4];
        let n = cur.remaining().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(ReadTraceError::BadMagic { found });
    }
    cur.pos = 4;
    if cur.remaining() < 2 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let version = cur.get_u16_le();
    if version != VERSION {
        return Err(ReadTraceError::UnsupportedVersion { found: version });
    }
    if cur.remaining() < 16 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let count = cur.get_u64_le();
    let total = cur.get_u64_le();
    decode_events(&mut cur, count, total)
}

/// Decodes `count` events in the shared v1/v2 encoding, enforcing
/// monotonic `instret` ordering, and applies the declared total.
fn decode_events(cur: &mut Cursor<'_>, count: u64, total: u64) -> Result<Trace, ReadTraceError> {
    let capacity = usize::try_from(count).unwrap_or(usize::MAX).min(1 << 24);
    let mut trace = Trace::with_capacity(capacity);
    let mut last_instret = 0u64;
    for i in 0..count {
        if cur.remaining() < 1 {
            return Err(ReadTraceError::Truncated { at_event: i });
        }
        let tag = cur.get_u8();
        let event = if tag == TRAP_TAG {
            if cur.remaining() < 16 {
                return Err(ReadTraceError::Truncated { at_event: i });
            }
            let pc = cur.get_u64_le();
            let instret = cur.get_u64_le();
            TraceEvent::Trap(TrapRecord::new(pc, instret))
        } else {
            let class = BranchClass::from_tag(tag)
                .ok_or(ReadTraceError::UnknownTag { tag, at_event: i })?;
            if cur.remaining() < 25 {
                return Err(ReadTraceError::Truncated { at_event: i });
            }
            let pc = cur.get_u64_le();
            let taken = cur.get_u8() != 0;
            let target = cur.get_u64_le();
            let instret = cur.get_u64_le();
            TraceEvent::Branch(BranchRecord { pc, class, taken, target, instret })
        };
        if event.instret() < last_instret {
            return Err(ReadTraceError::NonMonotonic { at_event: i });
        }
        last_instret = event.instret();
        trace.push(event);
    }
    if total >= last_instret {
        trace.set_total_instructions(total);
    }
    Ok(trace)
}

/// A checksum over `bytes`: the in-tree FxHash word fold (rotate, xor,
/// multiply by a golden-ratio constant) over 8-byte chunks, with the
/// length folded in last so zero-padding of the tail chunk cannot alias
/// a longer payload. Not cryptographic — it guards against torn writes,
/// truncation and bit rot in our own cache files, not an adversary.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let fold = |hash: u64, word: u64| (hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash = fold(hash, u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut word = [0u8; 8];
        word[..rest.len()].copy_from_slice(rest);
        hash = fold(hash, u64::from_le_bytes(word));
    }
    fold(hash, bytes.len() as u64)
}

/// The decoded contents of a v2 artifact container: whichever forms the
/// writer had materialized, plus the pattern streams keyed by the
/// caller's opaque stream-key encoding (the trace crate does not know
/// the simulator's first-level signatures — it stores the bytes
/// verbatim).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArtifactBundle {
    /// The workload-codegen fingerprint the writer recorded; readers
    /// compare it against the expected value and treat a mismatch as a
    /// stale artifact.
    pub fingerprint: u64,
    /// The raw event trace, if serialized.
    pub trace: Option<Trace>,
    /// The packed conditional-branch stream, if serialized.
    pub packed: Option<Vec<PackedCond>>,
    /// The pc-interned conditional stream, if serialized.
    pub interned: Option<InternedConds>,
    /// Materialized first-level pattern streams, each tagged with its
    /// opaque key bytes, in serialization order.
    pub streams: Vec<(Vec<u8>, PatternStream)>,
}

/// Serializes an artifact container: every form the caller hands in, in
/// a fixed section order (trace, packed, interned, streams), each
/// length-prefixed and checksummed.
///
/// The inverse of [`read_artifacts`]; the two round-trip exactly.
#[must_use]
pub fn write_artifacts(
    fingerprint: u64,
    trace: Option<&Trace>,
    packed: Option<&[PackedCond]>,
    interned: Option<&InternedConds>,
    streams: &[(Vec<u8>, &PatternStream)],
) -> Vec<u8> {
    let sections = usize::from(trace.is_some())
        + usize::from(packed.is_some())
        + usize::from(interned.is_some())
        + streams.len();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&u32::try_from(sections).expect("section count fits u32").to_le_bytes());

    if let Some(trace) = trace {
        let mut payload = Vec::with_capacity(16 + trace.len() * 26);
        payload.extend_from_slice(&(trace.len() as u64).to_le_bytes());
        payload.extend_from_slice(&trace.total_instructions().to_le_bytes());
        for event in trace.events() {
            encode_event(&mut payload, event);
        }
        push_section(&mut buf, section::TRACE, &payload);
    }
    if let Some(packed) = packed {
        let mut payload = Vec::with_capacity(8 + packed.len() * 8);
        payload.extend_from_slice(&(packed.len() as u64).to_le_bytes());
        for cond in packed {
            payload.extend_from_slice(&cond.bits().to_le_bytes());
        }
        push_section(&mut buf, section::PACKED, &payload);
    }
    if let Some(interned) = interned {
        let mut payload = Vec::with_capacity(16 + interned.len() * 4 + interned.pcs().len() * 8);
        payload.extend_from_slice(&(interned.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(interned.pcs().len() as u64).to_le_bytes());
        for event in interned.events() {
            payload.extend_from_slice(&event.bits().to_le_bytes());
        }
        for pc in interned.pcs() {
            payload.extend_from_slice(&pc.to_le_bytes());
        }
        push_section(&mut buf, section::INTERNED, &payload);
    }
    for (key, stream) in streams {
        let lanes = stream.lanes();
        let mut payload =
            Vec::with_capacity(2 + key.len() + 13 + stream.len() * 4 + lanes.len() * 4);
        payload.extend_from_slice(&u16::try_from(key.len()).expect("key fits u16").to_le_bytes());
        payload.extend_from_slice(key);
        payload.extend_from_slice(&stream.history_bits().to_le_bytes());
        payload.push(u8::from(stream.is_laned()));
        payload.extend_from_slice(&(stream.len() as u64).to_le_bytes());
        for &event in stream.events() {
            payload.extend_from_slice(&event.to_le_bytes());
        }
        for &lane in lanes {
            payload.extend_from_slice(&lane.to_le_bytes());
        }
        push_section(&mut buf, section::STREAM, &payload);
    }
    buf
}

fn push_section(buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&checksum(payload).to_le_bytes());
}

/// Deserializes an artifact container — the legacy whole-section v2
/// format ([`write_artifacts`]) or the chunked v3 format
/// ([`write_artifacts_chunked`]), dispatched on the header version.
///
/// # Errors
///
/// Returns a [`ReadTraceError`] if the magic or version do not match,
/// the buffer is truncated at any byte boundary, bytes trail the last
/// section, any section or chunk checksum mismatches, or any payload
/// fails the structural validation of its form. An `Err` means the file
/// proves nothing — callers fall back to regeneration.
pub fn read_artifacts(bytes: &[u8]) -> Result<ArtifactBundle, ReadTraceError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 || &bytes[..4] != MAGIC {
        let mut found = [0u8; 4];
        let n = cur.remaining().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(ReadTraceError::BadMagic { found });
    }
    cur.pos = 4;
    if cur.remaining() < 2 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let version = cur.get_u16_le();
    if version == ARTIFACT_VERSION_CHUNKED {
        return read_artifacts_chunked(&mut cur);
    }
    if version != ARTIFACT_VERSION {
        return Err(ReadTraceError::UnsupportedVersion { found: version });
    }
    if cur.remaining() < 12 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let mut bundle = ArtifactBundle { fingerprint: cur.get_u64_le(), ..ArtifactBundle::default() };
    let sections = cur.get_u32_le();
    for _ in 0..sections {
        if cur.remaining() < 9 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let kind = cur.get_u8();
        let len = cur.get_u64_le();
        let Ok(len) = usize::try_from(len) else {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        };
        if cur.remaining() < len + 8 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let payload = &bytes[cur.pos..cur.pos + len];
        cur.pos += len;
        let stored = cur.get_u64_le();
        if checksum(payload) != stored {
            return Err(ReadTraceError::SectionChecksum { kind });
        }
        decode_section(&mut bundle, kind, payload)?;
    }
    if cur.remaining() > 0 {
        return Err(ReadTraceError::TrailingBytes { count: cur.remaining() });
    }
    Ok(bundle)
}

/// Decodes one checksum-verified section payload into the bundle.
fn decode_section(
    bundle: &mut ArtifactBundle,
    kind: u8,
    payload: &[u8],
) -> Result<(), ReadTraceError> {
    let bad = ReadTraceError::BadSection { kind };
    let mut cur = Cursor { bytes: payload, pos: 0 };
    match kind {
        section::TRACE => {
            if cur.remaining() < 16 {
                return Err(bad);
            }
            let count = cur.get_u64_le();
            let total = cur.get_u64_le();
            let trace = decode_events(&mut cur, count, total)
                .map_err(|_| ReadTraceError::BadSection { kind })?;
            if cur.remaining() != 0 {
                return Err(bad);
            }
            bundle.trace = Some(trace);
        }
        section::PACKED => {
            if cur.remaining() < 8 {
                return Err(bad);
            }
            let count = cur.get_u64_le();
            if cur.remaining() as u64 != count.saturating_mul(8) {
                return Err(bad);
            }
            let packed =
                (0..count).map(|_| PackedCond::from_bits(cur.get_u64_le())).collect::<Vec<_>>();
            bundle.packed = Some(packed);
        }
        section::INTERNED => {
            if cur.remaining() < 16 {
                return Err(bad);
            }
            let events = cur.get_u64_le();
            let pcs = cur.get_u64_le();
            if cur.remaining() as u64 != events.saturating_mul(4) + pcs.saturating_mul(8) {
                return Err(bad);
            }
            let events: Vec<InternedCond> =
                (0..events).map(|_| InternedCond::from_bits(cur.get_u32_le())).collect();
            let pcs: Vec<u64> = (0..pcs).map(|_| cur.get_u64_le()).collect();
            bundle.interned = Some(InternedConds::from_raw_parts(events, pcs).ok_or(bad)?);
        }
        section::STREAM => {
            if cur.remaining() < 2 {
                return Err(bad);
            }
            let key_len = usize::from(cur.get_u16_le());
            if cur.remaining() < key_len {
                return Err(bad);
            }
            let key = payload[cur.pos..cur.pos + key_len].to_vec();
            cur.pos += key_len;
            if cur.remaining() < 13 {
                return Err(bad);
            }
            let history_bits = cur.get_u32_le();
            let laned = match cur.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(bad),
            };
            let count = cur.get_u64_le();
            let lanes_len = if laned { count } else { 0 };
            if cur.remaining() as u64 != (count + lanes_len).saturating_mul(4) {
                return Err(bad);
            }
            let events: Vec<u32> = (0..count).map(|_| cur.get_u32_le()).collect();
            let lanes: Vec<u32> = (0..lanes_len).map(|_| cur.get_u32_le()).collect();
            let stream =
                PatternStream::from_raw_parts(history_bits, events, lanes, laned).ok_or(bad)?;
            bundle.streams.push((key, stream));
        }
        _ => return Err(bad),
    }
    Ok(())
}

/// A minimal little-endian read cursor over a byte slice (replaces the
/// external `bytes` crate so the build has no registry dependencies).
pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl Cursor<'_> {
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn get_u8(&mut self) -> u8 {
        let v = self.bytes[self.pos];
        self.pos += 1;
        v
    }

    pub(crate) fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.bytes[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }

    pub(crate) fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    pub(crate) fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
}

// ---------------------------------------------------------------------------
// Version 3: the chunked artifact container.
// ---------------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation).
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint; `None` on truncation or an encoding longer
/// than 10 bytes (a u64 never needs more).
pub(crate) fn get_varint(cur: &mut Cursor<'_>) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if cur.remaining() == 0 {
            return None;
        }
        let byte = cur.get_u8();
        if shift == 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Zigzag-maps a signed delta onto an unsigned varint-friendly value
/// (small magnitudes of either sign encode short).
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Items per chunk for a section kind under `chunk_bytes`, computed from
/// the *unencoded* item width so the budget bounds decoded (resident)
/// bytes, which is what the streaming tier's window cap is about.
/// Pattern-stream chunks round down to a [`STREAM_CHUNK_ALIGN`] multiple
/// so streamed replay walks the same block sequence as in-memory replay.
fn items_per_chunk(kind: u8, laned: bool, chunk_bytes: usize) -> usize {
    match kind {
        section::TRACE => (chunk_bytes / 26).max(1),
        section::PACKED => (chunk_bytes / 8).max(1),
        section::INTERNED => (chunk_bytes / 4).max(1),
        section::STREAM => {
            let per_event = if laned { 8 } else { 4 };
            ((chunk_bytes / per_event) / STREAM_CHUNK_ALIGN).max(1) * STREAM_CHUNK_ALIGN
        }
        _ => unreachable!("unknown section kind {kind}"),
    }
}

/// Appends one chunked section: kind, metadata, the chunk table
/// (encoded length, item count and checksum per chunk), a head checksum
/// over everything so far, then the chunk payloads.
fn push_chunked_section(buf: &mut Vec<u8>, kind: u8, meta: &[u8], chunks: &[(u64, Vec<u8>)]) {
    let mut head = Vec::with_capacity(1 + 4 + meta.len() + 4 + chunks.len() * 24);
    head.push(kind);
    head.extend_from_slice(&u32::try_from(meta.len()).expect("meta fits u32").to_le_bytes());
    head.extend_from_slice(meta);
    head.extend_from_slice(&u32::try_from(chunks.len()).expect("chunks fit u32").to_le_bytes());
    for (items, payload) in chunks {
        head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        head.extend_from_slice(&items.to_le_bytes());
        head.extend_from_slice(&checksum(payload).to_le_bytes());
    }
    buf.extend_from_slice(&head);
    buf.extend_from_slice(&checksum(&head).to_le_bytes());
    for (_, payload) in chunks {
        buf.extend_from_slice(payload);
    }
}

/// Splits `len` items into chunk ranges of at most `per_chunk` items.
/// Zero items still produce one empty chunk, so every section has a
/// well-formed table.
fn chunk_ranges(len: usize, per_chunk: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return vec![std::ops::Range { start: 0, end: 0 }];
    }
    (0..len).step_by(per_chunk).map(|start| start..(start + per_chunk).min(len)).collect()
}

fn encode_trace_chunk(events: &[TraceEvent]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(events.len() * 6);
    let (mut prev_pc, mut prev_instret) = (0u64, 0u64);
    for event in events {
        match *event {
            TraceEvent::Branch(b) => {
                buf.push(b.class.to_tag() | if b.taken { 0x10 } else { 0 });
                put_varint(&mut buf, zigzag(b.pc.wrapping_sub(prev_pc) as i64));
                put_varint(&mut buf, zigzag(b.target.wrapping_sub(b.pc) as i64));
                put_varint(&mut buf, b.instret.wrapping_sub(prev_instret));
                (prev_pc, prev_instret) = (b.pc, b.instret);
            }
            TraceEvent::Trap(t) => {
                buf.push(TRAP_TAG);
                put_varint(&mut buf, zigzag(t.pc.wrapping_sub(prev_pc) as i64));
                put_varint(&mut buf, t.instret.wrapping_sub(prev_instret));
                (prev_pc, prev_instret) = (t.pc, t.instret);
            }
        }
    }
    buf
}

/// Decodes one trace chunk into `trace`, carrying the cross-chunk
/// monotonic-`instret` check in `last_instret`. Delta state resets per
/// chunk (that is what makes chunks independently decodable); `instret`
/// deltas are unsigned so order within a chunk holds by construction.
fn decode_trace_chunk(
    payload: &[u8],
    items: u64,
    trace: &mut Trace,
    last_instret: &mut u64,
) -> Option<()> {
    let mut cur = Cursor { bytes: payload, pos: 0 };
    let (mut prev_pc, mut prev_instret) = (0u64, 0u64);
    for _ in 0..items {
        if cur.remaining() == 0 {
            return None;
        }
        let tag = cur.get_u8();
        let event = if tag == TRAP_TAG {
            let pc = prev_pc.wrapping_add(unzigzag(get_varint(&mut cur)?) as u64);
            let instret = prev_instret.checked_add(get_varint(&mut cur)?)?;
            (prev_pc, prev_instret) = (pc, instret);
            TraceEvent::Trap(TrapRecord::new(pc, instret))
        } else {
            let class = BranchClass::from_tag(tag & 0x0f)?;
            if tag & !0x1f != 0 {
                return None;
            }
            let taken = tag & 0x10 != 0;
            let pc = prev_pc.wrapping_add(unzigzag(get_varint(&mut cur)?) as u64);
            let target = pc.wrapping_add(unzigzag(get_varint(&mut cur)?) as u64);
            let instret = prev_instret.checked_add(get_varint(&mut cur)?)?;
            (prev_pc, prev_instret) = (pc, instret);
            TraceEvent::Branch(BranchRecord { pc, class, taken, target, instret })
        };
        if event.instret() < *last_instret {
            return None;
        }
        *last_instret = event.instret();
        trace.push(event);
    }
    (cur.remaining() == 0).then_some(())
}

fn encode_packed_chunk(conds: &[PackedCond]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(conds.len() * 3);
    let mut prev = 0u64;
    for cond in conds {
        let bits = cond.bits();
        put_varint(&mut buf, zigzag(bits.wrapping_sub(prev) as i64));
        prev = bits;
    }
    buf
}

fn decode_packed_chunk(payload: &[u8], items: u64, out: &mut Vec<PackedCond>) -> Option<()> {
    let mut cur = Cursor { bytes: payload, pos: 0 };
    let mut prev = 0u64;
    for _ in 0..items {
        prev = prev.wrapping_add(unzigzag(get_varint(&mut cur)?) as u64);
        out.push(PackedCond::from_bits(prev));
    }
    (cur.remaining() == 0).then_some(())
}

fn encode_interned_chunk(events: &[InternedCond]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(events.len() * 2);
    let mut prev = 0u32;
    for event in events {
        let bits = event.bits();
        put_varint(&mut buf, zigzag(i64::from(bits.wrapping_sub(prev) as i32)));
        prev = bits;
    }
    buf
}

fn decode_interned_chunk(payload: &[u8], items: u64, out: &mut Vec<InternedCond>) -> Option<()> {
    let mut cur = Cursor { bytes: payload, pos: 0 };
    let mut prev = 0u32;
    for _ in 0..items {
        let delta = i32::try_from(unzigzag(get_varint(&mut cur)?)).ok()?;
        prev = prev.wrapping_add(delta as u32);
        out.push(InternedCond::from_bits(prev));
    }
    (cur.remaining() == 0).then_some(())
}

/// Encodes one pattern-stream chunk: `items` event varints, then (for
/// laned streams) the matching `items` lane varints.
fn encode_stream_chunk(events: &[u32], lanes: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity((events.len() + lanes.len()) * 3);
    for &event in events {
        put_varint(&mut buf, u64::from(event));
    }
    for &lane in lanes {
        put_varint(&mut buf, u64::from(lane));
    }
    buf
}

/// Decodes one pattern-stream chunk produced by [`encode_stream_chunk`].
fn decode_stream_chunk(
    payload: &[u8],
    items: u64,
    laned: bool,
    events: &mut Vec<u32>,
    lanes: &mut Vec<u32>,
) -> Option<()> {
    let mut cur = Cursor { bytes: payload, pos: 0 };
    for _ in 0..items {
        events.push(u32::try_from(get_varint(&mut cur)?).ok()?);
    }
    if laned {
        for _ in 0..items {
            lanes.push(u32::try_from(get_varint(&mut cur)?).ok()?);
        }
    }
    (cur.remaining() == 0).then_some(())
}

/// Section metadata encodings (the per-section `meta` bytes of the v3
/// layout). Small and read whole; the chunk payloads carry the bulk.
mod meta {
    use super::{get_varint, put_varint, unzigzag, zigzag, Cursor};

    pub(super) fn trace(count: u64, total: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&count.to_le_bytes());
        buf.extend_from_slice(&total.to_le_bytes());
        buf
    }

    pub(super) fn parse_trace(meta: &[u8]) -> Option<(u64, u64)> {
        (meta.len() == 16).then(|| {
            let mut cur = Cursor { bytes: meta, pos: 0 };
            (cur.get_u64_le(), cur.get_u64_le())
        })
    }

    pub(super) fn packed(count: u64) -> Vec<u8> {
        count.to_le_bytes().to_vec()
    }

    pub(super) fn parse_packed(meta: &[u8]) -> Option<u64> {
        (meta.len() == 8).then(|| u64::from_le_bytes(meta.try_into().expect("8 bytes")))
    }

    /// Interned metadata: event count plus the whole id→pc table
    /// (varint+delta — the table is per *static* branch, so it stays
    /// small however long the trace runs).
    pub(super) fn interned(count: u64, pcs: &[u64]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + pcs.len() * 3);
        buf.extend_from_slice(&count.to_le_bytes());
        buf.extend_from_slice(&(pcs.len() as u64).to_le_bytes());
        let mut prev = 0u64;
        for &pc in pcs {
            put_varint(&mut buf, zigzag(pc.wrapping_sub(prev) as i64));
            prev = pc;
        }
        buf
    }

    pub(super) fn parse_interned(meta: &[u8]) -> Option<(u64, Vec<u64>)> {
        if meta.len() < 16 {
            return None;
        }
        let mut cur = Cursor { bytes: meta, pos: 0 };
        let count = cur.get_u64_le();
        let npcs = usize::try_from(cur.get_u64_le()).ok()?;
        if npcs > cur.remaining() * 10 {
            return None;
        }
        let mut pcs = Vec::with_capacity(npcs);
        let mut prev = 0u64;
        for _ in 0..npcs {
            prev = prev.wrapping_add(unzigzag(get_varint(&mut cur)?) as u64);
            pcs.push(prev);
        }
        (cur.remaining() == 0).then_some((count, pcs))
    }

    pub(super) fn stream(key: &[u8], history_bits: u32, laned: bool, count: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(2 + key.len() + 13);
        buf.extend_from_slice(&u16::try_from(key.len()).expect("key fits u16").to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(&history_bits.to_le_bytes());
        buf.push(u8::from(laned));
        buf.extend_from_slice(&count.to_le_bytes());
        buf
    }

    pub(super) fn parse_stream(meta: &[u8]) -> Option<(Vec<u8>, u32, bool, u64)> {
        let mut cur = Cursor { bytes: meta, pos: 0 };
        if cur.remaining() < 2 {
            return None;
        }
        let key_len = usize::from(cur.get_u16_le());
        if cur.remaining() != key_len + 13 {
            return None;
        }
        let key = meta[cur.pos..cur.pos + key_len].to_vec();
        cur.pos += key_len;
        let history_bits = cur.get_u32_le();
        let laned = match cur.get_u8() {
            0 => false,
            1 => true,
            _ => return None,
        };
        let count = cur.get_u64_le();
        Some((key, history_bits, laned, count))
    }
}

/// Serializes a v3 chunked artifact container: the same forms as
/// [`write_artifacts`], with each section split into `chunk_bytes`-budget
/// varint+delta chunks behind a seekable, checksummed chunk table.
///
/// The inverse of [`read_artifacts`] (which dispatches on the header
/// version); [`ChunkedArtifact`] reads the same bytes seekably.
#[must_use]
pub fn write_artifacts_chunked(
    fingerprint: u64,
    trace: Option<&Trace>,
    packed: Option<&[PackedCond]>,
    interned: Option<&InternedConds>,
    streams: &[(Vec<u8>, &PatternStream)],
    chunk_bytes: usize,
) -> Vec<u8> {
    let chunk_bytes = chunk_bytes.max(1);
    let sections = usize::from(trace.is_some())
        + usize::from(packed.is_some())
        + usize::from(interned.is_some())
        + streams.len();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&ARTIFACT_VERSION_CHUNKED.to_le_bytes());
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&u32::try_from(sections).expect("section count fits u32").to_le_bytes());

    if let Some(trace) = trace {
        let per = items_per_chunk(section::TRACE, false, chunk_bytes);
        let chunks: Vec<(u64, Vec<u8>)> = chunk_ranges(trace.len(), per)
            .into_iter()
            .map(|r| (r.len() as u64, encode_trace_chunk(&trace.events()[r])))
            .collect();
        let meta = meta::trace(trace.len() as u64, trace.total_instructions());
        push_chunked_section(&mut buf, section::TRACE, &meta, &chunks);
    }
    if let Some(packed) = packed {
        let per = items_per_chunk(section::PACKED, false, chunk_bytes);
        let chunks: Vec<(u64, Vec<u8>)> = chunk_ranges(packed.len(), per)
            .into_iter()
            .map(|r| (r.len() as u64, encode_packed_chunk(&packed[r])))
            .collect();
        push_chunked_section(
            &mut buf,
            section::PACKED,
            &meta::packed(packed.len() as u64),
            &chunks,
        );
    }
    if let Some(interned) = interned {
        let per = items_per_chunk(section::INTERNED, false, chunk_bytes);
        let chunks: Vec<(u64, Vec<u8>)> = chunk_ranges(interned.len(), per)
            .into_iter()
            .map(|r| (r.len() as u64, encode_interned_chunk(&interned.events()[r])))
            .collect();
        let meta = meta::interned(interned.len() as u64, interned.pcs());
        push_chunked_section(&mut buf, section::INTERNED, &meta, &chunks);
    }
    for (key, stream) in streams {
        let per = items_per_chunk(section::STREAM, stream.is_laned(), chunk_bytes);
        let chunks: Vec<(u64, Vec<u8>)> = chunk_ranges(stream.len(), per)
            .into_iter()
            .map(|r| {
                let lanes =
                    if stream.is_laned() { &stream.lanes()[r.clone()] } else { &[] as &[u32] };
                (r.len() as u64, encode_stream_chunk(&stream.events()[r], lanes))
            })
            .collect();
        let meta = meta::stream(key, stream.history_bits(), stream.is_laned(), stream.len() as u64);
        push_chunked_section(&mut buf, section::STREAM, &meta, &chunks);
    }
    buf
}

/// Decodes the body of a v3 container (cursor positioned after magic +
/// version) into a whole [`ArtifactBundle`], verifying every head and
/// chunk checksum and every structural invariant.
fn read_artifacts_chunked(cur: &mut Cursor<'_>) -> Result<ArtifactBundle, ReadTraceError> {
    let truncated = ReadTraceError::Truncated { at_event: 0 };
    if cur.remaining() < 12 {
        return Err(truncated);
    }
    let mut bundle = ArtifactBundle { fingerprint: cur.get_u64_le(), ..ArtifactBundle::default() };
    let sections = cur.get_u32_le();
    for _ in 0..sections {
        let head_start = cur.pos;
        if cur.remaining() < 5 {
            return Err(truncated);
        }
        let kind = cur.get_u8();
        let bad = ReadTraceError::BadSection { kind };
        let meta_len = usize::try_from(cur.get_u32_le()).map_err(|_| truncated.clone())?;
        if cur.remaining() < meta_len + 4 {
            return Err(truncated);
        }
        let meta = cur.bytes[cur.pos..cur.pos + meta_len].to_vec();
        cur.pos += meta_len;
        let nchunks = usize::try_from(cur.get_u32_le()).map_err(|_| truncated.clone())?;
        let table_bytes = nchunks.checked_mul(24).ok_or_else(|| truncated.clone())?;
        if cur.remaining() < table_bytes + 8 {
            return Err(truncated);
        }
        let table: Vec<(u64, u64, u64)> =
            (0..nchunks).map(|_| (cur.get_u64_le(), cur.get_u64_le(), cur.get_u64_le())).collect();
        let stored_head = cur.get_u64_le();
        if checksum(&cur.bytes[head_start..cur.pos - 8]) != stored_head {
            return Err(ReadTraceError::SectionChecksum { kind });
        }
        let mut decoder = SectionDecoder::new(kind, &meta).ok_or(bad.clone())?;
        for &(encoded, items, stored) in &table {
            let encoded = usize::try_from(encoded).map_err(|_| truncated.clone())?;
            if cur.remaining() < encoded {
                return Err(truncated);
            }
            let payload = &cur.bytes[cur.pos..cur.pos + encoded];
            cur.pos += encoded;
            if checksum(payload) != stored {
                return Err(ReadTraceError::SectionChecksum { kind });
            }
            decoder.decode_chunk(payload, items).ok_or(bad.clone())?;
        }
        decoder.finish(&mut bundle).ok_or(bad)?;
    }
    if cur.remaining() > 0 {
        return Err(ReadTraceError::TrailingBytes { count: cur.remaining() });
    }
    Ok(bundle)
}

/// Incremental decoder for one v3 section: chunks stream through
/// [`SectionDecoder::decode_chunk`] and [`SectionDecoder::finish`]
/// applies the declared-count and structural validations.
enum SectionDecoder {
    Trace {
        declared: u64,
        total: u64,
        trace: Trace,
        last_instret: u64,
    },
    Packed {
        declared: u64,
        out: Vec<PackedCond>,
    },
    Interned {
        declared: u64,
        pcs: Vec<u64>,
        out: Vec<InternedCond>,
    },
    Stream {
        key: Vec<u8>,
        history_bits: u32,
        laned: bool,
        declared: u64,
        events: Vec<u32>,
        lanes: Vec<u32>,
    },
}

impl SectionDecoder {
    fn new(kind: u8, meta: &[u8]) -> Option<SectionDecoder> {
        match kind {
            section::TRACE => {
                let (declared, total) = meta::parse_trace(meta)?;
                let capacity = usize::try_from(declared).unwrap_or(usize::MAX).min(1 << 24);
                Some(SectionDecoder::Trace {
                    declared,
                    total,
                    trace: Trace::with_capacity(capacity),
                    last_instret: 0,
                })
            }
            section::PACKED => Some(SectionDecoder::Packed {
                declared: meta::parse_packed(meta)?,
                out: Vec::new(),
            }),
            section::INTERNED => {
                let (declared, pcs) = meta::parse_interned(meta)?;
                Some(SectionDecoder::Interned { declared, pcs, out: Vec::new() })
            }
            section::STREAM => {
                let (key, history_bits, laned, declared) = meta::parse_stream(meta)?;
                Some(SectionDecoder::Stream {
                    key,
                    history_bits,
                    laned,
                    declared,
                    events: Vec::new(),
                    lanes: Vec::new(),
                })
            }
            _ => None,
        }
    }

    fn decode_chunk(&mut self, payload: &[u8], items: u64) -> Option<()> {
        match self {
            SectionDecoder::Trace { trace, last_instret, .. } => {
                decode_trace_chunk(payload, items, trace, last_instret)
            }
            SectionDecoder::Packed { out, .. } => decode_packed_chunk(payload, items, out),
            SectionDecoder::Interned { out, .. } => decode_interned_chunk(payload, items, out),
            SectionDecoder::Stream { laned, events, lanes, .. } => {
                decode_stream_chunk(payload, items, *laned, events, lanes)
            }
        }
    }

    fn finish(self, bundle: &mut ArtifactBundle) -> Option<()> {
        match self {
            SectionDecoder::Trace { declared, total, mut trace, last_instret } => {
                if trace.len() as u64 != declared {
                    return None;
                }
                if total >= last_instret {
                    trace.set_total_instructions(total);
                }
                bundle.trace = Some(trace);
            }
            SectionDecoder::Packed { declared, out } => {
                if out.len() as u64 != declared {
                    return None;
                }
                bundle.packed = Some(out);
            }
            SectionDecoder::Interned { declared, pcs, out } => {
                if out.len() as u64 != declared {
                    return None;
                }
                bundle.interned = Some(InternedConds::from_raw_parts(out, pcs)?);
            }
            SectionDecoder::Stream { key, history_bits, laned, declared, events, lanes } => {
                if events.len() as u64 != declared {
                    return None;
                }
                let stream = PatternStream::from_raw_parts(history_bits, events, lanes, laned)?;
                bundle.streams.push((key, stream));
            }
        }
        Some(())
    }
}

fn map_io(err: &std::io::Error) -> ReadTraceError {
    match err.kind() {
        std::io::ErrorKind::UnexpectedEof => ReadTraceError::Truncated { at_event: 0 },
        kind => ReadTraceError::Io { kind },
    }
}

fn read_exact_buf(file: &mut std::fs::File, len: usize) -> Result<Vec<u8>, ReadTraceError> {
    use std::io::Read;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf).map_err(|e| map_io(&e))?;
    Ok(buf)
}

/// Location of one chunk's payload inside a seekable v3 artifact.
#[derive(Debug, Clone, Copy)]
struct ChunkEntry {
    offset: u64,
    encoded: u64,
    items: u64,
    checksum: u64,
}

/// One section's head (kind, metadata, chunk table) inside a seekable
/// v3 artifact.
#[derive(Debug, Clone)]
struct SectionEntry {
    kind: u8,
    meta: Vec<u8>,
    chunks: Vec<ChunkEntry>,
}

/// Identity and shape of one pattern-stream section inside a
/// [`ChunkedArtifact`], as reported by
/// [`ChunkedArtifact::stream_sections`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSectionInfo {
    /// Section index to pass to [`ChunkedArtifact::read_stream_chunk`].
    pub section: usize,
    /// The opaque stream key bytes the section was persisted under.
    pub key: Vec<u8>,
    /// First-level history width the stream was derived at.
    pub history_bits: u32,
    /// Whether the stream carries per-address lane indices.
    pub laned: bool,
    /// Total number of events across all chunks.
    pub events: u64,
    /// Declared item count of each chunk, in file order.
    pub chunk_items: Vec<u64>,
}

/// A v3 artifact opened for seekable, chunk-at-a-time reads.
///
/// [`ChunkedArtifact::open`] reads and verifies only the header and the
/// per-section heads (metadata + chunk tables); chunk payloads stay on
/// disk until fetched with [`ChunkedArtifact::read_stream_chunk`], each
/// fetch verifying that chunk's stored checksum. This is the I/O layer
/// behind the simulator's bounded-memory streaming replay tier.
#[derive(Debug)]
pub struct ChunkedArtifact {
    file: std::fs::File,
    fingerprint: u64,
    sections: Vec<SectionEntry>,
}

impl ChunkedArtifact {
    /// Opens `path` and parses + verifies its header and section heads
    /// without reading any chunk payloads.
    pub fn open(path: &std::path::Path) -> Result<ChunkedArtifact, ReadTraceError> {
        use std::io::{Seek, SeekFrom};
        let mut file = std::fs::File::open(path).map_err(|e| map_io(&e))?;
        let header = read_exact_buf(&mut file, 18)?;
        let found: [u8; 4] = header[..4].try_into().expect("4 bytes");
        if &found != MAGIC {
            return Err(ReadTraceError::BadMagic { found });
        }
        let mut cur = Cursor { bytes: &header, pos: 4 };
        let version = cur.get_u16_le();
        if version != ARTIFACT_VERSION_CHUNKED {
            return Err(ReadTraceError::UnsupportedVersion { found: version });
        }
        let fingerprint = cur.get_u64_le();
        let nsections = cur.get_u32_le() as usize;
        let truncated = ReadTraceError::Truncated { at_event: 0 };
        let mut sections = Vec::new();
        for _ in 0..nsections {
            let fixed = read_exact_buf(&mut file, 5)?;
            let kind = fixed[0];
            let meta_len = u32::from_le_bytes(fixed[1..5].try_into().expect("4 bytes")) as usize;
            let meta = read_exact_buf(&mut file, meta_len)?;
            let count_bytes = read_exact_buf(&mut file, 4)?;
            let nchunks = u32::from_le_bytes(count_bytes[..].try_into().expect("4 bytes")) as usize;
            let table_len = nchunks.checked_mul(24).ok_or_else(|| truncated.clone())?;
            let table = read_exact_buf(&mut file, table_len)?;
            let stored =
                u64::from_le_bytes(read_exact_buf(&mut file, 8)?[..].try_into().expect("8 bytes"));
            let mut head = Vec::with_capacity(9 + meta.len() + table.len());
            head.extend_from_slice(&fixed);
            head.extend_from_slice(&meta);
            head.extend_from_slice(&count_bytes);
            head.extend_from_slice(&table);
            if checksum(&head) != stored {
                return Err(ReadTraceError::SectionChecksum { kind });
            }
            let mut offset = file.stream_position().map_err(|e| map_io(&e))?;
            let mut tcur = Cursor { bytes: &table, pos: 0 };
            let mut chunks = Vec::with_capacity(nchunks);
            for _ in 0..nchunks {
                let (encoded, items, sum) =
                    (tcur.get_u64_le(), tcur.get_u64_le(), tcur.get_u64_le());
                chunks.push(ChunkEntry { offset, encoded, items, checksum: sum });
                offset = offset.checked_add(encoded).ok_or_else(|| truncated.clone())?;
            }
            file.seek(SeekFrom::Start(offset)).map_err(|e| map_io(&e))?;
            sections.push(SectionEntry { kind, meta, chunks });
        }
        let end = file.stream_position().map_err(|e| map_io(&e))?;
        let len = file.metadata().map_err(|e| map_io(&e))?.len();
        if end < len {
            return Err(ReadTraceError::TrailingBytes { count: (len - end) as usize });
        }
        if end > len {
            return Err(truncated);
        }
        Ok(ChunkedArtifact { file, fingerprint, sections })
    }

    /// Workload fingerprint stamped into the artifact header.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Every pattern-stream section in the artifact, in file order.
    #[must_use]
    pub fn stream_sections(&self) -> Vec<StreamSectionInfo> {
        self.sections
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == section::STREAM)
            .filter_map(|(section, s)| {
                meta::parse_stream(&s.meta).map(|(key, history_bits, laned, events)| {
                    StreamSectionInfo {
                        section,
                        key,
                        history_bits,
                        laned,
                        events,
                        chunk_items: s.chunks.iter().map(|c| c.items).collect(),
                    }
                })
            })
            .collect()
    }

    /// Looks up the pattern-stream section persisted under `key`.
    #[must_use]
    pub fn find_stream(&self, key: &[u8]) -> Option<StreamSectionInfo> {
        self.stream_sections().into_iter().find(|info| info.key == key)
    }

    /// Reads, checksum-verifies and decodes one chunk of a
    /// pattern-stream section: `(events, lanes)`, with `lanes` empty
    /// for unlaned streams.
    pub fn read_stream_chunk(
        &mut self,
        section: usize,
        chunk: usize,
    ) -> Result<(Vec<u32>, Vec<u32>), ReadTraceError> {
        use std::io::{Read, Seek, SeekFrom};
        let bad = ReadTraceError::BadSection { kind: section::STREAM };
        let entry = self.sections.get(section).ok_or(bad.clone())?;
        if entry.kind != section::STREAM {
            return Err(ReadTraceError::BadSection { kind: entry.kind });
        }
        let (_, _, laned, _) = meta::parse_stream(&entry.meta).ok_or(bad.clone())?;
        let c = *entry.chunks.get(chunk).ok_or(bad.clone())?;
        self.file.seek(SeekFrom::Start(c.offset)).map_err(|e| map_io(&e))?;
        let encoded = usize::try_from(c.encoded).map_err(|_| bad.clone())?;
        let mut payload = vec![0u8; encoded];
        self.file.read_exact(&mut payload).map_err(|e| map_io(&e))?;
        if checksum(&payload) != c.checksum {
            return Err(ReadTraceError::SectionChecksum { kind: section::STREAM });
        }
        let mut events = Vec::with_capacity(usize::try_from(c.items).map_err(|_| bad.clone())?);
        let mut lanes = Vec::new();
        decode_stream_chunk(&payload, c.items, laned, &mut events, &mut lanes).ok_or(bad)?;
        Ok((events, lanes))
    }
}

/// File magic identifying a memo artifact ([`write_memo`] /
/// [`read_memo`]): one memoized sweep-service response.
pub const MEMO_MAGIC: &[u8; 4] = b"TLBM";
/// Version of the memo artifact format.
pub const MEMO_VERSION: u16 = 1;

/// Section kind tags of the memo artifact.
mod memo_section {
    /// The canonical plan JSON (exactly one, first).
    pub const PLAN: u8 = 1;
    /// One pre-encoded result-frame payload (zero or more, in plan
    /// order).
    pub const FRAME: u8 = 2;
}

/// The decoded contents of a memo artifact: one memoized service
/// response keyed by the plan's wire hash and the fingerprints of the
/// workloads it measures.
///
/// The frames are the service's pre-encoded `result` frame *payloads*
/// (not whole lines): replaying the stored strings is what makes a
/// response served from this tier byte-identical to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoArtifact {
    /// `Plan::wire_hash` of the canonical plan JSON; part of the file
    /// name, repeated inside so a renamed file cannot impersonate
    /// another plan's response.
    pub plan_hash: u64,
    /// A fold over the codegen fingerprints of every workload the plan
    /// touches; a workload edit changes it, so stale responses are
    /// rejected by construction.
    pub fingerprint: u64,
    /// The canonical plan JSON — the daemon's memo key.
    pub plan: String,
    /// Pre-encoded result-frame payloads, in plan order.
    pub frames: Vec<String>,
}

/// Serializes a memo artifact: a fixed header, then the plan and every
/// frame as independently checksummed sections.
///
/// The inverse of [`read_memo`]; the two round-trip exactly.
///
/// ```text
/// magic     : 4 bytes = b"TLBM"
/// version   : u16     = 1
/// plan_hash : u64
/// fingerprint : u64
/// sections  : u32     = 1 + frames
/// per section:
///   kind    : u8      1 plan json, 2 frame payload
///   len     : u64     payload byte length
///   payload : len bytes (UTF-8)
///   checksum: u64     fx-fold of the payload (see [`checksum`])
/// ```
#[must_use]
pub fn write_memo(artifact: &MemoArtifact) -> Vec<u8> {
    let sections = 1 + artifact.frames.len();
    let mut buf = Vec::new();
    buf.extend_from_slice(MEMO_MAGIC);
    buf.extend_from_slice(&MEMO_VERSION.to_le_bytes());
    buf.extend_from_slice(&artifact.plan_hash.to_le_bytes());
    buf.extend_from_slice(&artifact.fingerprint.to_le_bytes());
    buf.extend_from_slice(&u32::try_from(sections).expect("section count fits u32").to_le_bytes());
    push_section(&mut buf, memo_section::PLAN, artifact.plan.as_bytes());
    for frame in &artifact.frames {
        push_section(&mut buf, memo_section::FRAME, frame.as_bytes());
    }
    buf
}

/// Deserializes a memo artifact produced by [`write_memo`].
///
/// # Errors
///
/// Returns a [`ReadTraceError`] if the magic or version do not match,
/// the buffer is truncated at any byte boundary, bytes trail the last
/// section, any section checksum mismatches, a section payload is not
/// UTF-8, or the sections are not exactly one plan followed by frames.
/// An `Err` means the file proves nothing — the daemon treats it as a
/// miss and regenerates on the next cold execution.
pub fn read_memo(bytes: &[u8]) -> Result<MemoArtifact, ReadTraceError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 || &bytes[..4] != MEMO_MAGIC {
        let mut found = [0u8; 4];
        let n = cur.remaining().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(ReadTraceError::BadMagic { found });
    }
    cur.pos = 4;
    if cur.remaining() < 2 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let version = cur.get_u16_le();
    if version != MEMO_VERSION {
        return Err(ReadTraceError::UnsupportedVersion { found: version });
    }
    if cur.remaining() < 20 {
        return Err(ReadTraceError::Truncated { at_event: 0 });
    }
    let plan_hash = cur.get_u64_le();
    let fingerprint = cur.get_u64_le();
    let sections = cur.get_u32_le();
    let mut plan: Option<String> = None;
    let mut frames = Vec::new();
    for index in 0..sections {
        if cur.remaining() < 9 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let kind = cur.get_u8();
        let len = cur.get_u64_le();
        let Ok(len) = usize::try_from(len) else {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        };
        if cur.remaining() < len + 8 {
            return Err(ReadTraceError::Truncated { at_event: 0 });
        }
        let payload = &bytes[cur.pos..cur.pos + len];
        cur.pos += len;
        let stored = cur.get_u64_le();
        if checksum(payload) != stored {
            return Err(ReadTraceError::SectionChecksum { kind });
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| ReadTraceError::BadSection { kind })?
            .to_owned();
        match kind {
            memo_section::PLAN if index == 0 && plan.is_none() => plan = Some(text),
            memo_section::FRAME if plan.is_some() => frames.push(text),
            _ => return Err(ReadTraceError::BadSection { kind }),
        }
    }
    if cur.remaining() > 0 {
        return Err(ReadTraceError::TrailingBytes { count: cur.remaining() });
    }
    let plan = plan.ok_or(ReadTraceError::BadSection { kind: memo_section::PLAN })?;
    Ok(MemoArtifact { plan_hash, fingerprint, plan, frames })
}

/// A held advisory cross-process lock: a lock file created exclusively,
/// removed on drop (and scavenged as stale by other writers if the
/// holding process dies first). See [`FileLock::acquire`].
pub struct FileLock {
    path: std::path::PathBuf,
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl FileLock {
    /// Acquires the advisory lock at `lock_path` (created with
    /// `create_new`, so exactly one process wins). A lock file older
    /// than `stale` is treated as abandoned by a crashed writer and
    /// broken with a warning. Returns `None` — with a warning — when
    /// the lock cannot be acquired within `wait`: callers proceed
    /// unlocked rather than stalling real work on a cache courtesy,
    /// because every writer pairs this lock with [`write_file_atomic`],
    /// so the worst unlocked outcome is last-writer-wins, never a torn
    /// file.
    #[must_use]
    pub fn acquire(
        lock_path: &std::path::Path,
        wait: std::time::Duration,
        stale: std::time::Duration,
    ) -> Option<FileLock> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(lock_path) {
                Ok(_) => return Some(FileLock { path: lock_path.to_path_buf() }),
                Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => {
                    let is_stale = std::fs::metadata(lock_path)
                        .and_then(|meta| meta.modified())
                        .ok()
                        .and_then(|modified| modified.elapsed().ok())
                        .is_some_and(|age| age >= stale);
                    if is_stale {
                        eprintln!("warning: breaking stale artifact lock {}", lock_path.display());
                        let _ = std::fs::remove_file(lock_path);
                        continue;
                    }
                    if std::time::Instant::now() >= deadline {
                        eprintln!(
                            "warning: timed out waiting for artifact lock {}; writing anyway",
                            lock_path.display()
                        );
                        return None;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(_) => return None,
            }
        }
    }
}

/// Writes `bytes` to `path` via a unique temp file in the same
/// directory, then renames over the target, so readers only ever
/// observe complete files (the parent directory is created if missing).
///
/// # Errors
///
/// Propagates directory-creation, write, and rename failures; a failed
/// rename removes the temp file.
pub fn write_file_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    std::fs::create_dir_all(dir)?;
    let temp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&temp, bytes)?;
    std::fs::rename(&temp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&temp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x1000, true, 0x0f00, 10));
        t.push(BranchRecord::unconditional(0x0f10, BranchClass::Call, 0x4000, 14));
        t.push(TrapRecord::new(0x4004, 20));
        t.push(BranchRecord::unconditional(0x4010, BranchClass::Return, 0x0f14, 25));
        t.push(BranchRecord::conditional(0x1000, false, 0x0f00, 31));
        t.set_total_instructions(40);
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let bytes = write_trace(&t);
        let back = read_trace(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let back = read_trace(&write_trace(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(b"NOPE....").unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic { .. }));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = write_trace(&sample_trace());
        bytes[4] = 99;
        let err = read_trace(&bytes).unwrap_err();
        assert_eq!(err, ReadTraceError::UnsupportedVersion { found: 99 });
    }

    #[test]
    fn rejects_truncation_mid_event() {
        let bytes = write_trace(&sample_trace());
        let cut = &bytes[..bytes.len() - 5];
        let err = read_trace(cut).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated { .. }));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut bytes = write_trace(&sample_trace());
        // First event tag lives right after the 22-byte header.
        bytes[22] = 42;
        let err = read_trace(&bytes).unwrap_err();
        assert_eq!(err, ReadTraceError::UnknownTag { tag: 42, at_event: 0 });
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ReadTraceError::Truncated { at_event: 7 }.to_string();
        assert!(msg.contains("event 7"));
    }

    #[allow(clippy::type_complexity)]
    fn sample_bundle() -> (Trace, Vec<PackedCond>, InternedConds, Vec<(Vec<u8>, PatternStream)>) {
        let trace = crate::synth::LoopNest::new(&[6, 9]).generate();
        let packed = trace.pack_conditionals();
        let interned = InternedConds::from_packed(&packed);
        let mut unlaned = PatternStream::new(6, false);
        let mut laned = PatternStream::new(4, true);
        for (i, cond) in packed.iter().enumerate() {
            unlaned.push(i % 64, cond.taken());
            laned.push_with_lane(i % 16, cond.taken(), (i % 5) as u32);
        }
        (trace, packed, interned, vec![(vec![0, 9, 0, 0, 0], unlaned), (b"laned".to_vec(), laned)])
    }

    fn write_sample(fingerprint: u64) -> Vec<u8> {
        let (trace, packed, interned, streams) = sample_bundle();
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        write_artifacts(fingerprint, Some(&trace), Some(&packed), Some(&interned), &refs)
    }

    #[test]
    fn artifacts_round_trip_every_section() {
        let (trace, packed, interned, streams) = sample_bundle();
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        let bytes = write_artifacts(0xfeed, Some(&trace), Some(&packed), Some(&interned), &refs);
        let bundle = read_artifacts(&bytes).unwrap();
        assert_eq!(bundle.fingerprint, 0xfeed);
        assert_eq!(bundle.trace.as_ref(), Some(&trace));
        assert_eq!(bundle.packed.as_deref(), Some(packed.as_slice()));
        assert_eq!(bundle.interned.as_ref(), Some(&interned));
        assert_eq!(bundle.streams, streams);
    }

    #[test]
    fn artifacts_round_trip_each_section_alone() {
        let (trace, packed, interned, streams) = sample_bundle();
        let bundle = read_artifacts(&write_artifacts(1, Some(&trace), None, None, &[])).unwrap();
        assert_eq!(bundle.trace, Some(trace));
        assert_eq!(bundle.packed, None);
        let bundle = read_artifacts(&write_artifacts(2, None, Some(&packed), None, &[])).unwrap();
        assert_eq!(bundle.packed.as_deref(), Some(packed.as_slice()));
        let bundle = read_artifacts(&write_artifacts(3, None, None, Some(&interned), &[])).unwrap();
        assert_eq!(bundle.interned, Some(interned));
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        let bundle = read_artifacts(&write_artifacts(4, None, None, None, &refs)).unwrap();
        assert_eq!(bundle.streams, streams);
        let empty = read_artifacts(&write_artifacts(5, None, None, None, &[])).unwrap();
        assert_eq!(empty, ArtifactBundle { fingerprint: 5, ..ArtifactBundle::default() });
    }

    #[test]
    fn artifacts_reject_truncation_at_every_byte_boundary() {
        let bytes = write_sample(0xabcd);
        for cut in 0..bytes.len() {
            assert!(
                read_artifacts(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
        assert!(read_artifacts(&bytes).is_ok());
    }

    #[test]
    fn artifacts_detect_any_single_bit_flip_in_payloads() {
        let bytes = write_sample(0x1234);
        // Flip one bit in every byte past the fixed header; the magic,
        // version, fingerprint and section-count bytes are covered by the
        // dedicated header tests (a fingerprint flip legitimately decodes —
        // staleness is the store's comparison, not the container's).
        for pos in 18..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(
                read_artifacts(&corrupt).is_err(),
                "bit flip at byte {pos} must not decode cleanly"
            );
        }
    }

    #[test]
    fn artifacts_reject_checksum_flip_with_checksum_error() {
        let bytes = write_sample(7);
        // The first section's checksum occupies the 8 bytes before the
        // second section's kind tag; flipping the final byte of the file
        // hits the *last* section's checksum, which is easiest to address.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x80;
        assert!(matches!(
            read_artifacts(&corrupt).unwrap_err(),
            ReadTraceError::SectionChecksum { kind: section::STREAM }
        ));
    }

    #[test]
    fn artifacts_reject_trailing_bytes() {
        let mut bytes = write_sample(7);
        bytes.push(0);
        assert!(matches!(
            read_artifacts(&bytes).unwrap_err(),
            ReadTraceError::TrailingBytes { count: 1 }
        ));
    }

    #[test]
    fn artifacts_reject_v1_files_with_versioned_error() {
        let bytes = write_trace(&sample_trace());
        assert_eq!(
            read_artifacts(&bytes).unwrap_err(),
            ReadTraceError::UnsupportedVersion { found: VERSION }
        );
        // And the bare-trace reader symmetrically rejects v2 containers.
        let v2 = write_sample(1);
        assert_eq!(
            read_trace(&v2).unwrap_err(),
            ReadTraceError::UnsupportedVersion { found: ARTIFACT_VERSION }
        );
    }

    #[test]
    fn artifacts_reject_bad_section_structure() {
        let (_, _, interned, _) = sample_bundle();
        let bytes = write_artifacts(9, None, None, Some(&interned), &[]);
        // Rewrite the first interned event's id to point past the pc
        // table, then re-stamp the section checksum so only structural
        // validation can catch it. Payload starts at header(18) + kind(1)
        // + len(8); events follow two u64 counts.
        let payload_start = 18 + 1 + 8;
        let mut corrupt = bytes.clone();
        let huge = (u32::MAX).to_le_bytes();
        corrupt[payload_start + 16..payload_start + 20].copy_from_slice(&huge);
        let payload_len = bytes.len() - payload_start - 8;
        let sum = checksum(&corrupt[payload_start..payload_start + payload_len]);
        let checksum_at = payload_start + payload_len;
        corrupt[checksum_at..checksum_at + 8].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            read_artifacts(&corrupt).unwrap_err(),
            ReadTraceError::BadSection { kind: section::INTERNED }
        );
    }

    fn write_sample_chunked(fingerprint: u64, chunk_bytes: usize) -> Vec<u8> {
        let (trace, packed, interned, streams) = sample_bundle();
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        write_artifacts_chunked(
            fingerprint,
            Some(&trace),
            Some(&packed),
            Some(&interned),
            &refs,
            chunk_bytes,
        )
    }

    #[test]
    fn chunked_artifacts_round_trip_every_section() {
        let (trace, packed, interned, streams) = sample_bundle();
        for chunk_bytes in [DEFAULT_CHUNK_BYTES, 64, 1] {
            let bytes = write_sample_chunked(0xfeed, chunk_bytes);
            let bundle = read_artifacts(&bytes).unwrap();
            assert_eq!(bundle.fingerprint, 0xfeed);
            assert_eq!(bundle.trace.as_ref(), Some(&trace));
            assert_eq!(bundle.packed.as_deref(), Some(packed.as_slice()));
            assert_eq!(bundle.interned.as_ref(), Some(&interned));
            assert_eq!(bundle.streams, streams);
        }
    }

    #[test]
    fn chunked_artifacts_round_trip_each_section_alone() {
        let (trace, packed, interned, streams) = sample_bundle();
        let b = 64;
        let bundle =
            read_artifacts(&write_artifacts_chunked(1, Some(&trace), None, None, &[], b)).unwrap();
        assert_eq!(bundle.trace, Some(trace));
        assert_eq!(bundle.packed, None);
        let bundle =
            read_artifacts(&write_artifacts_chunked(2, None, Some(&packed), None, &[], b)).unwrap();
        assert_eq!(bundle.packed.as_deref(), Some(packed.as_slice()));
        let bundle =
            read_artifacts(&write_artifacts_chunked(3, None, None, Some(&interned), &[], b))
                .unwrap();
        assert_eq!(bundle.interned, Some(interned));
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        let bundle =
            read_artifacts(&write_artifacts_chunked(4, None, None, None, &refs, b)).unwrap();
        assert_eq!(bundle.streams, streams);
        let empty = read_artifacts(&write_artifacts_chunked(5, None, None, None, &[], b)).unwrap();
        assert_eq!(empty, ArtifactBundle { fingerprint: 5, ..ArtifactBundle::default() });
    }

    #[test]
    fn chunked_artifacts_smaller_than_v2() {
        let v2 = write_sample(1);
        let v3 = write_sample_chunked(1, DEFAULT_CHUNK_BYTES);
        assert!(
            v3.len() < v2.len(),
            "varint+delta v3 ({} bytes) should undercut v2 ({} bytes)",
            v3.len(),
            v2.len()
        );
    }

    #[test]
    fn chunked_artifacts_reject_truncation_at_every_byte_boundary() {
        // A 64-byte budget forces multi-chunk sections, so the cut loop
        // exercises chunk boundaries and mid-chunk cuts alike.
        let bytes = write_sample_chunked(0xabcd, 64);
        for cut in 0..bytes.len() {
            assert!(
                read_artifacts(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
        assert!(read_artifacts(&bytes).is_ok());
    }

    #[test]
    fn chunked_artifacts_detect_any_single_bit_flip_in_payloads() {
        let bytes = write_sample_chunked(0x1234, 64);
        // As in the v2 test: bytes below 18 are the fixed header, whose
        // flips are covered by the dedicated header tests.
        for pos in 18..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(
                read_artifacts(&corrupt).is_err(),
                "bit flip at byte {pos} must not decode cleanly"
            );
        }
    }

    #[test]
    fn chunked_artifacts_reject_trailing_bytes() {
        let mut bytes = write_sample_chunked(7, 64);
        bytes.push(0);
        assert!(matches!(
            read_artifacts(&bytes).unwrap_err(),
            ReadTraceError::TrailingBytes { count: 1 }
        ));
    }

    #[test]
    fn v2_and_v3_decode_to_the_same_bundle() {
        let v2 = read_artifacts(&write_sample(6)).unwrap();
        let v3 = read_artifacts(&write_sample_chunked(6, 64)).unwrap();
        assert_eq!(v2, v3);
    }

    #[test]
    fn chunked_artifact_seekable_reads_match_whole_buffer() {
        let dir = std::env::temp_dir().join(format!("tlabp-io-chunked-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.tlabp");

        // A stream long enough to span several aligned chunks.
        let mut long = PatternStream::new(8, true);
        for i in 0..3 * STREAM_CHUNK_ALIGN + 123 {
            long.push_with_lane(i % 256, i % 3 == 0, (i % 7) as u32);
        }
        let (trace, packed, interned, mut streams) = sample_bundle();
        streams.push((b"long".to_vec(), long));
        let refs: Vec<(Vec<u8>, &PatternStream)> =
            streams.iter().map(|(k, s)| (k.clone(), s)).collect();
        let bytes = write_artifacts_chunked(
            0xbeef,
            Some(&trace),
            Some(&packed),
            Some(&interned),
            &refs,
            STREAM_CHUNK_ALIGN * 4,
        );
        std::fs::write(&path, &bytes).unwrap();

        let mut artifact = ChunkedArtifact::open(&path).unwrap();
        assert_eq!(artifact.fingerprint(), 0xbeef);
        let infos = artifact.stream_sections();
        assert_eq!(infos.len(), streams.len());
        for (key, stream) in &streams {
            let info = artifact.find_stream(key).expect("stream section present");
            assert_eq!(info.history_bits, stream.history_bits());
            assert_eq!(info.laned, stream.is_laned());
            assert_eq!(info.events, stream.len() as u64);
            let mut events = Vec::new();
            let mut lanes = Vec::new();
            for chunk in 0..info.chunk_items.len() {
                let (e, l) = artifact.read_stream_chunk(info.section, chunk).unwrap();
                assert_eq!(e.len() as u64, info.chunk_items[chunk]);
                events.extend_from_slice(&e);
                lanes.extend_from_slice(&l);
            }
            assert_eq!(events, stream.events());
            assert_eq!(lanes, stream.lanes());
        }
        let long_info = artifact.find_stream(b"long").unwrap();
        assert!(long_info.chunk_items.len() > 1, "long stream must span multiple chunks");
        assert!(long_info.chunk_items[..long_info.chunk_items.len() - 1]
            .iter()
            .all(|&n| (n as usize).is_multiple_of(STREAM_CHUNK_ALIGN)));

        // A flipped payload byte surfaces on the chunk read, not open().
        let mut corrupt_bytes = bytes.clone();
        let last = corrupt_bytes.len() - 1;
        corrupt_bytes[last] ^= 0x40;
        let corrupt_path = dir.join("corrupt.tlabp");
        std::fs::write(&corrupt_path, &corrupt_bytes).unwrap();
        let mut corrupt = ChunkedArtifact::open(&corrupt_path).unwrap();
        let info = corrupt.find_stream(b"long").unwrap();
        let last_chunk = info.chunk_items.len() - 1;
        assert!(matches!(
            corrupt.read_stream_chunk(info.section, last_chunk).unwrap_err(),
            ReadTraceError::SectionChecksum { kind: section::STREAM }
        ));

        // Truncating the file mid-payload surfaces as Truncated on read.
        let cut_path = dir.join("cut.tlabp");
        std::fs::write(&cut_path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(
            ChunkedArtifact::open(&cut_path).unwrap_err(),
            ReadTraceError::Truncated { .. }
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunked_artifact_open_rejects_v2_and_bad_heads() {
        let dir = std::env::temp_dir().join(format!("tlabp-io-chunkhdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let v2_path = dir.join("v2.tlabp");
        std::fs::write(&v2_path, write_sample(3)).unwrap();
        assert_eq!(
            ChunkedArtifact::open(&v2_path).unwrap_err(),
            ReadTraceError::UnsupportedVersion { found: ARTIFACT_VERSION }
        );

        // Flip a chunk-table byte: open() must fail the head checksum.
        let bytes = write_sample_chunked(3, 64);
        let mut corrupt = bytes.clone();
        corrupt[30] ^= 0x10;
        let bad_path = dir.join("bad.tlabp");
        std::fs::write(&bad_path, &corrupt).unwrap();
        assert!(matches!(
            ChunkedArtifact::open(&bad_path).unwrap_err(),
            ReadTraceError::SectionChecksum { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_bytes_env_parses_clamps_and_defaults() {
        // Single test owns the env var, so set/remove stays race-free.
        std::env::remove_var(CHUNK_BYTES_ENV);
        assert_eq!(chunk_bytes_from_env(), DEFAULT_CHUNK_BYTES);
        std::env::set_var(CHUNK_BYTES_ENV, "1048576");
        assert_eq!(chunk_bytes_from_env(), 1 << 20);
        std::env::set_var(CHUNK_BYTES_ENV, "12");
        assert_eq!(chunk_bytes_from_env(), MIN_CHUNK_BYTES);
        std::env::set_var(CHUNK_BYTES_ENV, "lots");
        assert_eq!(chunk_bytes_from_env(), DEFAULT_CHUNK_BYTES);
        std::env::remove_var(CHUNK_BYTES_ENV);
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut cur = Cursor { bytes: &buf, pos: 0 };
            assert_eq!(get_varint(&mut cur), Some(v), "value {v}");
            assert_eq!(cur.remaining(), 0);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Truncated and over-long encodings are rejected.
        let mut cur = Cursor { bytes: &[0x80], pos: 0 };
        assert_eq!(get_varint(&mut cur), None);
        let eleven = [0xff; 11];
        let mut cur = Cursor { bytes: &eleven, pos: 0 };
        assert_eq!(get_varint(&mut cur), None);
    }

    #[test]
    fn checksum_distinguishes_length_and_content() {
        assert_ne!(checksum(b""), checksum(&[0]));
        assert_ne!(checksum(&[0]), checksum(&[0, 0]));
        assert_ne!(checksum(b"abcdefgh"), checksum(b"abcdefgi"));
        assert_eq!(checksum(b"abcdefgh"), checksum(b"abcdefgh"));
    }

    fn sample_memo() -> MemoArtifact {
        MemoArtifact {
            plan_hash: 0x1234_5678_9abc_def0,
            fingerprint: 0x0fed_cba9_8765_4321,
            plan: r#"{"version":1,"jobs":[{"scheme":"PAg(12)"}]}"#.to_owned(),
            frames: vec![
                r#"{"index":0,"outcome":{"skipped":"with spaces"}}"#.to_owned(),
                r#"{"index":1,"outcome":{"skipped":"second"}}"#.to_owned(),
            ],
        }
    }

    #[test]
    fn memo_round_trips() {
        let memo = sample_memo();
        assert_eq!(read_memo(&write_memo(&memo)).unwrap(), memo);
        let empty = MemoArtifact { frames: Vec::new(), ..sample_memo() };
        assert_eq!(read_memo(&write_memo(&empty)).unwrap(), empty);
    }

    #[test]
    fn memo_rejects_every_truncation() {
        let bytes = write_memo(&sample_memo());
        for cut in 0..bytes.len() {
            assert!(read_memo(&bytes[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn memo_rejects_every_bit_flip_past_the_magic() {
        let memo = sample_memo();
        let bytes = write_memo(&memo);
        for pos in 4..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            // A flip in the stored plan_hash/fingerprint header words
            // still decodes (they are caller-validated metadata); any
            // flip in a section must fail the checksum or the structure.
            if (6..22).contains(&pos) {
                let back = read_memo(&corrupt).expect("header metadata flips still decode");
                assert!(
                    back.plan_hash != memo.plan_hash || back.fingerprint != memo.fingerprint,
                    "flip at {pos} must surface in the decoded metadata"
                );
            } else {
                assert!(read_memo(&corrupt).is_err(), "bit flip at byte {pos} must not decode");
            }
        }
    }

    #[test]
    fn memo_rejects_trailing_bytes_and_wrong_formats() {
        let mut bytes = write_memo(&sample_memo());
        bytes.push(0);
        assert_eq!(read_memo(&bytes).unwrap_err(), ReadTraceError::TrailingBytes { count: 1 });
        assert!(matches!(
            read_memo(&write_trace(&sample_trace())).unwrap_err(),
            ReadTraceError::BadMagic { .. }
        ));
    }

    #[test]
    fn file_lock_is_exclusive_and_breaks_stale_locks() {
        let dir = std::env::temp_dir().join(format!("tlabp-io-lock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let lock_path = dir.join("x.tlabm.lock");
        let wait = std::time::Duration::from_millis(50);
        let stale = std::time::Duration::from_secs(3600);
        let held = FileLock::acquire(&lock_path, wait, stale).expect("first acquire wins");
        assert!(
            FileLock::acquire(&lock_path, wait, stale).is_none(),
            "second acquire times out while the lock is held"
        );
        drop(held);
        assert!(!lock_path.exists(), "drop removes the lock file");
        // A zero stale budget treats any existing lock as abandoned.
        let _orphan = std::fs::File::create(&lock_path).unwrap();
        let reacquired = FileLock::acquire(&lock_path, wait, std::time::Duration::ZERO);
        assert!(reacquired.is_some(), "stale lock is broken and re-acquired");
        drop(reacquired);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_file_atomic_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("tlabp-io-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("artifact.tlabm");
        write_file_atomic(&path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        write_file_atomic(&path, b"rewritten").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"rewritten");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files survive: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
