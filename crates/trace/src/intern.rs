//! PC-interned conditional-branch streams: the input of the fused
//! multi-predictor simulation path.
//!
//! A packed stream ([`PackedCond`]) still carries every branch's full
//! 62-bit address, so each per-address predictor stepping it must hash
//! (or tag-search) the pc on every event. A whole-plan sweep replays the
//! same trace under many predictors, re-resolving the same addresses
//! once per predictor per event. Interning hoists that work out of the
//! hot loop entirely: one pass per trace assigns each distinct branch pc
//! a dense `u32` id (in first-appearance order, so the mapping is
//! deterministic), after which ideal per-address state becomes direct
//! `Vec` indexing (see `step_interned` in `tlabp-core`) and each event
//! shrinks to 4 bytes.
//!
//! The id→pc table rides along ([`InternedConds::pc_of`]) because
//! practical cache BHTs still need real address bits for set indexing
//! and tags; the interned stream loses no information a predictor reads.
//!
//! # Example
//!
//! ```
//! use tlabp_trace::synth::LoopNest;
//! use tlabp_trace::InternedConds;
//!
//! let trace = LoopNest::new(&[10, 4]).generate();
//! let interned = InternedConds::from_packed(&trace.pack_conditionals());
//! assert_eq!(interned.len(), trace.conditional_branches().count());
//! assert!(interned.distinct_pcs() < interned.len());
//! ```

use std::collections::HashMap;

use crate::record::BranchRecord;
use crate::trace::{PackedCond, Trace};

/// One conditional branch of an interned stream, compressed into 32
/// bits: `id << 2 | backward << 1 | taken`.
///
/// `id` is the dense alias of the branch's pc, assigned per stream by
/// [`InternedConds::from_packed`]; the two low bits mirror
/// [`PackedCond`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct InternedCond(u32);

impl InternedCond {
    /// Most distinct pcs one stream can intern (`id` gets 30 bits).
    pub const MAX_IDS: usize = 1 << 30;

    fn new(id: u32, taken: bool, backward: bool) -> Self {
        InternedCond(id << 2 | u32::from(backward) << 1 | u32::from(taken))
    }

    /// The raw 32-bit encoding (`id << 2 | backward << 1 | taken`) — the
    /// on-disk representation of the v2 artifact container's interned
    /// section ([`crate::io`]).
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs an interned conditional from its raw encoding. Every
    /// 32-bit value decodes (the id field spans the remaining width);
    /// whether the id is *meaningful* depends on the owning stream's
    /// id→pc table, which [`InternedConds::from_raw_parts`] validates.
    #[must_use]
    pub fn from_bits(bits: u32) -> Self {
        InternedCond(bits)
    }

    /// The dense id of the branch's pc within its stream.
    #[must_use]
    pub fn id(self) -> u32 {
        self.0 >> 2
    }

    /// The resolved direction.
    #[must_use]
    pub fn taken(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether the branch jumps backward (target ≤ pc).
    #[must_use]
    pub fn is_backward(self) -> bool {
        self.0 & 2 != 0
    }
}

/// A conditional-branch stream whose pcs have been interned to dense
/// ids, plus the id→pc table.
///
/// Within one `InternedConds` the id↔pc mapping is a bijection: equal
/// ids always mean equal pcs and vice versa, so a predictor keying
/// per-address state by id sees exactly the aliasing it would see
/// keying by pc — the fused path stays bit-identical to the packed one.
/// Ids are only meaningful relative to their own stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InternedConds {
    events: Vec<InternedCond>,
    pcs: Vec<u64>,
}

impl InternedConds {
    /// Interns a packed stream: one id per distinct pc, assigned in
    /// first-appearance order.
    ///
    /// # Panics
    ///
    /// Panics if the stream holds more than [`InternedCond::MAX_IDS`]
    /// distinct pcs.
    #[must_use]
    pub fn from_packed(packed: &[PackedCond]) -> Self {
        let mut ids: HashMap<u64, u32> = HashMap::new();
        let mut pcs: Vec<u64> = Vec::new();
        let events = packed
            .iter()
            .map(|cond| {
                let pc = cond.pc();
                let id = *ids.entry(pc).or_insert_with(|| {
                    assert!(pcs.len() < InternedCond::MAX_IDS, "too many distinct pcs to intern");
                    pcs.push(pc);
                    (pcs.len() - 1) as u32
                });
                InternedCond::new(id, cond.taken(), cond.is_backward())
            })
            .collect();
        InternedConds { events, pcs }
    }

    /// Interns a trace's conditional branches (packs, then interns).
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        InternedConds::from_packed(&trace.pack_conditionals())
    }

    /// Reassembles a stream from its parts (the inverse of
    /// [`InternedConds::events`] + [`InternedConds::pcs`]), or `None`
    /// when the parts are inconsistent: an event id outside the pc table,
    /// or a pc table that is not an injective image of distinct
    /// addresses. Deserialization uses this so a corrupted or truncated
    /// artifact can never yield a stream whose id↔pc mapping is not the
    /// bijection the fused simulation path relies on.
    #[must_use]
    pub fn from_raw_parts(events: Vec<InternedCond>, pcs: Vec<u64>) -> Option<Self> {
        let distinct: std::collections::HashSet<u64> = pcs.iter().copied().collect();
        if distinct.len() != pcs.len() {
            return None;
        }
        if events.iter().any(|event| event.id() as usize >= pcs.len()) {
            return None;
        }
        Some(InternedConds { events, pcs })
    }

    /// The id→pc table, indexed by id.
    #[must_use]
    pub fn pcs(&self) -> &[u64] {
        &self.pcs
    }

    /// The interned events, in stream order.
    #[must_use]
    pub fn events(&self) -> &[InternedCond] {
        &self.events
    }

    /// The pc that `id` aliases.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not assigned by this stream.
    #[must_use]
    pub fn pc_of(&self, id: u32) -> u64 {
        self.pcs[id as usize]
    }

    /// Number of distinct branch pcs (= the number of ids assigned).
    #[must_use]
    pub fn distinct_pcs(&self) -> usize {
        self.pcs.len()
    }

    /// Number of events in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Expands an event of this stream back into a [`BranchRecord`] —
    /// the same record [`PackedCond::to_record`] would have produced, so
    /// simulations over either stream are bit-identical.
    #[inline]
    #[must_use]
    pub fn record(&self, event: InternedCond) -> BranchRecord {
        let pc = self.pcs[event.id() as usize];
        let target = if event.is_backward() { pc } else { pc + 4 };
        BranchRecord::conditional(pc, event.taken(), target, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;
    use crate::synth::{BiasedCoins, LoopNest};

    fn random_packed(seed: u64, events: usize, pcs: u64) -> Vec<PackedCond> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..events)
            .map(|_| {
                // Spread pcs across the full packable width so interning is
                // exercised on high bits too.
                let pc = (rng.next_below(pcs) << 40 | rng.next_below(pcs)) & PackedCond::PC_MASK;
                PackedCond::new(pc, rng.random_bool(0.6), rng.random_bool(0.3))
            })
            .collect()
    }

    #[test]
    fn ids_are_dense_and_first_appearance_ordered() {
        let packed = random_packed(1, 5_000, 37);
        let interned = InternedConds::from_packed(&packed);
        assert_eq!(interned.len(), packed.len());
        let mut next_expected = 0u32;
        for (event, cond) in interned.events().iter().zip(&packed) {
            // A fresh id must be exactly the next unused integer.
            if event.id() >= next_expected {
                assert_eq!(event.id(), next_expected);
                next_expected += 1;
            }
            assert_eq!(interned.pc_of(event.id()), cond.pc());
        }
        assert_eq!(interned.distinct_pcs() as u32, next_expected);
    }

    #[test]
    fn id_pc_mapping_is_a_bijection() {
        let packed = random_packed(2, 8_000, 211);
        let interned = InternedConds::from_packed(&packed);
        let distinct: std::collections::HashSet<u64> = packed.iter().map(|c| c.pc()).collect();
        assert_eq!(interned.distinct_pcs(), distinct.len());
        let distinct_ids: std::collections::HashSet<u32> =
            interned.events().iter().map(|e| e.id()).collect();
        assert_eq!(distinct_ids.len(), distinct.len());
    }

    #[test]
    fn records_match_packed_expansion_exactly() {
        let packed = random_packed(3, 5_000, 97);
        let interned = InternedConds::from_packed(&packed);
        for (event, cond) in interned.events().iter().zip(&packed) {
            assert_eq!(interned.record(*event), cond.to_record());
        }
    }

    #[test]
    fn from_trace_matches_from_packed() {
        let trace = BiasedCoins::uniform(24, 0.7, 400, 7).generate();
        assert_eq!(
            InternedConds::from_trace(&trace),
            InternedConds::from_packed(&trace.pack_conditionals())
        );
        let loops = LoopNest::new(&[12, 5]).generate();
        let interned = InternedConds::from_trace(&loops);
        assert_eq!(interned.len(), loops.conditional_branches().count());
    }

    #[test]
    fn empty_stream_interns_to_empty() {
        let interned = InternedConds::from_packed(&[]);
        assert!(interned.is_empty());
        assert_eq!(interned.distinct_pcs(), 0);
        assert_eq!(InternedConds::default(), interned);
    }
}
