//! Materialized first-level (pattern, outcome) streams.
//!
//! The two-level structure factorizes: the first level (history registers /
//! BHT) evolves from branch outcomes alone, independent of which automaton
//! sits in the pattern history table. A [`PatternStream`] captures the
//! first level's entire output for one trace — the PHT index and the
//! resolved direction of every conditional branch — so that second-level
//! variants (automaton ablations, preset tables) can be replayed without
//! re-walking the BHT or even decoding branch records.
//!
//! Each event packs into one `u32`: `pattern << 1 | taken`. Patterns are at
//! most 24 bits (the workspace-wide history ceiling), so the packing is
//! lossless. Schemes with per-address pattern tables (PAp) additionally
//! need to know *which* table each event resolved to; for those streams a
//! parallel `lanes` vector carries the per-event table selector (cache-BHT
//! slot or interned branch id).
//!
//! This crate only defines the container; the derivation walk lives in
//! `tlabp-sim::runner`, next to the fused simulation loop whose first-level
//! ordering it must reproduce bit-for-bit.

/// Maximum pattern width storable in a packed event.
pub const MAX_PATTERN_BITS: u32 = 24;

/// A materialized stream of first-level `(pattern, outcome)` events, with
/// an optional per-event lane selector for per-address second levels.
///
/// # Example
///
/// ```
/// use tlabp_trace::PatternStream;
///
/// let mut stream = PatternStream::new(4, false);
/// stream.push(0b1010, true);
/// stream.push(0b0101, false);
/// assert_eq!(stream.len(), 2);
/// assert_eq!(PatternStream::event_pattern(stream.events()[0]), 0b1010);
/// assert!(PatternStream::event_taken(stream.events()[0]));
/// assert!(!PatternStream::event_taken(stream.events()[1]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternStream {
    history_bits: u32,
    events: Vec<u32>,
    lanes: Vec<u32>,
    laned: bool,
}

impl PatternStream {
    /// Creates an empty stream for `history_bits`-bit patterns. When
    /// `laned` is set, every push must supply a lane selector.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or exceeds [`MAX_PATTERN_BITS`].
    #[must_use]
    pub fn new(history_bits: u32, laned: bool) -> Self {
        Self::with_capacity(history_bits, 0, laned)
    }

    /// Creates an empty stream with pre-allocated room for `capacity`
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or exceeds [`MAX_PATTERN_BITS`].
    #[must_use]
    pub fn with_capacity(history_bits: u32, capacity: usize, laned: bool) -> Self {
        assert!(
            (1..=MAX_PATTERN_BITS).contains(&history_bits),
            "history bits {history_bits} out of range"
        );
        PatternStream {
            history_bits,
            events: Vec::with_capacity(capacity),
            lanes: Vec::with_capacity(if laned { capacity } else { 0 }),
            laned,
        }
    }

    /// Appends one event to an unlaned stream.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if the stream is laned or `pattern` does
    /// not fit in `history_bits`.
    #[inline]
    pub fn push(&mut self, pattern: usize, taken: bool) {
        debug_assert!(!self.laned, "laned stream needs push_with_lane");
        debug_assert!(pattern < (1usize << self.history_bits), "pattern {pattern} out of range");
        self.events.push(((pattern as u32) << 1) | u32::from(taken));
    }

    /// Appends one event plus its second-level lane selector.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if the stream is unlaned or `pattern`
    /// does not fit in `history_bits`.
    #[inline]
    pub fn push_with_lane(&mut self, pattern: usize, taken: bool, lane: u32) {
        debug_assert!(self.laned, "unlaned stream: use push");
        debug_assert!(pattern < (1usize << self.history_bits), "pattern {pattern} out of range");
        self.events.push(((pattern as u32) << 1) | u32::from(taken));
        self.lanes.push(lane);
    }

    /// Reassembles a stream from its parts (the inverse of
    /// [`PatternStream::events`] + [`PatternStream::lanes`]), or `None`
    /// when the parts are inconsistent: `history_bits` out of range, a
    /// lane vector whose length does not match its lanedness, or an event
    /// whose pattern does not fit in `history_bits`. Deserialization uses
    /// this so a corrupted artifact can never yield a stream that indexes
    /// past the end of a replayed pattern history table.
    #[must_use]
    pub fn from_raw_parts(
        history_bits: u32,
        events: Vec<u32>,
        lanes: Vec<u32>,
        laned: bool,
    ) -> Option<Self> {
        if !(1..=MAX_PATTERN_BITS).contains(&history_bits) {
            return None;
        }
        let expected_lanes = if laned { events.len() } else { 0 };
        if lanes.len() != expected_lanes {
            return None;
        }
        if events.iter().any(|&event| event >> 1 >= 1 << history_bits) {
            return None;
        }
        Some(PatternStream { history_bits, events, lanes, laned })
    }

    /// The packed events, in trace order.
    #[must_use]
    pub fn events(&self) -> &[u32] {
        &self.events
    }

    /// Per-event lane selectors; empty for unlaned streams.
    #[must_use]
    pub fn lanes(&self) -> &[u32] {
        &self.lanes
    }

    /// Whether every event carries a lane selector.
    #[must_use]
    pub fn is_laned(&self) -> bool {
        self.laned
    }

    /// The pattern width the stream was derived at.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Heap bytes held by the stream's vectors.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.events.capacity() + self.lanes.capacity()) * std::mem::size_of::<u32>()
    }

    /// Decodes the pattern of a packed event.
    #[inline]
    #[must_use]
    pub fn event_pattern(event: u32) -> usize {
        (event >> 1) as usize
    }

    /// Decodes the resolved direction of a packed event.
    #[inline]
    #[must_use]
    pub fn event_taken(event: u32) -> bool {
        event & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip() {
        let mut stream = PatternStream::new(MAX_PATTERN_BITS, false);
        let max = (1usize << MAX_PATTERN_BITS) - 1;
        for (pattern, taken) in [(0, false), (1, true), (max, true), (max, false), (12345, true)] {
            stream.push(pattern, taken);
        }
        let decoded: Vec<(usize, bool)> = stream
            .events()
            .iter()
            .map(|&e| (PatternStream::event_pattern(e), PatternStream::event_taken(e)))
            .collect();
        assert_eq!(decoded, vec![(0, false), (1, true), (max, true), (max, false), (12345, true)]);
        assert!(!stream.is_laned());
        assert!(stream.lanes().is_empty());
    }

    #[test]
    fn laned_streams_keep_vectors_parallel() {
        let mut stream = PatternStream::with_capacity(6, 3, true);
        stream.push_with_lane(5, true, 7);
        stream.push_with_lane(9, false, 0);
        assert_eq!(stream.len(), 2);
        assert_eq!(stream.lanes(), &[7, 0]);
        assert!(stream.is_laned());
        assert!(stream.bytes() >= 2 * 2 * std::mem::size_of::<u32>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_history_bits() {
        let _ = PatternStream::new(0, false);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oversized_history_bits() {
        let _ = PatternStream::new(MAX_PATTERN_BITS + 1, false);
    }
}
