//! Individual trace events: branch records and trap records.

use std::fmt;

/// The class of a dynamic branch instruction.
///
/// The paper's Figure 4 breaks dynamic branches down into these four
/// classes and observes that about 80 percent of them are conditional,
/// motivating its focus on conditional-branch prediction. Only
/// [`BranchClass::Conditional`] records are predicted; the other classes
/// participate in the branch-mix statistics and in target-cache modelling.
///
/// # Example
///
/// ```
/// use tlabp_trace::BranchClass;
///
/// assert!(BranchClass::Conditional.is_conditional());
/// assert!(!BranchClass::Call.is_conditional());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchClass {
    /// A conditional branch; may be taken or not taken.
    Conditional,
    /// An unconditional jump; always taken.
    Unconditional,
    /// A subroutine call; always taken.
    Call,
    /// A subroutine return; always taken, target depends on call site.
    Return,
}

impl BranchClass {
    /// All branch classes, in the order used by reports.
    pub const ALL: [BranchClass; 4] = [
        BranchClass::Conditional,
        BranchClass::Unconditional,
        BranchClass::Call,
        BranchClass::Return,
    ];

    /// Returns `true` for [`BranchClass::Conditional`].
    #[must_use]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchClass::Conditional)
    }

    /// A compact single-byte encoding used by the binary trace format.
    #[must_use]
    pub(crate) fn to_tag(self) -> u8 {
        match self {
            BranchClass::Conditional => 0,
            BranchClass::Unconditional => 1,
            BranchClass::Call => 2,
            BranchClass::Return => 3,
        }
    }

    /// Inverse of [`BranchClass::to_tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(BranchClass::Conditional),
            1 => Some(BranchClass::Unconditional),
            2 => Some(BranchClass::Call),
            3 => Some(BranchClass::Return),
            _ => None,
        }
    }
}

impl fmt::Display for BranchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BranchClass::Conditional => "conditional",
            BranchClass::Unconditional => "unconditional",
            BranchClass::Call => "call",
            BranchClass::Return => "return",
        };
        f.write_str(name)
    }
}

/// One dynamic branch instance observed by the trace generator.
///
/// This is the unit of information the branch-prediction simulator consumes:
/// the branch instruction's address (used to index per-address structures and
/// as the profiling key), its class, the resolved direction, the resolved
/// target address (used by the backward-taken/forward-not-taken static
/// scheme and the target cache), and the cumulative dynamic instruction
/// count `instret` at which the branch executed (used to schedule the
/// 500 000-instruction context-switch interval of the paper's Section 5.1.4).
///
/// # Example
///
/// ```
/// use tlabp_trace::{BranchClass, BranchRecord};
///
/// let backward = BranchRecord::conditional(0x100, true, 0x0c0, 17);
/// assert!(backward.is_backward());
/// assert_eq!(backward.class, BranchClass::Conditional);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: u64,
    /// Which class of branch this is.
    pub class: BranchClass,
    /// Resolved direction. Always `true` for non-conditional classes.
    pub taken: bool,
    /// Resolved target address (the address control transfers to if taken).
    pub target: u64,
    /// Cumulative dynamic instruction count at this branch (1-based: the
    /// branch itself is the `instret`-th instruction executed).
    pub instret: u64,
}

impl BranchRecord {
    /// Creates a conditional-branch record.
    #[must_use]
    pub fn conditional(pc: u64, taken: bool, target: u64, instret: u64) -> Self {
        BranchRecord { pc, class: BranchClass::Conditional, taken, target, instret }
    }

    /// Creates an always-taken record of the given non-conditional class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is [`BranchClass::Conditional`]; use
    /// [`BranchRecord::conditional`] for those.
    #[must_use]
    pub fn unconditional(pc: u64, class: BranchClass, target: u64, instret: u64) -> Self {
        assert!(!class.is_conditional(), "use BranchRecord::conditional for conditional branches");
        BranchRecord { pc, class, taken: true, target, instret }
    }

    /// Whether the branch's target precedes the branch itself in the address
    /// space — the discriminator used by the BTFN static scheme ("if the
    /// branch is backward, predict taken; if forward, predict not taken").
    #[must_use]
    pub fn is_backward(&self) -> bool {
        self.target <= self.pc
    }
}

/// A trap (system-call or exception) event in the trace.
///
/// The paper simulates a context switch "whenever a trap occurs in the
/// instruction trace or every 500,000 instructions if no trap occurs"
/// (Section 5.1.4). Trap records carry the trapping instruction's address
/// and the cumulative instruction count so the simulator can honor both
/// triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrapRecord {
    /// Address of the trapping instruction.
    pub pc: u64,
    /// Cumulative dynamic instruction count at the trap.
    pub instret: u64,
}

impl TrapRecord {
    /// Creates a trap record.
    #[must_use]
    pub fn new(pc: u64, instret: u64) -> Self {
        TrapRecord { pc, instret }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_class_tag_round_trip() {
        for class in BranchClass::ALL {
            assert_eq!(BranchClass::from_tag(class.to_tag()), Some(class));
        }
        assert_eq!(BranchClass::from_tag(200), None);
    }

    #[test]
    fn branch_class_display_names() {
        assert_eq!(BranchClass::Conditional.to_string(), "conditional");
        assert_eq!(BranchClass::Return.to_string(), "return");
    }

    #[test]
    fn conditional_constructor_sets_class() {
        let r = BranchRecord::conditional(0x40, false, 0x80, 3);
        assert_eq!(r.class, BranchClass::Conditional);
        assert!(!r.taken);
        assert_eq!(r.instret, 3);
    }

    #[test]
    fn unconditional_constructor_is_taken() {
        let r = BranchRecord::unconditional(0x40, BranchClass::Call, 0x2000, 9);
        assert!(r.taken);
        assert_eq!(r.class, BranchClass::Call);
    }

    #[test]
    #[should_panic(expected = "conditional")]
    fn unconditional_constructor_rejects_conditional_class() {
        let _ = BranchRecord::unconditional(0, BranchClass::Conditional, 0, 0);
    }

    #[test]
    fn backward_detection() {
        assert!(BranchRecord::conditional(0x100, true, 0x100, 0).is_backward());
        assert!(BranchRecord::conditional(0x100, true, 0xff, 0).is_backward());
        assert!(!BranchRecord::conditional(0x100, true, 0x104, 0).is_backward());
    }
}
