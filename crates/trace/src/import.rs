//! Importer for an etrace-style compressed branch-trace format.
//!
//! Hardware trace encoders (the RISC-V E-Trace family being the modern
//! reference) do not emit one record per branch: they batch conditional
//! branch *outcomes* into a small bitmap (`branch_map`) and emit full
//! addresses only at synchronization points, with everything in between
//! delta-compressed against the previous packet. This module implements
//! a self-contained format in that mold — `TLBE` — so externally
//! captured traces can enter the pipeline as first-class workloads:
//!
//! * `TLBE` magic + `u16` version header, then a packet stream.
//! * `SYNC` packets carry an absolute pc and instruction count and reset
//!   the delta state (the encoder's `start_of_trace` idiom). A trace
//!   must begin with one, and every trap forces one before further
//!   branch packets — exactly the resynchronization points a hardware
//!   encoder emits after exceptions.
//! * `BMAP` packets batch up to 31 conditional branches: a count byte,
//!   the outcome bitmap (bit *i* = branch *i* taken), then per-branch
//!   varint deltas (pc from previous pc, target from pc, instret from
//!   previous instret).
//! * `JUMP` packets carry one unconditional transfer (jump/call/return)
//!   with the same delta payload.
//! * `TRAP` packets mark context-switch points; the `END` packet closes
//!   the stream with declared event and instruction totals the decoder
//!   verifies.
//!
//! [`read_etrace`] rejects malformed input precisely (bad magic/version,
//! unknown packets, oversized or overfull branch maps, missing
//! synchronization, non-monotonic instruction counts, truncation,
//! declared-count mismatches, trailing bytes). [`write_etrace`] is the
//! exact inverse, so any [`Trace`] round-trips; [`import_artifacts`]
//! decodes a `TLBE` buffer and re-encodes it (plus its derived packed
//! and interned forms) as a v3 chunked artifact keyed by the content
//! fingerprint, ready for the on-disk cache tier.

use std::error::Error;
use std::fmt;

use crate::intern::InternedConds;
use crate::io::{
    checksum, get_varint, put_varint, unzigzag, write_artifacts_chunked, zigzag, Cursor,
};
use crate::record::{BranchClass, BranchRecord, TrapRecord};
use crate::trace::{Trace, TraceEvent};

/// File magic identifying the etrace-style import format.
pub const ETRACE_MAGIC: &[u8; 4] = b"TLBE";
/// Version of the import format.
pub const ETRACE_VERSION: u16 = 1;
/// Largest number of conditional branches one `BMAP` packet may carry
/// (the bitmap is a `u32` with one bit reserved, as in the RISC-V
/// encoder's 31-entry branch map).
pub const MAX_BRANCH_MAP: usize = 31;

mod packet {
    pub const END: u8 = 0;
    pub const SYNC: u8 = 1;
    pub const BMAP: u8 = 2;
    pub const JUMP: u8 = 3;
    pub const TRAP: u8 = 4;
}

/// Error produced when decoding a `TLBE` buffer fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImportError {
    /// The buffer did not start with [`ETRACE_MAGIC`].
    BadMagic {
        /// The four bytes actually found (zero-padded if short).
        found: [u8; 4],
    },
    /// The header declared an unsupported version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer ended inside a packet.
    Truncated {
        /// Index of the packet being decoded when input ran out.
        at_packet: u64,
    },
    /// A packet carried an unknown tag byte.
    UnknownPacket {
        /// The offending tag.
        tag: u8,
        /// Index of the packet with the bad tag.
        at_packet: u64,
    },
    /// The stream did not synchronize where the format requires it: at
    /// the very start, and immediately after every trap.
    MissingSync {
        /// Index of the packet that appeared instead of a `SYNC`.
        at_packet: u64,
    },
    /// A `BMAP` packet declared zero or more than [`MAX_BRANCH_MAP`]
    /// branches, or set outcome bits beyond its declared count.
    BadBranchMap {
        /// Index of the offending packet.
        at_packet: u64,
    },
    /// Decoded events were not monotonically ordered by `instret`.
    NonMonotonic {
        /// Index of the offending packet.
        at_packet: u64,
    },
    /// The `END` packet's declared event count did not match the stream.
    CountMismatch {
        /// Events the `END` packet declared.
        declared: u64,
        /// Events actually decoded.
        actual: u64,
    },
    /// The stream ended without an `END` packet.
    MissingEnd,
    /// Bytes remained after the `END` packet.
    TrailingBytes {
        /// Number of unexpected trailing bytes.
        count: usize,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::BadMagic { found } => {
                write!(f, "bad etrace magic {found:?}, expected {ETRACE_MAGIC:?}")
            }
            ImportError::UnsupportedVersion { found } => {
                write!(f, "unsupported etrace version {found} (expected {ETRACE_VERSION})")
            }
            ImportError::Truncated { at_packet } => {
                write!(f, "etrace truncated while decoding packet {at_packet}")
            }
            ImportError::UnknownPacket { tag, at_packet } => {
                write!(f, "unknown etrace packet tag {tag} at packet {at_packet}")
            }
            ImportError::MissingSync { at_packet } => {
                write!(f, "etrace packet {at_packet} arrived where a sync packet is required")
            }
            ImportError::BadBranchMap { at_packet } => {
                write!(f, "etrace packet {at_packet} carries a malformed branch map")
            }
            ImportError::NonMonotonic { at_packet } => {
                write!(f, "etrace packet {at_packet} regressed the instruction count")
            }
            ImportError::CountMismatch { declared, actual } => {
                write!(f, "etrace declared {declared} events but decoded {actual}")
            }
            ImportError::MissingEnd => f.write_str("etrace ended without an end packet"),
            ImportError::TrailingBytes { count } => {
                write!(f, "{count} unexpected byte(s) after the etrace end packet")
            }
        }
    }
}

impl Error for ImportError {}

/// The content fingerprint a `TLBE` buffer is keyed by: the checksum of
/// its raw bytes. Deterministic, so re-importing the same capture maps
/// to the same artifact, cache slot and service memo entries.
#[must_use]
pub fn etrace_fingerprint(bytes: &[u8]) -> u64 {
    checksum(bytes)
}

/// Encoder state shared with the decoder: the previous pc / instret the
/// next packet's deltas are taken against.
#[derive(Clone, Copy)]
struct DeltaState {
    pc: u64,
    instret: u64,
}

fn push_branch_payload(buf: &mut Vec<u8>, state: &mut DeltaState, b: &BranchRecord) {
    put_varint(buf, zigzag(b.pc.wrapping_sub(state.pc) as i64));
    put_varint(buf, zigzag(b.target.wrapping_sub(b.pc) as i64));
    put_varint(buf, b.instret.wrapping_sub(state.instret));
    *state = DeltaState { pc: b.pc, instret: b.instret };
}

/// Serializes a trace into the `TLBE` import format.
///
/// The exact inverse of [`read_etrace`]; used by tests and by the
/// `import --demo` path to manufacture external-capture fixtures.
#[must_use]
pub fn write_etrace(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.len() * 4);
    buf.extend_from_slice(ETRACE_MAGIC);
    buf.extend_from_slice(&ETRACE_VERSION.to_le_bytes());

    let mut state = DeltaState { pc: 0, instret: 0 };
    let mut pending: Vec<&BranchRecord> = Vec::with_capacity(MAX_BRANCH_MAP);
    let mut synced = false;

    fn flush(buf: &mut Vec<u8>, state: &mut DeltaState, pending: &mut Vec<&BranchRecord>) {
        if pending.is_empty() {
            return;
        }
        buf.push(packet::BMAP);
        buf.push(pending.len() as u8);
        let mut map = 0u64;
        for (i, b) in pending.iter().enumerate() {
            map |= u64::from(b.taken) << i;
        }
        put_varint(buf, map);
        for b in pending.drain(..) {
            push_branch_payload(buf, state, b);
        }
    }

    for event in trace.events() {
        if !synced {
            buf.push(packet::SYNC);
            put_varint(&mut buf, event.pc());
            put_varint(&mut buf, event.instret());
            state = DeltaState { pc: event.pc(), instret: event.instret() };
            synced = true;
        }
        match event {
            TraceEvent::Branch(b) if b.class.is_conditional() => {
                pending.push(b);
                if pending.len() == MAX_BRANCH_MAP {
                    flush(&mut buf, &mut state, &mut pending);
                }
            }
            TraceEvent::Branch(b) => {
                flush(&mut buf, &mut state, &mut pending);
                buf.push(packet::JUMP);
                buf.push(b.class.to_tag() | if b.taken { 0x10 } else { 0 });
                push_branch_payload(&mut buf, &mut state, b);
            }
            TraceEvent::Trap(t) => {
                flush(&mut buf, &mut state, &mut pending);
                buf.push(packet::TRAP);
                put_varint(&mut buf, zigzag(t.pc.wrapping_sub(state.pc) as i64));
                put_varint(&mut buf, t.instret.wrapping_sub(state.instret));
                state = DeltaState { pc: t.pc, instret: t.instret };
                // A trap desynchronizes the encoder: the next packet
                // must re-sync, as after a hardware exception.
                synced = false;
            }
        }
    }
    flush(&mut buf, &mut state, &mut pending);
    buf.push(packet::END);
    put_varint(&mut buf, trace.len() as u64);
    put_varint(&mut buf, trace.total_instructions());
    buf
}

/// Decodes a `TLBE` buffer into a [`Trace`], validating every packet.
pub fn read_etrace(bytes: &[u8]) -> Result<Trace, ImportError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.remaining() < 4 {
        let mut found = [0u8; 4];
        found[..bytes.len()].copy_from_slice(bytes);
        return Err(ImportError::BadMagic { found });
    }
    let found: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
    cur.pos = 4;
    if &found != ETRACE_MAGIC {
        return Err(ImportError::BadMagic { found });
    }
    if cur.remaining() < 2 {
        return Err(ImportError::Truncated { at_packet: 0 });
    }
    let version = cur.get_u16_le();
    if version != ETRACE_VERSION {
        return Err(ImportError::UnsupportedVersion { found: version });
    }

    let mut trace = Trace::new();
    let mut state = DeltaState { pc: 0, instret: 0 };
    let mut last_instret = 0u64;
    let mut synced = false;
    let mut packet_index = 0u64;
    loop {
        let at_packet = packet_index;
        let truncated = ImportError::Truncated { at_packet };
        if cur.remaining() == 0 {
            return Err(ImportError::MissingEnd);
        }
        let tag = cur.get_u8();
        packet_index += 1;
        if !synced && !matches!(tag, packet::SYNC | packet::END) {
            return Err(ImportError::MissingSync { at_packet });
        }
        match tag {
            packet::END => {
                let declared = get_varint(&mut cur).ok_or(truncated.clone())?;
                let total = get_varint(&mut cur).ok_or(truncated)?;
                if declared != trace.len() as u64 {
                    return Err(ImportError::CountMismatch {
                        declared,
                        actual: trace.len() as u64,
                    });
                }
                if total < last_instret {
                    return Err(ImportError::NonMonotonic { at_packet });
                }
                if cur.remaining() > 0 {
                    return Err(ImportError::TrailingBytes { count: cur.remaining() });
                }
                trace.set_total_instructions(total);
                return Ok(trace);
            }
            packet::SYNC => {
                let pc = get_varint(&mut cur).ok_or(truncated.clone())?;
                let instret = get_varint(&mut cur).ok_or(truncated)?;
                if instret < last_instret {
                    return Err(ImportError::NonMonotonic { at_packet });
                }
                state = DeltaState { pc, instret };
                synced = true;
            }
            packet::BMAP => {
                if cur.remaining() == 0 {
                    return Err(truncated);
                }
                let count = usize::from(cur.get_u8());
                let map = get_varint(&mut cur).ok_or(truncated.clone())?;
                if count == 0 || count > MAX_BRANCH_MAP || map >> count != 0 {
                    return Err(ImportError::BadBranchMap { at_packet });
                }
                // The sync packet carries the *first* event's own pc and
                // instret, so the first decoded delta is zero-based at
                // that event, mirroring the encoder.
                for i in 0..count {
                    let (pc, target, instret) =
                        decode_branch_payload(&mut cur, &mut state).ok_or(truncated.clone())?;
                    if instret < last_instret {
                        return Err(ImportError::NonMonotonic { at_packet });
                    }
                    last_instret = instret;
                    trace.push(BranchRecord::conditional(pc, map >> i & 1 == 1, target, instret));
                }
            }
            packet::JUMP => {
                if cur.remaining() == 0 {
                    return Err(truncated);
                }
                let class_byte = cur.get_u8();
                let class = BranchClass::from_tag(class_byte & 0x0f)
                    .filter(|c| !c.is_conditional() && class_byte & !0x1f == 0)
                    .ok_or(ImportError::UnknownPacket { tag: class_byte, at_packet })?;
                let taken = class_byte & 0x10 != 0;
                let (pc, target, instret) =
                    decode_branch_payload(&mut cur, &mut state).ok_or(truncated)?;
                if instret < last_instret {
                    return Err(ImportError::NonMonotonic { at_packet });
                }
                last_instret = instret;
                trace.push(BranchRecord { pc, class, taken, target, instret });
            }
            packet::TRAP => {
                let pc = state
                    .pc
                    .wrapping_add(unzigzag(get_varint(&mut cur).ok_or(truncated.clone())?) as u64);
                let instret = state
                    .instret
                    .checked_add(get_varint(&mut cur).ok_or(truncated)?)
                    .ok_or(ImportError::NonMonotonic { at_packet })?;
                if instret < last_instret {
                    return Err(ImportError::NonMonotonic { at_packet });
                }
                last_instret = instret;
                state = DeltaState { pc, instret };
                trace.push(TrapRecord::new(pc, instret));
                synced = false;
            }
            tag => return Err(ImportError::UnknownPacket { tag, at_packet }),
        }
    }
}

fn decode_branch_payload(cur: &mut Cursor<'_>, state: &mut DeltaState) -> Option<(u64, u64, u64)> {
    let pc = state.pc.wrapping_add(unzigzag(get_varint(cur)?) as u64);
    let target = pc.wrapping_add(unzigzag(get_varint(cur)?) as u64);
    let instret = state.instret.checked_add(get_varint(cur)?)?;
    *state = DeltaState { pc, instret };
    Some((pc, target, instret))
}

/// Decodes a `TLBE` buffer and re-encodes it as a v3 chunked artifact
/// containing the trace plus its derived packed and interned forms,
/// keyed by [`etrace_fingerprint`].
///
/// Returns `(fingerprint, artifact_bytes)`. Both are pure functions of
/// the input, so repeated imports of the same capture are byte-for-byte
/// identical — which is what makes imported workloads cacheable in the
/// disk tier and memoizable through the sweep service.
pub fn import_artifacts(bytes: &[u8], chunk_bytes: usize) -> Result<(u64, Vec<u8>), ImportError> {
    let trace = read_etrace(bytes)?;
    let fingerprint = etrace_fingerprint(bytes);
    let packed = trace.pack_conditionals();
    let interned = InternedConds::from_packed(&packed);
    let artifact = write_artifacts_chunked(
        fingerprint,
        Some(&trace),
        Some(&packed),
        Some(&interned),
        &[],
        chunk_bytes,
    );
    Ok((fingerprint, artifact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_artifacts;
    use crate::synth::LoopNest;

    fn sample_trace() -> Trace {
        // A mixed trace: nested-loop conditionals, unconditional
        // transfers and a trap (which forces a mid-stream resync).
        let mut t = Trace::new();
        for event in LoopNest::new(&[5, 7]).generate().events() {
            t.push(*event);
        }
        let base = t.events().last().map_or(0, TraceEvent::instret);
        t.push(BranchRecord::unconditional(0x9000, BranchClass::Call, 0x400, base + 3));
        t.push(TrapRecord::new(0x404, base + 9));
        t.push(BranchRecord::conditional(0x410, true, 0x300, base + 12));
        t.push(BranchRecord::unconditional(0x308, BranchClass::Return, 0x9004, base + 14));
        t.set_total_instructions(base + 20);
        t
    }

    #[test]
    fn etrace_round_trips() {
        let t = sample_trace();
        let bytes = write_etrace(&t);
        assert_eq!(read_etrace(&bytes).unwrap(), t);
        // More conditionals than one branch map can hold → several BMAPs.
        let big = LoopNest::new(&[9, 11, 4]).generate();
        assert_eq!(read_etrace(&write_etrace(&big)).unwrap(), big);
        let empty = Trace::new();
        assert_eq!(read_etrace(&write_etrace(&empty)).unwrap(), empty);
    }

    #[test]
    fn etrace_rejects_truncation_at_every_byte_boundary() {
        let bytes = write_etrace(&sample_trace());
        for cut in 0..bytes.len() {
            assert!(
                read_etrace(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn etrace_rejects_bad_magic_and_version() {
        assert!(matches!(read_etrace(b"NOPE..").unwrap_err(), ImportError::BadMagic { .. }));
        assert!(matches!(read_etrace(b"TL").unwrap_err(), ImportError::BadMagic { .. }));
        let mut bytes = write_etrace(&sample_trace());
        bytes[4] = 9;
        assert_eq!(read_etrace(&bytes).unwrap_err(), ImportError::UnsupportedVersion { found: 9 });
    }

    #[test]
    fn etrace_rejects_malformed_packets() {
        // Stream must open with a SYNC.
        let mut bytes = vec![];
        bytes.extend_from_slice(ETRACE_MAGIC);
        bytes.extend_from_slice(&ETRACE_VERSION.to_le_bytes());
        bytes.push(packet::BMAP);
        assert_eq!(read_etrace(&bytes).unwrap_err(), ImportError::MissingSync { at_packet: 0 });

        // Rewrite the END tag to an unknown tag. No byte after the END
        // tag can be zero (both trailing varints are nonzero), so a
        // reverse scan lands on the tag itself.
        let good = write_etrace(&sample_trace());
        let mut bad = good.clone();
        let end_tag_at = (0..good.len()).rev().find(|&i| bad[i] == packet::END).unwrap();
        bad[end_tag_at] = 0x7f;
        assert!(matches!(
            read_etrace(&bad).unwrap_err(),
            ImportError::UnknownPacket { tag: 0x7f, .. } | ImportError::Truncated { .. }
        ));

        // Branch map with an outcome bit beyond its declared count.
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x100, true, 0x80, 5));
        let bytes = write_etrace(&t);
        // Layout: magic(4) version(2) SYNC(tag + pc + instret varints),
        // then the BMAP packet; parse past the SYNC payload to find it.
        let sync_at = 6;
        assert_eq!(bytes[sync_at], packet::SYNC);
        let mut cur = Cursor { bytes: &bytes, pos: sync_at + 1 };
        let _ = get_varint(&mut cur);
        let _ = get_varint(&mut cur);
        let bmap_tag_at = cur.pos;
        assert_eq!(bytes[bmap_tag_at], packet::BMAP);
        // count = 1, one map byte follows; set bit 1 (beyond count).
        let mut overfull = bytes.clone();
        overfull[bmap_tag_at + 2] = 0b10;
        assert!(matches!(read_etrace(&overfull).unwrap_err(), ImportError::BadBranchMap { .. }));
        // Zero-count branch map.
        let mut zero = bytes.clone();
        zero[bmap_tag_at + 1] = 0;
        assert!(matches!(read_etrace(&zero).unwrap_err(), ImportError::BadBranchMap { .. }));

        // Declared-count mismatch: declare one extra event.
        let t = sample_trace();
        let mut bytes = write_etrace(&t);
        let end_tag_at = (0..bytes.len()).rev().find(|&i| bytes[i] == packet::END).unwrap();
        // Both END varints here are small; bump the declared count byte.
        bytes[end_tag_at + 1] = bytes[end_tag_at + 1].wrapping_add(1) & 0x7f;
        assert!(matches!(
            read_etrace(&bytes).unwrap_err(),
            ImportError::CountMismatch { .. } | ImportError::Truncated { .. }
        ));

        // Trailing bytes after END.
        let mut bytes = write_etrace(&t);
        bytes.push(0);
        assert_eq!(read_etrace(&bytes).unwrap_err(), ImportError::TrailingBytes { count: 1 });
    }

    #[test]
    fn etrace_requires_resync_after_traps() {
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x100, true, 0x80, 5));
        t.push(TrapRecord::new(0x84, 9));
        t.push(BranchRecord::conditional(0x100, false, 0x80, 14));
        let bytes = write_etrace(&t);
        assert_eq!(read_etrace(&bytes).unwrap(), t);
        // Excise the post-trap SYNC packet: decoding must now fail.
        let trap_at = bytes.iter().position(|&b| b == packet::TRAP).unwrap();
        let mut cur = Cursor { bytes: &bytes, pos: trap_at + 1 };
        let _ = get_varint(&mut cur);
        let _ = get_varint(&mut cur);
        let sync_at = cur.pos;
        assert_eq!(bytes[sync_at], packet::SYNC);
        let mut cut = bytes[..sync_at].to_vec();
        let mut rest = Cursor { bytes: &bytes, pos: sync_at + 1 };
        let _ = get_varint(&mut rest);
        let _ = get_varint(&mut rest);
        cut.extend_from_slice(&bytes[rest.pos..]);
        assert!(matches!(read_etrace(&cut).unwrap_err(), ImportError::MissingSync { .. }));
    }

    #[test]
    fn etrace_rejects_instret_regression() {
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x100, true, 0x80, 5));
        t.push(TrapRecord::new(0x84, 9));
        let mut bytes = write_etrace(&t);
        // Rewrite the END packet's total-instructions varint to a value
        // below the last event's instret.
        let end_tag_at = (0..bytes.len()).rev().find(|&i| bytes[i] == packet::END).unwrap();
        let mut cur = Cursor { bytes: &bytes, pos: end_tag_at + 1 };
        let _ = get_varint(&mut cur);
        let total_at = cur.pos;
        bytes[total_at] = 0; // total_instructions = 0 < last instret
        bytes.truncate(total_at + 1);
        assert!(matches!(read_etrace(&bytes).unwrap_err(), ImportError::NonMonotonic { .. }));
    }

    #[test]
    fn import_artifacts_is_deterministic_and_loadable() {
        let t = sample_trace();
        let bytes = write_etrace(&t);
        let (fp1, art1) = import_artifacts(&bytes, 64 << 10).unwrap();
        let (fp2, art2) = import_artifacts(&bytes, 64 << 10).unwrap();
        assert_eq!(fp1, fp2);
        assert_eq!(art1, art2, "same capture must produce identical artifacts");
        assert_eq!(fp1, etrace_fingerprint(&bytes));

        let bundle = read_artifacts(&art1).unwrap();
        assert_eq!(bundle.fingerprint, fp1);
        assert_eq!(bundle.trace.as_ref(), Some(&t));
        assert_eq!(bundle.packed.as_deref(), Some(t.pack_conditionals().as_slice()));
        assert!(bundle.interned.is_some());

        // A different capture gets a different fingerprint.
        let other = write_etrace(&LoopNest::new(&[3, 3]).generate());
        assert_ne!(etrace_fingerprint(&other), fp1);
    }
}
