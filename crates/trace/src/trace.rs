//! In-memory traces: ordered sequences of branch and trap events.

use crate::record::{BranchRecord, TrapRecord};

/// One event in an instruction trace.
///
/// A trace records only the events the branch-prediction study needs —
/// branches and traps — each stamped with the cumulative dynamic instruction
/// count, rather than every executed instruction. This matches the
/// information content the paper's simulator extracts from its full
/// Motorola 88100 instruction traces while staying compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A dynamic branch instance.
    Branch(BranchRecord),
    /// A trap (context-switch trigger).
    Trap(TrapRecord),
}

impl TraceEvent {
    /// The cumulative instruction count at this event.
    #[must_use]
    pub fn instret(&self) -> u64 {
        match self {
            TraceEvent::Branch(b) => b.instret,
            TraceEvent::Trap(t) => t.instret,
        }
    }

    /// The program counter of the instruction that produced this event.
    #[must_use]
    pub fn pc(&self) -> u64 {
        match self {
            TraceEvent::Branch(b) => b.pc,
            TraceEvent::Trap(t) => t.pc,
        }
    }

    /// Returns the contained branch record, if this is a branch event.
    #[must_use]
    pub fn as_branch(&self) -> Option<&BranchRecord> {
        match self {
            TraceEvent::Branch(b) => Some(b),
            TraceEvent::Trap(_) => None,
        }
    }
}

impl From<BranchRecord> for TraceEvent {
    fn from(record: BranchRecord) -> Self {
        TraceEvent::Branch(record)
    }
}

impl From<TrapRecord> for TraceEvent {
    fn from(record: TrapRecord) -> Self {
        TraceEvent::Trap(record)
    }
}

/// An ordered, in-memory instruction trace.
///
/// `Trace` wraps a vector of [`TraceEvent`]s in program order together with
/// the total number of instructions the generating run executed (which may
/// exceed the `instret` of the final event, since non-branch instructions
/// can follow the last branch).
///
/// # Example
///
/// ```
/// use tlabp_trace::{BranchRecord, Trace, TraceEvent};
///
/// let mut trace = Trace::new();
/// trace.push(BranchRecord::conditional(0x10, true, 0x4, 5));
/// trace.push(BranchRecord::conditional(0x10, false, 0x4, 9));
/// trace.set_total_instructions(12);
///
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.conditional_branches().count(), 2);
/// assert_eq!(trace.total_instructions(), 12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    total_instructions: u64,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with pre-allocated capacity for `n` events.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Trace { events: Vec::with_capacity(n), total_instructions: 0 }
    }

    /// Creates a trace from a vector of events.
    ///
    /// `total_instructions` is initialized to the last event's `instret`
    /// (0 if empty); adjust it with [`Trace::set_total_instructions`] if the
    /// run continued past the last event.
    #[must_use]
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        let total = events.last().map_or(0, TraceEvent::instret);
        Trace { events, total_instructions: total }
    }

    /// Appends an event (anything convertible into [`TraceEvent`]).
    ///
    /// The total instruction count is raised to the event's `instret` if it
    /// was lower.
    pub fn push(&mut self, event: impl Into<TraceEvent>) {
        let event = event.into();
        self.total_instructions = self.total_instructions.max(event.instret());
        self.events.push(event);
    }

    /// Number of events (branches + traps) in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total dynamic instructions executed by the generating run.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Overrides the total dynamic instruction count.
    ///
    /// # Panics
    ///
    /// Panics if `total` is less than the `instret` of the last event.
    pub fn set_total_instructions(&mut self, total: u64) {
        let min = self.events.last().map_or(0, TraceEvent::instret);
        assert!(total >= min, "total instructions {total} below final event instret {min}");
        self.total_instructions = total;
    }

    /// All events in program order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over all events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Iterates over all branch records (any class), in program order.
    pub fn branches(&self) -> impl Iterator<Item = &BranchRecord> {
        self.events.iter().filter_map(TraceEvent::as_branch)
    }

    /// Iterates over conditional-branch records only, in program order.
    pub fn conditional_branches(&self) -> impl Iterator<Item = &BranchRecord> {
        self.branches().filter(|b| b.class.is_conditional())
    }

    /// Packs every conditional branch into the compact [`PackedCond`]
    /// stream consumed by the simulator's no-context-switch fast path.
    #[must_use]
    pub fn pack_conditionals(&self) -> Vec<PackedCond> {
        self.conditional_branches().map(PackedCond::from_record).collect()
    }

    /// Appends every event of `other` after this trace's events.
    ///
    /// Events of `other` have their `instret` shifted by this trace's
    /// current total so the combined trace remains monotonic — useful for
    /// splicing per-phase traces together.
    pub fn append_shifted(&mut self, other: &Trace) {
        let base = self.total_instructions;
        for event in &other.events {
            let shifted = match *event {
                TraceEvent::Branch(mut b) => {
                    b.instret += base;
                    TraceEvent::Branch(b)
                }
                TraceEvent::Trap(mut t) => {
                    t.instret += base;
                    TraceEvent::Trap(t)
                }
            };
            self.events.push(shifted);
        }
        self.total_instructions = base + other.total_instructions;
    }
}

/// A conditional branch compressed into one 64-bit word:
/// `pc << 2 | backward << 1 | taken`.
///
/// The simulation hot loop only ever reads three things from a
/// conditional branch: its address (indexes every per-address structure),
/// its resolved direction, and whether it jumps backward (the BTFN
/// discriminator). Packing those into 8 bytes — versus the 40-byte
/// [`TraceEvent`] — lets the no-context-switch fast path stream 5× fewer
/// bytes per event through the cache.
///
/// # Example
///
/// ```
/// use tlabp_trace::{BranchRecord, PackedCond};
///
/// let record = BranchRecord::conditional(0x1000, true, 0x0f00, 7);
/// let packed = PackedCond::from_record(&record);
/// assert_eq!(packed.pc(), 0x1000);
/// assert!(packed.taken());
/// assert!(packed.is_backward());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct PackedCond(u64);

impl PackedCond {
    /// How many program-counter bits the packing preserves: the two flag
    /// bits leave 62 of the 64 for the address.
    pub const PC_BITS: u32 = 62;

    /// Mask selecting the packable low [`PackedCond::PC_BITS`] of a pc.
    pub const PC_MASK: u64 = (1 << Self::PC_BITS) - 1;

    /// Packs the three prediction-relevant fields into one word.
    ///
    /// Addresses wider than [`PackedCond::PC_BITS`] are masked to their
    /// low 62 bits — deterministically, in every build profile. (Every
    /// trace generator in this repository stays far below that bound;
    /// the mask pins the behavior for arbitrary external traces instead
    /// of letting the shift silently drop bits in release and trap in
    /// debug.)
    #[must_use]
    pub fn new(pc: u64, taken: bool, backward: bool) -> Self {
        PackedCond((pc & Self::PC_MASK) << 2 | u64::from(backward) << 1 | u64::from(taken))
    }

    /// Packs a conditional branch record.
    #[must_use]
    pub fn from_record(record: &BranchRecord) -> Self {
        PackedCond::new(record.pc, record.taken, record.is_backward())
    }

    /// The branch instruction's address.
    #[must_use]
    pub fn pc(self) -> u64 {
        self.0 >> 2
    }

    /// The resolved direction.
    #[must_use]
    pub fn taken(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether the branch jumps backward (target ≤ pc).
    #[must_use]
    pub fn is_backward(self) -> bool {
        self.0 & 2 != 0
    }

    /// The raw 64-bit encoding (`pc << 2 | backward << 1 | taken`) — the
    /// on-disk representation of the v2 artifact container's packed
    /// section ([`crate::io`]).
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a packed conditional from its raw encoding.
    ///
    /// Every 64-bit value is a valid encoding (the pc field spans the
    /// full remaining width), so this is total — the inverse of
    /// [`PackedCond::bits`].
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        PackedCond(bits)
    }

    /// Expands back into a [`BranchRecord`] carrying exactly the
    /// information predictors observe.
    ///
    /// The target is synthesized to preserve [`BranchRecord::is_backward`]
    /// and `instret` is zeroed — neither is read by any predictor, so a
    /// simulation over expanded records is bit-identical to one over the
    /// original conditional branches (see the differential tests).
    #[must_use]
    pub fn to_record(self) -> BranchRecord {
        let pc = self.pc();
        let target = if self.is_backward() { pc } else { pc + 4 };
        BranchRecord::conditional(pc, self.taken(), target, 0)
    }
}

impl From<&BranchRecord> for PackedCond {
    fn from(record: &BranchRecord) -> Self {
        PackedCond::from_record(record)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace::from_events(iter.into_iter().collect())
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        for event in iter {
            self.push(event);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchClass;

    fn cond(pc: u64, taken: bool, instret: u64) -> BranchRecord {
        BranchRecord::conditional(pc, taken, pc + 8, instret)
    }

    #[test]
    fn push_tracks_total_instructions() {
        let mut t = Trace::new();
        t.push(cond(0x10, true, 4));
        t.push(TrapRecord::new(0x20, 9));
        assert_eq!(t.total_instructions(), 9);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_events_uses_last_instret() {
        let t = Trace::from_events(vec![cond(0, true, 3).into(), cond(0, false, 7).into()]);
        assert_eq!(t.total_instructions(), 7);
    }

    #[test]
    fn conditional_filter_skips_other_classes() {
        let mut t = Trace::new();
        t.push(cond(0x10, true, 1));
        t.push(BranchRecord::unconditional(0x18, BranchClass::Call, 0x100, 2));
        t.push(cond(0x110, false, 3));
        assert_eq!(t.conditional_branches().count(), 2);
        assert_eq!(t.branches().count(), 3);
    }

    #[test]
    #[should_panic(expected = "below final event")]
    fn set_total_rejects_regression() {
        let mut t = Trace::new();
        t.push(cond(0, true, 10));
        t.set_total_instructions(5);
    }

    #[test]
    fn append_shifted_keeps_monotonic_instret() {
        let mut a = Trace::new();
        a.push(cond(0x10, true, 5));
        a.set_total_instructions(8);
        let mut b = Trace::new();
        b.push(cond(0x20, false, 3));
        b.set_total_instructions(4);

        a.append_shifted(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[1].instret(), 11);
        assert_eq!(a.total_instructions(), 12);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = vec![TraceEvent::from(cond(0, true, 1))].into_iter().collect();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iteration_both_ways() {
        let mut t = Trace::new();
        t.push(cond(0, true, 1));
        assert_eq!((&t).into_iter().count(), 1);
        assert_eq!(t.clone().into_iter().count(), 1);
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn packed_cond_round_trips_any_packable_pc() {
        use crate::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(0x9A11);
        for i in 0..10_000u64 {
            // Cover the full packable width, including the top bits: draw
            // a random bit width in [1, 62] and a random pc below it.
            let bits = rng.next_range(1, u64::from(PackedCond::PC_BITS) + 1) as u32;
            let pc = rng.next_u64() >> (64 - bits);
            let taken = rng.random_bool(0.5);
            let backward = rng.random_bool(0.5);
            let packed = PackedCond::new(pc, taken, backward);
            assert_eq!(packed.pc(), pc, "iteration {i}: pc {pc:#x} ({bits} bits)");
            assert_eq!(packed.taken(), taken, "iteration {i}");
            assert_eq!(packed.is_backward(), backward, "iteration {i}");
            let record = packed.to_record();
            assert_eq!(record.pc, pc);
            assert_eq!(record.taken, taken);
            assert_eq!(record.is_backward(), backward);
        }
    }

    #[test]
    fn packed_cond_masks_out_of_range_pcs_deterministically() {
        use crate::rng::SmallRng;
        assert_eq!(PackedCond::PC_BITS, 62, "pc << 2 leaves 62 bits");
        let mut rng = SmallRng::seed_from_u64(0x9A12);
        for _ in 0..10_000u64 {
            // Force at least one of the two unpackable top bits on.
            let pc = rng.next_u64() | 1 << 63;
            let taken = rng.random_bool(0.5);
            let backward = rng.random_bool(0.5);
            let wide = PackedCond::new(pc, taken, backward);
            let masked = PackedCond::new(pc & PackedCond::PC_MASK, taken, backward);
            assert_eq!(wide, masked, "out-of-range pc {pc:#x} must mask, not scramble");
            assert_eq!(wide.pc(), pc & PackedCond::PC_MASK);
            assert_eq!(wide.taken(), taken);
            assert_eq!(wide.is_backward(), backward);
        }
    }

    #[test]
    fn packed_cond_round_trips_structured_records() {
        use crate::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(0x9A13);
        for i in 0..2_000u64 {
            let pc = rng.next_below(PackedCond::PC_MASK + 1);
            let taken = rng.random_bool(0.7);
            // Exercise both forward and backward targets around pc.
            let target = if rng.random_bool(0.5) { pc.saturating_sub(16) } else { pc + 16 };
            let record = BranchRecord::conditional(pc, taken, target, i);
            let packed = PackedCond::from_record(&record);
            let rebuilt = packed.to_record();
            assert_eq!(rebuilt.pc, record.pc);
            assert_eq!(rebuilt.taken, record.taken);
            assert_eq!(rebuilt.is_backward(), record.is_backward());
        }
    }
}
