//! A small, fast, seedable pseudo-random number generator.
//!
//! The build must succeed without registry access, so the crates that
//! previously pulled in `rand` use this in-tree generator instead. It is
//! the SplitMix64 mixer (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014) — a 64-bit state, two
//! xor-shift-multiply rounds per draw, passes BigCrush when used as a
//! stream, and is trivially reproducible from a `u64` seed.
//!
//! Everything randomized in this repository (synthetic traces, the
//! randomized test suites) is seeded explicitly, so simulation results
//! stay bit-for-bit deterministic across runs and thread counts.
//!
//! # Example
//!
//! ```
//! use tlabp_trace::rng::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// A uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses the widening-multiply rejection-free mapping (Lemire); the
    /// modulo bias is below 2^-32 for every bound used in this repository.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0, 1)");
        }
    }

    #[test]
    fn bool_bias_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((0.27..=0.33).contains(&rate), "rate {rate} far from 0.3");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
            let x = rng.next_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
