//! The trace-emitting interpreter.

use std::fmt;

use tlabp_trace::{BranchClass, BranchRecord, Trace, TrapRecord};

use crate::inst::{AluOp, Inst, Reg};
use crate::program::Program;

/// Default data-memory size in words.
pub const DEFAULT_MEMORY_WORDS: usize = 1 << 20;

/// Default dynamic-instruction budget.
pub const DEFAULT_MAX_INSTRUCTIONS: u64 = 200_000_000;

/// A run-time error raised by the VM.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// Execution fell off the end of the program text.
    PcOutOfRange {
        /// The offending instruction index.
        pc: usize,
    },
    /// A load or store touched an address outside data memory.
    MemoryOutOfRange {
        /// The offending word address.
        address: i64,
        /// Index of the faulting instruction.
        pc: usize,
    },
    /// Division or remainder by zero.
    DivisionByZero {
        /// Index of the faulting instruction.
        pc: usize,
    },
    /// `ret` executed with an empty call stack.
    ReturnWithoutCall {
        /// Index of the faulting instruction.
        pc: usize,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program text"),
            VmError::MemoryOutOfRange { address, pc } => {
                write!(f, "memory access to word {address} out of range at pc {pc}")
            }
            VmError::DivisionByZero { pc } => write!(f, "division by zero at pc {pc}"),
            VmError::ReturnWithoutCall { pc } => {
                write!(f, "return with empty call stack at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction executed.
    Halted,
    /// The dynamic-instruction budget was exhausted (long-running
    /// benchmarks are truncated this way, as the paper truncates its
    /// traces at 20M conditional branches).
    InstructionLimit,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Dynamic instructions executed.
    pub instructions: u64,
}

/// The mini-RISC virtual machine: executes a [`Program`] and emits the
/// branch/trap trace the prediction simulator consumes.
///
/// # Example
///
/// ```
/// use tlabp_isa::asm::assemble;
/// use tlabp_isa::vm::Vm;
///
/// let program = assemble(
///     "       li   r1, 0
///             li   r2, 8
///      top:   addi r1, r1, 1
///             blt  r1, r2, top
///             halt",
/// ).expect("valid assembly");
/// let mut vm = Vm::new(program);
/// let outcome = vm.run()?;
/// assert_eq!(outcome.instructions, 2 + 2 * 8 + 1);
/// let trace = vm.into_trace();
/// assert_eq!(trace.conditional_branches().count(), 8);
/// # Ok::<(), tlabp_isa::vm::VmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Vm {
    program: Program,
    regs: [i64; 32],
    memory: Vec<i64>,
    pc: usize,
    instret: u64,
    max_instructions: u64,
    call_stack: Vec<usize>,
    trace: Trace,
}

impl Vm {
    /// Creates a VM over `program` with default memory and instruction
    /// budget.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Vm::with_limits(program, DEFAULT_MEMORY_WORDS, DEFAULT_MAX_INSTRUCTIONS)
    }

    /// Creates a VM with explicit data-memory size (words) and dynamic
    /// instruction budget.
    ///
    /// # Panics
    ///
    /// Panics if `memory_words` is zero.
    #[must_use]
    pub fn with_limits(program: Program, memory_words: usize, max_instructions: u64) -> Self {
        assert!(memory_words > 0, "memory must be non-empty");
        Vm {
            program,
            regs: [0; 32],
            memory: vec![0; memory_words],
            pc: 0,
            instret: 0,
            max_instructions,
            call_stack: Vec::new(),
            trace: Trace::new(),
        }
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Reads a data-memory word (e.g. to inspect results after a run).
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    #[must_use]
    pub fn mem(&self, address: usize) -> i64 {
        self.memory[address]
    }

    /// Writes a data-memory word (e.g. to provide input data).
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    pub fn set_mem(&mut self, address: usize, value: i64) {
        self.memory[address] = value;
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn instructions_executed(&self) -> u64 {
        self.instret
    }

    /// The trace accumulated so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the VM, returning the accumulated trace.
    #[must_use]
    pub fn into_trace(mut self) -> Trace {
        self.trace.set_total_instructions(self.instret);
        self.trace
    }

    fn mem_index(&self, base: Reg, offset: i64, pc: usize) -> Result<usize, VmError> {
        let address = self.reg(base).wrapping_add(offset);
        usize::try_from(address)
            .ok()
            .filter(|&a| a < self.memory.len())
            .ok_or(VmError::MemoryOutOfRange { address, pc })
    }

    fn alu(op: AluOp, a: i64, b: i64, pc: usize) -> Result<i64, VmError> {
        Ok(match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return Err(VmError::DivisionByZero { pc });
                }
                a.wrapping_div(b)
            }
            AluOp::Rem => {
                if b == 0 {
                    return Err(VmError::DivisionByZero { pc });
                }
                a.wrapping_rem(b)
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Shr => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Slt => i64::from(a < b),
        })
    }

    /// Runs until `halt`, an error, or the instruction budget.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on invalid memory access, division by zero,
    /// pc out of range, or return with an empty call stack.
    pub fn run(&mut self) -> Result<RunOutcome, VmError> {
        loop {
            if self.instret >= self.max_instructions {
                return Ok(RunOutcome {
                    stop: StopReason::InstructionLimit,
                    instructions: self.instret,
                });
            }
            let pc = self.pc;
            let Some(&inst) = self.program.instructions().get(pc) else {
                return Err(VmError::PcOutOfRange { pc });
            };
            self.instret += 1;
            let mut next_pc = pc + 1;
            match inst {
                Inst::Alu { op, rd, a, b } => {
                    let value = Vm::alu(op, self.reg(a), self.reg(b), pc)?;
                    self.set_reg(rd, value);
                }
                Inst::AluImm { op, rd, a, imm } => {
                    let value = Vm::alu(op, self.reg(a), imm, pc)?;
                    self.set_reg(rd, value);
                }
                Inst::LoadImm { rd, imm } => self.set_reg(rd, imm),
                Inst::Load { rd, base, offset } => {
                    let index = self.mem_index(base, offset, pc)?;
                    let value = self.memory[index];
                    self.set_reg(rd, value);
                }
                Inst::Store { src, base, offset } => {
                    let index = self.mem_index(base, offset, pc)?;
                    self.memory[index] = self.reg(src);
                }
                Inst::Branch { cond, a, b, target } => {
                    let taken = cond.eval(self.reg(a), self.reg(b));
                    self.trace.push(BranchRecord::conditional(
                        Program::address_of(pc),
                        taken,
                        Program::address_of(target),
                        self.instret,
                    ));
                    if taken {
                        next_pc = target;
                    }
                }
                Inst::Jump { target } => {
                    self.trace.push(BranchRecord::unconditional(
                        Program::address_of(pc),
                        BranchClass::Unconditional,
                        Program::address_of(target),
                        self.instret,
                    ));
                    next_pc = target;
                }
                Inst::Call { target } => {
                    self.call_stack.push(pc + 1);
                    self.trace.push(BranchRecord::unconditional(
                        Program::address_of(pc),
                        BranchClass::Call,
                        Program::address_of(target),
                        self.instret,
                    ));
                    next_pc = target;
                }
                Inst::Ret => {
                    let return_to =
                        self.call_stack.pop().ok_or(VmError::ReturnWithoutCall { pc })?;
                    self.trace.push(BranchRecord::unconditional(
                        Program::address_of(pc),
                        BranchClass::Return,
                        Program::address_of(return_to),
                        self.instret,
                    ));
                    next_pc = return_to;
                }
                Inst::Trap { code: _ } => {
                    self.trace.push(TrapRecord::new(Program::address_of(pc), self.instret));
                }
                Inst::Halt => {
                    return Ok(RunOutcome { stop: StopReason::Halted, instructions: self.instret });
                }
                Inst::Nop => {}
            }
            self.pc = next_pc;
        }
    }
}

/// Convenience: assemble-free execution of a prebuilt program, returning
/// its trace.
///
/// # Errors
///
/// Propagates any [`VmError`] from the run.
pub fn run_to_trace(program: Program, max_instructions: u64) -> Result<Trace, VmError> {
    let mut vm = Vm::with_limits(program, DEFAULT_MEMORY_WORDS, max_instructions);
    vm.run()?;
    Ok(vm.into_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(source: &str) -> (Vm, RunOutcome) {
        let program = assemble(source).expect("test program assembles");
        let mut vm = Vm::with_limits(program, 4096, 10_000_000);
        let outcome = vm.run().expect("test program runs");
        (vm, outcome)
    }

    #[test]
    fn arithmetic_and_registers() {
        let (vm, _) = run("li r1, 6
             li r2, 7
             mul r3, r1, r2
             subi r4, r3, 2
             halt");
        assert_eq!(vm.reg(Reg::new(3)), 42);
        assert_eq!(vm.reg(Reg::new(4)), 40);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (vm, _) = run("li r0, 99\nhalt");
        assert_eq!(vm.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores() {
        let (vm, _) = run("li r1, 100
             li r2, 55
             st r2, r1, 4
             ld r3, r1, 4
             halt");
        assert_eq!(vm.mem(104), 55);
        assert_eq!(vm.reg(Reg::new(3)), 55);
    }

    #[test]
    fn loop_emits_conditional_trace() {
        let (vm, outcome) = run("       li  r1, 0
                    li  r2, 5
             top:   addi r1, r1, 1
                    blt r1, r2, top
                    halt");
        assert_eq!(outcome.stop, StopReason::Halted);
        let trace = vm.into_trace();
        let dirs: Vec<bool> = trace.conditional_branches().map(|b| b.taken).collect();
        assert_eq!(dirs, vec![true, true, true, true, false]);
        // Loop branch is backward.
        assert!(trace.conditional_branches().all(|b| b.is_backward()));
    }

    #[test]
    fn call_and_return_trace_classes() {
        let (vm, _) = run("       call fn
                    halt
             fn:    nop
                    ret");
        let trace = vm.into_trace();
        let classes: Vec<BranchClass> = trace.branches().map(|b| b.class).collect();
        assert_eq!(classes, vec![BranchClass::Call, BranchClass::Return]);
        // Return target is the instruction after the call.
        let ret = trace.branches().nth(1).unwrap();
        assert_eq!(ret.target, Program::address_of(1));
    }

    #[test]
    fn nested_calls_unwind_correctly() {
        let (vm, _) = run("       call a
                    halt
             a:     call b
                    ret
             b:     ret");
        assert_eq!(vm.reg(Reg::ZERO), 0); // reached halt without error
        let trace = vm.trace();
        assert_eq!(trace.branches().count(), 4);
    }

    #[test]
    fn trap_emits_trap_event_and_continues() {
        let (vm, _) = run("trap 3\nli r1, 1\nhalt");
        assert_eq!(vm.reg(Reg::new(1)), 1);
        let trace = vm.into_trace();
        assert_eq!(trace.iter().filter(|e| e.as_branch().is_none()).count(), 1);
    }

    #[test]
    fn instruction_budget_stops_infinite_loop() {
        let program = assemble("top: j top").unwrap();
        let mut vm = Vm::with_limits(program, 64, 1000);
        let outcome = vm.run().unwrap();
        assert_eq!(outcome.stop, StopReason::InstructionLimit);
        assert_eq!(outcome.instructions, 1000);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let program = assemble("li r1, 1\ndiv r2, r1, r0\nhalt").unwrap();
        let mut vm = Vm::with_limits(program, 64, 1000);
        assert_eq!(vm.run(), Err(VmError::DivisionByZero { pc: 1 }));
    }

    #[test]
    fn memory_bounds_checked() {
        let program = assemble("li r1, 9999999\nld r2, r1, 0\nhalt").unwrap();
        let mut vm = Vm::with_limits(program, 64, 1000);
        assert!(matches!(vm.run(), Err(VmError::MemoryOutOfRange { .. })));
    }

    #[test]
    fn return_without_call_is_an_error() {
        let program = assemble("ret").unwrap();
        let mut vm = Vm::with_limits(program, 64, 1000);
        assert_eq!(vm.run(), Err(VmError::ReturnWithoutCall { pc: 0 }));
    }

    #[test]
    fn falling_off_the_end_is_an_error() {
        let program = assemble("nop").unwrap();
        let mut vm = Vm::with_limits(program, 64, 1000);
        assert_eq!(vm.run(), Err(VmError::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn trace_instret_matches_execution_order() {
        let (vm, _) = run("li r1, 1\nj next\nnext: halt");
        let trace = vm.into_trace();
        let jump = trace.branches().next().unwrap();
        assert_eq!(jump.instret, 2, "jump is the second instruction executed");
    }

    #[test]
    fn shift_operations() {
        let (vm, _) = run("li r1, 1
             li r2, 4
             shl r3, r1, r2
             li r4, -16
             shri r5, r4, 2
             halt");
        assert_eq!(vm.reg(Reg::new(3)), 16);
        assert_eq!(vm.reg(Reg::new(5)), -4, "shr is arithmetic");
    }
}
