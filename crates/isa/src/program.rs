//! Programs: instruction sequences with label metadata, plus a builder
//! API for generated code.

use std::collections::HashMap;
use std::fmt;

use crate::inst::{AluOp, Cond, Inst, Reg};

/// Base text address: instruction index `i` lives at byte address
/// `TEXT_BASE + 4 * i`. Branch trace records use these byte addresses, so
/// branch pcs are dense the way real code is.
pub const TEXT_BASE: u64 = 0x1000;

/// An executable program for the mini-RISC VM.
///
/// # Example
///
/// ```
/// use tlabp_isa::program::ProgramBuilder;
/// use tlabp_isa::inst::{Cond, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let r1 = Reg::new(1);
/// let r2 = Reg::new(2);
/// b.li(r1, 0);
/// b.li(r2, 10);
/// let top = b.label("loop");
/// b.bind(top);
/// b.addi(r1, r1, 1);
/// b.branch(Cond::Lt, r1, r2, top);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 5);
/// # Ok::<(), tlabp_isa::program::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instructions: Vec<Inst>,
    labels: HashMap<String, usize>,
}

impl Program {
    /// Wraps a raw instruction vector (targets already resolved).
    #[must_use]
    pub fn from_instructions(instructions: Vec<Inst>) -> Self {
        Program { instructions, labels: HashMap::new() }
    }

    /// The instructions.
    #[must_use]
    pub fn instructions(&self) -> &[Inst] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction index a label resolves to, if defined.
    #[must_use]
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// The byte address of instruction index `index`.
    #[must_use]
    pub fn address_of(index: usize) -> u64 {
        TEXT_BASE + 4 * index as u64
    }

    /// Number of static conditional branches in the program text.
    #[must_use]
    pub fn static_conditional_branches(&self) -> usize {
        self.instructions.iter().filter(|i| matches!(i, Inst::Branch { .. })).count()
    }

    pub(crate) fn with_labels(instructions: Vec<Inst>, labels: HashMap<String, usize>) -> Self {
        Program { instructions, labels }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut by_index: HashMap<usize, &str> = HashMap::new();
        for (name, &index) in &self.labels {
            by_index.insert(index, name);
        }
        for (i, inst) in self.instructions.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "    {inst}")?;
        }
        Ok(())
    }
}

/// Error building or assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// A label was referenced but never bound to a location.
    UnboundLabel {
        /// The label's name.
        name: String,
    },
    /// A label was bound twice.
    DuplicateLabel {
        /// The label's name.
        name: String,
    },
    /// An assembly line failed to parse.
    Syntax {
        /// 1-based source line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel { name } => write!(f, "label {name:?} is never bound"),
            ProgramError::DuplicateLabel { name } => {
                write!(f, "label {name:?} is bound more than once")
            }
            ProgramError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A forward-referenceable label handle issued by [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incrementally builds a [`Program`], with label binding and patching —
/// the API the generated workloads (e.g. the gcc-like synthetic control
/// flow graph) use instead of text assembly.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instructions: Vec<Inst>,
    label_names: Vec<String>,
    bound: Vec<Option<usize>>,
    /// (instruction index, label) pairs whose targets need patching.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a label (not yet bound to a location).
    pub fn label(&mut self, name: impl Into<String>) -> Label {
        let id = Label(self.label_names.len());
        self.label_names.push(name.into());
        self.bound.push(None);
        id
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (builder misuse is a
    /// programming error, unlike assembling untrusted text).
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label {:?} bound twice", self.label_names[label.0]);
        self.bound[label.0] = Some(self.instructions.len());
    }

    /// Current instruction count (the index the next emitted instruction
    /// will occupy).
    #[must_use]
    pub fn here(&self) -> usize {
        self.instructions.len()
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        self.instructions.push(inst);
        self
    }

    /// Emits a raw instruction.
    ///
    /// Control-flow instructions pushed this way must carry
    /// already-resolved targets; prefer [`ProgramBuilder::branch`],
    /// [`ProgramBuilder::jump`] and [`ProgramBuilder::call`], which
    /// resolve labels.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.push(inst)
    }

    /// Emits `rd = a <op> b`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Inst::Alu { op, rd, a, b })
    }

    /// Emits `rd = a + b`.
    pub fn add(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, a, b)
    }

    /// Emits `rd = a - b`.
    pub fn sub(&mut self, rd: Reg, a: Reg, b: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, a, b)
    }

    /// Emits `rd = a <op> imm`.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, a: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op, rd, a, imm })
    }

    /// Emits `rd = a + imm`.
    pub fn addi(&mut self, rd: Reg, a: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Add, rd, a, imm)
    }

    /// Emits `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Inst::LoadImm { rd, imm })
    }

    /// Emits `rd = mem[base + offset]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Load { rd, base, offset })
    }

    /// Emits `mem[base + offset] = src`.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Store { src, base, offset })
    }

    /// Emits a conditional branch to `target`.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) -> &mut Self {
        let at = self.instructions.len();
        self.fixups.push((at, target));
        self.push(Inst::Branch { cond, a, b, target: usize::MAX })
    }

    /// Emits an unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        let at = self.instructions.len();
        self.fixups.push((at, target));
        self.push(Inst::Jump { target: usize::MAX })
    }

    /// Emits a call to `target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        let at = self.instructions.len();
        self.fixups.push((at, target));
        self.push(Inst::Call { target: usize::MAX })
    }

    /// Emits a return.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Ret)
    }

    /// Emits a trap.
    pub fn trap(&mut self, code: u16) -> &mut Self {
        self.push(Inst::Trap { code })
    }

    /// Emits a halt.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Resolves all label references and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        for &(at, label) in &self.fixups {
            let Some(target) = self.bound[label.0] else {
                return Err(ProgramError::UnboundLabel { name: self.label_names[label.0].clone() });
            };
            match &mut self.instructions[at] {
                Inst::Branch { target: t, .. }
                | Inst::Jump { target: t }
                | Inst::Call { target: t } => *t = target,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        let labels = self
            .label_names
            .iter()
            .zip(&self.bound)
            .filter_map(|(name, bound)| bound.map(|index| (name.clone(), index)))
            .collect();
        Ok(Program::with_labels(self.instructions, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let r1 = Reg::new(1);
        let end = b.label("end");
        let top = b.label("top");
        b.bind(top);
        b.addi(r1, r1, 1);
        b.branch(Cond::Ge, r1, Reg::new(2), end); // forward
        b.jump(top); // backward
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.label("top"), Some(0));
        assert_eq!(p.label("end"), Some(3));
        match p.instructions()[1] {
            Inst::Branch { target, .. } => assert_eq!(target, 3),
            ref other => panic!("expected branch, got {other}"),
        }
        match p.instructions()[2] {
            Inst::Jump { target } => assert_eq!(target, 0),
            ref other => panic!("expected jump, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.label("nowhere");
        b.jump(nowhere);
        let err = b.build().unwrap_err();
        assert_eq!(err, ProgramError::UnboundLabel { name: "nowhere".to_owned() });
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label("l");
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn static_branch_count() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.bind(top);
        b.branch(Cond::Eq, Reg::ZERO, Reg::ZERO, top);
        b.branch(Cond::Ne, Reg::ZERO, Reg::ZERO, top);
        b.jump(top);
        let p = b.build().unwrap();
        assert_eq!(p.static_conditional_branches(), 2);
    }

    #[test]
    fn addresses_are_word_spaced() {
        assert_eq!(Program::address_of(0), TEXT_BASE);
        assert_eq!(Program::address_of(3), TEXT_BASE + 12);
    }

    #[test]
    fn display_includes_labels() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.bind(top);
        b.nop();
        b.jump(top);
        let p = b.build().unwrap();
        let text = p.to_string();
        assert!(text.contains("top:"));
        assert!(text.contains("j @0"));
    }
}
