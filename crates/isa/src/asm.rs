//! A small two-pass text assembler for the mini-RISC ISA.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! ; comments run to end of line (also '#')
//!         li   r1, 0          ; rd, imm
//!         li   r2, 10
//! loop:   addi r1, r1, 1      ; rd, rs, imm
//!         blt  r1, r2, loop   ; rs, rs, label
//!         halt
//! ```
//!
//! Mnemonics: `add sub mul div rem and or xor shl shr slt` (register and
//! `-i` immediate forms), `li`, `mv`, `ld rd, base, offset`,
//! `st src, base, offset`, `beq bne blt bge ble bgt`, `j`, `call`, `ret`,
//! `trap code`, `halt`, `nop`.

use std::collections::HashMap;

use crate::inst::{AluOp, Cond, Inst, Reg};
use crate::program::{Program, ProgramError};

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`ProgramError::Syntax`] (with a 1-based line number) for
/// malformed lines, [`ProgramError::DuplicateLabel`] /
/// [`ProgramError::UnboundLabel`] for label problems.
///
/// # Example
///
/// ```
/// let program = tlabp_isa::asm::assemble(
///     "        li   r1, 0
///              li   r2, 3
///      loop:   addi r1, r1, 1
///              blt  r1, r2, loop
///              halt",
/// )?;
/// assert_eq!(program.len(), 5);
/// assert_eq!(program.label("loop"), Some(2));
/// # Ok::<(), tlabp_isa::program::ProgramError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, ProgramError> {
    // Pass 1: strip comments, collect labels and raw statements.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut statements: Vec<(usize, String)> = Vec::new(); // (line_no, text)
    for (line_index, raw) in source.lines().enumerate() {
        let line_no = line_index + 1;
        let mut line = raw;
        if let Some(cut) = line.find([';', '#']) {
            line = &line[..cut];
        }
        let mut rest = line.trim();
        while let Some(colon) = rest.find(':') {
            let (name, after) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(ProgramError::Syntax {
                    line: line_no,
                    message: format!("bad label name {name:?}"),
                });
            }
            if labels.insert(name.to_owned(), statements.len()).is_some() {
                return Err(ProgramError::DuplicateLabel { name: name.to_owned() });
            }
            rest = after[1..].trim();
        }
        if !rest.is_empty() {
            statements.push((line_no, rest.to_owned()));
        }
    }

    // Pass 2: parse statements with label resolution.
    let mut instructions = Vec::with_capacity(statements.len());
    for (line_no, text) in &statements {
        instructions.push(parse_statement(*line_no, text, &labels)?);
    }
    Ok(Program::with_labels(instructions, labels))
}

fn parse_statement(
    line: usize,
    text: &str,
    labels: &HashMap<String, usize>,
) -> Result<Inst, ProgramError> {
    let syntax = |message: String| ProgramError::Syntax { line, message };
    let mut parts = text.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().expect("statement is non-empty").to_lowercase();
    let operand_text = parts.next().unwrap_or("");
    let operands: Vec<&str> =
        operand_text.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();

    let expect = |n: usize| -> Result<(), ProgramError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(syntax(format!("{mnemonic} expects {n} operand(s), found {}", operands.len())))
        }
    };
    let reg = |s: &str| -> Result<Reg, ProgramError> {
        let digits = s
            .strip_prefix(['r', 'R'])
            .ok_or_else(|| syntax(format!("expected register, got {s:?}")))?;
        let index: u8 = digits.parse().map_err(|_| syntax(format!("bad register {s:?}")))?;
        if index >= Reg::COUNT {
            return Err(syntax(format!("register {s} out of range")));
        }
        Ok(Reg::new(index))
    };
    let imm = |s: &str| -> Result<i64, ProgramError> {
        let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16)
        } else {
            s.parse()
        };
        parsed.map_err(|_| syntax(format!("bad immediate {s:?}")))
    };
    let target = |s: &str| -> Result<usize, ProgramError> {
        labels.get(s).copied().ok_or_else(|| syntax(format!("unknown label {s:?}")))
    };

    let alu_op = |name: &str| -> Option<AluOp> {
        Some(match name {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "mul" => AluOp::Mul,
            "div" => AluOp::Div,
            "rem" => AluOp::Rem,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "shl" => AluOp::Shl,
            "shr" => AluOp::Shr,
            "slt" => AluOp::Slt,
            _ => return None,
        })
    };
    let cond = |name: &str| -> Option<Cond> {
        Some(match name {
            "beq" => Cond::Eq,
            "bne" => Cond::Ne,
            "blt" => Cond::Lt,
            "bge" => Cond::Ge,
            "ble" => Cond::Le,
            "bgt" => Cond::Gt,
            _ => return None,
        })
    };

    if let Some(op) = alu_op(&mnemonic) {
        expect(3)?;
        return Ok(Inst::Alu {
            op,
            rd: reg(operands[0])?,
            a: reg(operands[1])?,
            b: reg(operands[2])?,
        });
    }
    if let Some(op) = mnemonic.strip_suffix('i').and_then(alu_op) {
        expect(3)?;
        return Ok(Inst::AluImm {
            op,
            rd: reg(operands[0])?,
            a: reg(operands[1])?,
            imm: imm(operands[2])?,
        });
    }
    if let Some(c) = cond(&mnemonic) {
        expect(3)?;
        return Ok(Inst::Branch {
            cond: c,
            a: reg(operands[0])?,
            b: reg(operands[1])?,
            target: target(operands[2])?,
        });
    }
    match mnemonic.as_str() {
        "li" => {
            expect(2)?;
            Ok(Inst::LoadImm { rd: reg(operands[0])?, imm: imm(operands[1])? })
        }
        "mv" => {
            expect(2)?;
            Ok(Inst::AluImm { op: AluOp::Add, rd: reg(operands[0])?, a: reg(operands[1])?, imm: 0 })
        }
        "ld" => {
            expect(3)?;
            Ok(Inst::Load {
                rd: reg(operands[0])?,
                base: reg(operands[1])?,
                offset: imm(operands[2])?,
            })
        }
        "st" => {
            expect(3)?;
            Ok(Inst::Store {
                src: reg(operands[0])?,
                base: reg(operands[1])?,
                offset: imm(operands[2])?,
            })
        }
        "j" => {
            expect(1)?;
            Ok(Inst::Jump { target: target(operands[0])? })
        }
        "call" => {
            expect(1)?;
            Ok(Inst::Call { target: target(operands[0])? })
        }
        "ret" => {
            expect(0)?;
            Ok(Inst::Ret)
        }
        "trap" => {
            expect(1)?;
            let code = imm(operands[0])?;
            u16::try_from(code)
                .map(|code| Inst::Trap { code })
                .map_err(|_| syntax(format!("trap code {code} out of range")))
        }
        "halt" => {
            expect(0)?;
            Ok(Inst::Halt)
        }
        "nop" => {
            expect(0)?;
            Ok(Inst::Nop)
        }
        other => Err(syntax(format!("unknown mnemonic {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop() {
        let p = assemble(
            "       li   r1, 0
                    li   r2, 5
             top:   addi r1, r1, 1
                    blt  r1, r2, top
                    halt",
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.label("top"), Some(2));
        assert_eq!(
            p.instructions()[3],
            Inst::Branch { cond: Cond::Lt, a: Reg::new(1), b: Reg::new(2), target: 2 }
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; a comment\n\n  # another\n  nop ; trailing\n  halt # done\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn label_on_its_own_line() {
        let p = assemble("start:\n  nop\n  j start\n").unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.instructions()[1], Inst::Jump { target: 0 });
    }

    #[test]
    fn multiple_labels_same_location() {
        let p = assemble("a: b:\n  halt\n").unwrap();
        assert_eq!(p.label("a"), Some(0));
        assert_eq!(p.label("b"), Some(0));
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li r1, 0x10\nhalt\n").unwrap();
        assert_eq!(p.instructions()[0], Inst::LoadImm { rd: Reg::new(1), imm: 16 });
    }

    #[test]
    fn mv_is_addi_zero() {
        let p = assemble("mv r2, r3\nhalt\n").unwrap();
        assert_eq!(
            p.instructions()[0],
            Inst::AluImm { op: AluOp::Add, rd: Reg::new(2), a: Reg::new(3), imm: 0 }
        );
    }

    #[test]
    fn immediate_alu_forms() {
        let p = assemble("slti r1, r2, 4\nxori r3, r4, 1\nhalt\n").unwrap();
        assert_eq!(
            p.instructions()[0],
            Inst::AluImm { op: AluOp::Slt, rd: Reg::new(1), a: Reg::new(2), imm: 4 }
        );
        assert_eq!(
            p.instructions()[1],
            Inst::AluImm { op: AluOp::Xor, rd: Reg::new(3), a: Reg::new(4), imm: 1 }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1\n").unwrap_err();
        match err {
            ProgramError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("expected syntax error, got {other}"),
        }
    }

    #[test]
    fn rejects_unknown_label() {
        let err = assemble("j nowhere\n").unwrap_err();
        assert!(matches!(err, ProgramError::Syntax { .. }));
    }

    #[test]
    fn rejects_duplicate_label() {
        let err = assemble("x: nop\nx: halt\n").unwrap_err();
        assert_eq!(err, ProgramError::DuplicateLabel { name: "x".to_owned() });
    }

    #[test]
    fn rejects_bad_register_and_operand_count() {
        assert!(assemble("add r1, r2\n").is_err());
        assert!(assemble("add r1, r2, r99\n").is_err());
        assert!(assemble("li x1, 5\n").is_err());
        assert!(assemble("trap 100000\n").is_err());
    }
}
