//! # Mini-RISC instruction-level simulator
//!
//! The paper generated its branch traces with "a Motorola 88100
//! instruction level simulator". That toolchain (and the SPEC'89 inputs it
//! ran) is not available, so this crate provides the substitute substrate:
//! a small register ISA ([`inst`]), a two-pass text assembler ([`asm`]), a
//! builder API for generated code ([`program::ProgramBuilder`]) and an
//! interpreter ([`vm::Vm`]) that executes programs while emitting exactly
//! the events the branch-prediction study consumes — conditional
//! branches, unconditional jumps, calls, returns (the classes of
//! Figure 4) and traps (the context-switch triggers of Section 5.1.4),
//! each stamped with the dynamic instruction count.
//!
//! The predictors only ever observe `(pc, class, direction, target)`
//! tuples, so any ISA producing real control flow from real program
//! execution exercises the identical code path as the original setup; see
//! DESIGN.md (substitution 1).
//!
//! # Example
//!
//! ```
//! use tlabp_isa::asm::assemble;
//! use tlabp_isa::vm::Vm;
//!
//! let program = assemble(
//!     "       li   r1, 0
//!             li   r2, 100
//!      loop:  addi r1, r1, 1
//!             blt  r1, r2, loop
//!             halt",
//! )?;
//! let mut vm = Vm::new(program);
//! vm.run().expect("program runs to halt");
//! let trace = vm.into_trace();
//! assert_eq!(trace.conditional_branches().count(), 100);
//! # Ok::<(), tlabp_isa::program::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod inst;
pub mod program;
pub mod vm;

pub use asm::assemble;
pub use inst::{AluOp, Cond, Inst, Reg};
pub use program::{Program, ProgramBuilder, ProgramError};
pub use vm::{RunOutcome, StopReason, Vm, VmError};
