//! The instruction set of the mini-RISC trace generator.
//!
//! A small load/store architecture with 32 general-purpose registers
//! (`r0` hardwired to zero), word-addressed data memory, conditional
//! branches, unconditional jumps, calls/returns and traps — the classes of
//! control transfer the paper's Figure 4 distinguishes. It intentionally
//! mirrors the *trace-relevant* features of the Motorola 88100 the paper
//! used, not its encoding.

use std::fmt;

/// A register name `r0`–`r31`; `r0` always reads zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: u8 = 32;
    /// The zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates register `rN`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < Reg::COUNT, "register index out of range");
        Reg(index)
    }

    /// The register number.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Condition codes for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if signed less-or-equal.
    Le,
    /// Branch if signed greater-than.
    Gt,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }

    /// The branch mnemonic (`beq`, `bne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
        }
    }
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps the VM on divide-by-zero).
    Div,
    /// Signed remainder (traps the VM on divide-by-zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Arithmetic shift right (shift amount masked to 6 bits).
    Shr,
    /// Set if signed less-than (1 or 0).
    Slt,
}

impl AluOp {
    /// The assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Slt => "slt",
        }
    }
}

/// One instruction. Branch/jump/call targets are instruction indices into
/// the program's text (resolved from labels at assembly time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `rd = a <op> b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `rd = a <op> imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        a: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `rd = imm`.
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = mem[base + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i64,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i64,
    },
    /// Conditional branch: `if a <cond> b goto target`.
    Branch {
        /// Condition.
        cond: Cond,
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Subroutine call (pushes the return address on the VM call stack).
    Call {
        /// Target instruction index.
        target: usize,
    },
    /// Subroutine return (pops the VM call stack).
    Ret,
    /// Operating-system trap: emits a trap trace event (context-switch
    /// trigger) and continues.
    Trap {
        /// Trap code, recorded for diagnostics.
        code: u16,
    },
    /// Stops execution.
    Halt,
    /// Does nothing.
    Nop,
}

impl Inst {
    /// Whether this instruction is any kind of branch (for Figure 4
    /// accounting).
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, rd, a, b } => write!(f, "{} {rd}, {a}, {b}", op.mnemonic()),
            Inst::AluImm { op, rd, a, imm } => {
                write!(f, "{}i {rd}, {a}, {imm}", op.mnemonic())
            }
            Inst::LoadImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Load { rd, base, offset } => write!(f, "ld {rd}, {base}, {offset}"),
            Inst::Store { src, base, offset } => write!(f, "st {src}, {base}, {offset}"),
            Inst::Branch { cond, a, b, target } => {
                write!(f, "{} {a}, {b}, @{target}", cond.mnemonic())
            }
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::Call { target } => write!(f, "call @{target}"),
            Inst::Ret => f.write_str("ret"),
            Inst::Trap { code } => write!(f, "trap {code}"),
            Inst::Halt => f.write_str("halt"),
            Inst::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_zero_and_bounds() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::new(31).index(), 31);
        assert_eq!(Reg::new(5).to_string(), "r5");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_rejects_32() {
        let _ = Reg::new(32);
    }

    #[test]
    fn cond_eval_table() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Ge.eval(0, 0));
        assert!(Cond::Le.eval(-5, -5));
        assert!(Cond::Gt.eval(7, 6));
        assert!(!Cond::Gt.eval(6, 6));
    }

    #[test]
    fn branch_classification() {
        let branch = Inst::Branch { cond: Cond::Eq, a: Reg::ZERO, b: Reg::ZERO, target: 0 };
        assert!(branch.is_branch());
        assert!(Inst::Ret.is_branch());
        assert!(Inst::Jump { target: 0 }.is_branch());
        assert!(Inst::Call { target: 0 }.is_branch());
        assert!(!Inst::Nop.is_branch());
        assert!(!Inst::Trap { code: 1 }.is_branch());
    }

    #[test]
    fn display_round_readable() {
        let inst = Inst::Branch { cond: Cond::Lt, a: Reg::new(1), b: Reg::new(2), target: 7 };
        assert_eq!(inst.to_string(), "blt r1, r2, @7");
        assert_eq!(Inst::LoadImm { rd: Reg::new(3), imm: -9 }.to_string(), "li r3, -9");
    }
}
