//! The sweep daemon: accepts serialized plans over TCP, streams results.
//!
//! One [`SweepServer`] owns the warm state every connection shares — a
//! single [`TraceStore`] (traces generate once, ever) and the global
//! [`SweepPool`](tlabp_sim::SweepPool) (simulation work from all clients
//! interleaves on one fixed set of worker threads, which is what makes
//! admission fair: a second client's jobs enqueue behind — not after —
//! the first client's, draining in bounded windows rather than whole
//! plans). A memo cache keyed by the canonical plan JSON replays
//! previously-computed responses byte-for-byte with zero simulation
//! work.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use tlabp_core::registry;
use tlabp_sim::plan::{Plan, PredictorSpec};
use tlabp_sim::{ExecOptions, Session, SweepPool, TraceStore};

use crate::proto::{
    decode_frame, done_payload, encode_frame, error_payload, result_payload, FrameKind,
};

/// Environment variable naming the daemon's listen address.
pub const SERVE_ADDR_ENV: &str = "TLABP_SERVE_ADDR";
/// Default listen address when [`SERVE_ADDR_ENV`] is unset.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7391";
/// Environment variable capping the memo cache (entries; 0 disables).
pub const SERVE_MEMO_ENV: &str = "TLABP_SERVE_MEMO";
/// Default memo-cache capacity in cached responses.
pub const DEFAULT_MEMO_CAP: usize = 64;
/// Environment variable overriding the per-request streaming window
/// (in-flight task cap). Unset means the session default
/// (`2 * pool threads`).
pub const SERVE_WINDOW_ENV: &str = "TLABP_SERVE_WINDOW";

/// Daemon configuration, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`). Use port 0 for an ephemeral port.
    pub addr: String,
    /// Memo-cache capacity in cached responses; 0 disables memoization.
    pub memo_cap: usize,
    /// Per-request streaming window override; `None` = session default.
    pub window: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_SERVE_ADDR.to_owned(),
            memo_cap: DEFAULT_MEMO_CAP,
            window: None,
        }
    }
}

impl ServeConfig {
    /// Reads [`SERVE_ADDR_ENV`], [`SERVE_MEMO_ENV`] and
    /// [`SERVE_WINDOW_ENV`], falling back to the defaults for unset or
    /// unparsable values.
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        if let Ok(addr) = std::env::var(SERVE_ADDR_ENV) {
            if !addr.is_empty() {
                config.addr = addr;
            }
        }
        if let Some(cap) = read_env_usize(SERVE_MEMO_ENV) {
            config.memo_cap = cap;
        }
        config.window = read_env_usize(SERVE_WINDOW_ENV).filter(|&w| w > 0);
        config
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// A memoized response: the pre-encoded `result` frame payloads, in plan
/// order. Replaying the exact strings (rather than re-encoding a stored
/// `ResultSet`) is what makes the memoized response byte-identical to
/// the original one by construction.
type MemoEntry = Arc<Vec<String>>;

/// FIFO-evicting memo cache keyed by canonical plan JSON.
struct MemoCache {
    cap: usize,
    entries: HashMap<String, MemoEntry>,
    order: VecDeque<String>,
}

impl MemoCache {
    fn new(cap: usize) -> Self {
        MemoCache { cap, entries: HashMap::new(), order: VecDeque::new() }
    }

    fn get(&self, key: &str) -> Option<MemoEntry> {
        self.entries.get(key).cloned()
    }

    fn insert(&mut self, key: String, entry: MemoEntry) {
        if self.cap == 0 || self.entries.contains_key(&key) {
            return;
        }
        while self.entries.len() >= self.cap {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(key, entry);
    }
}

/// State shared by every connection of one server.
struct Shared {
    store: TraceStore,
    options: ExecOptions,
    window: Option<usize>,
    memo: Mutex<MemoCache>,
}

/// The sweep-as-a-service daemon. See the module docs for the sharing
/// and fairness model.
pub struct SweepServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl SweepServer {
    /// Binds the daemon to `config.addr` with a warm store and the
    /// given execution options.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn bind(
        config: &ServeConfig,
        store: TraceStore,
        options: ExecOptions,
    ) -> std::io::Result<SweepServer> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(SweepServer {
            listener,
            shared: Arc::new(Shared {
                store,
                options,
                window: config.window,
                memo: Mutex::new(MemoCache::new(config.memo_cap)),
            }),
        })
    }

    /// The bound address — useful after binding port 0.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the local address cannot be queried.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread per connection.
    /// Simulation work still funnels through the one global
    /// [`SweepPool`](tlabp_sim::SweepPool), so concurrent clients share
    /// the worker threads fairly instead of multiplying them.
    pub fn run(&self) -> ! {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        if let Err(err) = handle_connection(stream, &shared) {
                            eprintln!("tlabp-serve: connection {peer}: {err}");
                        }
                    });
                }
                Err(err) => eprintln!("tlabp-serve: accept failed: {err}"),
            }
        }
    }
}

/// Serves one connection: a sequence of `plan` frames, each answered by
/// streamed `result` frames and a terminal `done` (or one `error`).
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        match decode_frame(&line) {
            Ok((FrameKind::Plan, payload)) => serve_plan(payload, shared, &mut writer)?,
            Ok((kind, _)) => {
                send(
                    &mut writer,
                    FrameKind::Error,
                    &error_payload(&format!("expected a plan frame, got {kind}")),
                )?;
            }
            Err(err) => {
                // The stream's framing is no longer trustworthy; report
                // and drop the connection.
                send(&mut writer, FrameKind::Error, &error_payload(&err.to_string()))?;
                break;
            }
        }
    }
    Ok(())
}

fn serve_plan(
    payload: &str,
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    let plan = match Plan::from_json_str(payload) {
        Ok(plan) => plan,
        Err(err) => return send(writer, FrameKind::Error, &error_payload(&err.to_string())),
    };
    // Pre-validate custom predictor names: lowering panics on unknown
    // registry entries (a programming error in-process, but a daemon
    // must survive any client-supplied plan).
    for job in plan.jobs() {
        if let PredictorSpec::Custom(name) = &job.spec {
            if registry::builder(name).is_none() {
                return send(
                    writer,
                    FrameKind::Error,
                    &error_payload(&format!("no predictor registered under {name:?}")),
                );
            }
        }
    }

    // The canonical plan JSON doubles as the memo key: two plans memo-hit
    // iff their canonical encodings are byte-equal.
    let key = plan.to_json_string();
    let cached = shared.memo.lock().expect("memo cache lock").get(&key);
    if let Some(entry) = cached {
        for frame_payload in entry.iter() {
            send(writer, FrameKind::Result, frame_payload)?;
        }
        return send(writer, FrameKind::Done, &done_payload(entry.len(), true));
    }

    // Miss: stream the session. Each result frame is written and flushed
    // as soon as the engine yields the job, so clients see plan-order
    // results incrementally while later jobs are still simulating.
    let mut session =
        Session::on(SweepPool::global(), shared.store.clone()).with_options(shared.options);
    if let Some(window) = shared.window {
        session = session.with_window(window);
    }
    let mut payloads = Vec::with_capacity(plan.len());
    for item in session.submit(&plan) {
        let frame_payload = result_payload(item.index, &item.outcome);
        send(writer, FrameKind::Result, &frame_payload)?;
        payloads.push(frame_payload);
    }
    let jobs = payloads.len();
    shared.memo.lock().expect("memo cache lock").insert(key, Arc::new(payloads));
    send(writer, FrameKind::Done, &done_payload(jobs, false))
}

fn send(writer: &mut BufWriter<TcpStream>, kind: FrameKind, payload: &str) -> std::io::Result<()> {
    writer.write_all(encode_frame(kind, payload).as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Binds per `config`, prints the bound address to stderr, and serves
/// forever (the `Ok` arm is never reached). This is the entry point the
/// `experiments serve` command uses.
///
/// # Errors
///
/// Fails if the address cannot be bound.
pub fn serve(config: &ServeConfig, store: TraceStore, options: ExecOptions) -> std::io::Result<()> {
    let server = SweepServer::bind(config, store, options)?;
    eprintln!("tlabp-serve: listening on {}", server.local_addr()?);
    server.run()
}
