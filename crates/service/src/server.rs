//! The sweep daemon: accepts serialized plans over TCP, streams results.
//!
//! One [`SweepServer`] owns the warm state every connection shares — a
//! single [`TraceStore`] (traces generate once, ever), the global
//! [`SweepPool`](tlabp_sim::SweepPool) (simulation work from all clients
//! interleaves on one fixed set of worker threads, which is what makes
//! admission fair: a second client's jobs enqueue behind — not after —
//! the first client's, draining in bounded windows rather than whole
//! plans), and the two memo tiers (byte-capped LRU in memory, checksummed
//! artifacts on disk) that replay previously-computed responses
//! byte-for-byte with zero simulation work.
//!
//! Connections are served by one of three backends ([`ServeBackend`]):
//! the event-driven readiness core ([`crate::event`], the default on
//! unix — N clients cost a fixed number of threads), or the original
//! thread-per-connection loop (`threaded`), kept as the portable
//! fallback and as the baseline the service benchmark measures the event
//! core against.
//!
//! Every `TLABP_SERVE_*` knob follows one hygiene rule: a garbage value
//! warns on stderr and falls back to the default — a daemon must come up
//! predictably, not die at a typo (the same policy as `TLABP_SIMD`).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tlabp_core::registry;
use tlabp_sim::plan::{Plan, PredictorSpec};
use tlabp_sim::{ExecOptions, Session, SweepPool, TraceStore};

use crate::memo::{MemoCache, MemoDisk, MemoEntry};
use crate::proto::{
    decode_frame, done_payload, encode_frame, error_payload, result_payload, FrameKind,
};

/// Environment variable naming the daemon's listen address.
pub const SERVE_ADDR_ENV: &str = "TLABP_SERVE_ADDR";
/// Default listen address when [`SERVE_ADDR_ENV`] is unset.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7391";
/// Environment variable capping the in-memory memo tier in **bytes** of
/// pre-encoded response frames (plus keys); 0 disables memoization.
pub const SERVE_MEMO_BYTES_ENV: &str = "TLABP_SERVE_MEMO_BYTES";
/// Default in-memory memo budget: 64 MiB of pre-encoded frames.
pub const DEFAULT_MEMO_BYTES: usize = 64 << 20;
/// Environment variable overriding the per-request streaming window
/// (in-flight task cap). Unset means the session default
/// (`2 * pool threads`).
pub const SERVE_WINDOW_ENV: &str = "TLABP_SERVE_WINDOW";
/// Environment variable capping concurrently executing plans per
/// connection; pipelined plans beyond the cap queue FIFO.
pub const SERVE_INFLIGHT_ENV: &str = "TLABP_SERVE_INFLIGHT";
/// Default per-connection in-flight plan cap.
pub const DEFAULT_INFLIGHT: usize = 4;
/// Environment variable naming the persistent memo tier's directory.
/// Unset: a `memo/` directory next to the trace artifacts (when the
/// store has a disk tier). Empty: persistence off.
pub const SERVE_MEMO_DIR_ENV: &str = "TLABP_SERVE_MEMO_DIR";
/// Environment variable capping the persistent memo tier in **bytes**
/// of `.tlabm` artifacts on disk. Over-budget artifacts age out oldest
/// first, after every persist and once at startup. Unset: unbounded.
/// `0`: persistence off (equivalent to an empty [`SERVE_MEMO_DIR_ENV`]).
pub const SERVE_MEMO_DISK_BYTES_ENV: &str = "TLABP_SERVE_MEMO_DISK_BYTES";
/// Environment variable selecting the connection backend
/// (`auto|epoll|poll|threaded`).
pub const SERVE_BACKEND_ENV: &str = "TLABP_SERVE_BACKEND";
/// The retired entry-count memo knob; setting it warns and points at
/// [`SERVE_MEMO_BYTES_ENV`].
const LEGACY_MEMO_ENV: &str = "TLABP_SERVE_MEMO";

/// How the daemon multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeBackend {
    /// Best available: `epoll` on Linux, `poll` on other unix,
    /// `threaded` elsewhere.
    #[default]
    Auto,
    /// Event-driven core on Linux `epoll` (falls back to `poll` if
    /// unavailable).
    Epoll,
    /// Event-driven core on portable `poll(2)`.
    Poll,
    /// The original thread-per-connection loop — one OS thread per
    /// client. Portable everywhere; the benchmark baseline.
    Threaded,
}

impl ServeBackend {
    /// Parses a backend token.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized token.
    pub fn try_parse(raw: &str) -> Result<ServeBackend, String> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(ServeBackend::Auto),
            "epoll" => Ok(ServeBackend::Epoll),
            "poll" => Ok(ServeBackend::Poll),
            "threaded" => Ok(ServeBackend::Threaded),
            other => Err(other.to_owned()),
        }
    }

    /// Parses leniently: a garbage value warns and falls back to
    /// [`ServeBackend::Auto`].
    #[must_use]
    pub fn parse(raw: &str) -> ServeBackend {
        ServeBackend::try_parse(raw).unwrap_or_else(|_| {
            eprintln!(
                "warning: ignoring {SERVE_BACKEND_ENV}={raw:?} \
                 (expected auto|epoll|poll|threaded); using auto"
            );
            ServeBackend::Auto
        })
    }

    /// The token [`ServeBackend::try_parse`] accepts for this backend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServeBackend::Auto => "auto",
            ServeBackend::Epoll => "epoll",
            ServeBackend::Poll => "poll",
            ServeBackend::Threaded => "threaded",
        }
    }
}

/// Where the persistent memo tier lives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MemoDirMode {
    /// `memo/` next to the trace artifacts when the store has a disk
    /// tier; no persistence for a purely in-memory store.
    #[default]
    Auto,
    /// Persistence disabled ([`SERVE_MEMO_DIR_ENV`] set but empty).
    Off,
    /// An explicit directory.
    Dir(PathBuf),
}

impl MemoDirMode {
    fn from_raw(raw: &str) -> MemoDirMode {
        if raw.is_empty() {
            MemoDirMode::Off
        } else {
            MemoDirMode::Dir(PathBuf::from(raw))
        }
    }
}

/// Daemon configuration, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`). Use port 0 for an ephemeral port.
    pub addr: String,
    /// In-memory memo budget in bytes of pre-encoded response frames;
    /// 0 disables memoization (both tiers).
    pub memo_bytes: usize,
    /// Per-request streaming window override; `None` = session default.
    pub window: Option<usize>,
    /// Concurrently executing plans per connection (≥ 1).
    pub inflight: usize,
    /// Persistent memo tier location.
    pub memo_dir: MemoDirMode,
    /// Persistent memo tier byte budget; `None` = unbounded, `Some(0)`
    /// = persistence off.
    pub memo_disk_bytes: Option<usize>,
    /// Connection multiplexing backend.
    pub backend: ServeBackend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_SERVE_ADDR.to_owned(),
            memo_bytes: DEFAULT_MEMO_BYTES,
            window: None,
            inflight: DEFAULT_INFLIGHT,
            memo_dir: MemoDirMode::Auto,
            memo_disk_bytes: None,
            backend: ServeBackend::Auto,
        }
    }
}

impl ServeConfig {
    /// Reads every `TLABP_SERVE_*` knob. Unset values take the
    /// defaults; garbage values warn on stderr and take the defaults
    /// (never a crash, never a silent reinterpretation).
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        if let Ok(addr) = std::env::var(SERVE_ADDR_ENV) {
            if !addr.is_empty() {
                config.addr = addr;
            }
        }
        if let Some(raw) = read_env(SERVE_MEMO_BYTES_ENV) {
            if let Some(bytes) = parse_usize_env(SERVE_MEMO_BYTES_ENV, &raw) {
                config.memo_bytes = bytes;
            }
        }
        if let Some(raw) = read_env(SERVE_WINDOW_ENV) {
            config.window = parse_window_env(&raw);
        }
        if let Some(raw) = read_env(SERVE_INFLIGHT_ENV) {
            if let Some(inflight) = parse_inflight_env(&raw) {
                config.inflight = inflight;
            }
        }
        if let Ok(raw) = std::env::var(SERVE_MEMO_DIR_ENV) {
            config.memo_dir = MemoDirMode::from_raw(&raw);
        }
        if let Some(raw) = read_env(SERVE_MEMO_DISK_BYTES_ENV) {
            config.memo_disk_bytes = parse_usize_env(SERVE_MEMO_DISK_BYTES_ENV, &raw);
        }
        if let Some(raw) = read_env(SERVE_BACKEND_ENV) {
            config.backend = ServeBackend::parse(&raw);
        }
        if std::env::var_os(LEGACY_MEMO_ENV).is_some() {
            eprintln!(
                "warning: {LEGACY_MEMO_ENV} is retired (the memo cache is byte-capped now); \
                 use {SERVE_MEMO_BYTES_ENV}"
            );
        }
        config
    }
}

fn read_env(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|raw| !raw.is_empty())
}

/// Lenient usize knob: garbage warns and yields `None` (= keep the
/// default).
fn parse_usize_env(name: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!(
                "warning: ignoring {name}={raw:?} (expected a non-negative integer); \
                 using the default"
            );
            None
        }
    }
}

/// [`SERVE_WINDOW_ENV`]: `0` means "session default", so it maps to
/// `None` with a warning rather than a zero-window deadlock.
fn parse_window_env(raw: &str) -> Option<usize> {
    match parse_usize_env(SERVE_WINDOW_ENV, raw) {
        Some(0) => {
            eprintln!(
                "warning: ignoring {SERVE_WINDOW_ENV}=0 (a zero window cannot stream); \
                 using the session default"
            );
            None
        }
        other => other,
    }
}

/// [`SERVE_INFLIGHT_ENV`]: must be ≥ 1 — zero would admit nothing.
fn parse_inflight_env(raw: &str) -> Option<usize> {
    match parse_usize_env(SERVE_INFLIGHT_ENV, raw) {
        Some(0) => {
            eprintln!(
                "warning: ignoring {SERVE_INFLIGHT_ENV}=0 (at least one plan must be \
                 admitted); using {DEFAULT_INFLIGHT}"
            );
            Some(DEFAULT_INFLIGHT)
        }
        other => other,
    }
}

/// Daemon counters, printed in the periodic stats line and cheap enough
/// to bump from any thread.
#[derive(Debug, Default)]
pub(crate) struct ServeStats {
    accepted: AtomicU64,
    accept_errors: AtomicU64,
    plans: AtomicU64,
    memo_hits: AtomicU64,
}

impl ServeStats {
    pub(crate) fn accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn plan(&self) {
        self.plans.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn memo_hit(&self) {
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by every connection of one server.
pub(crate) struct Shared {
    store: TraceStore,
    options: ExecOptions,
    window: Option<usize>,
    memo: Mutex<MemoCache>,
    disk: Option<MemoDisk>,
    pub(crate) stats: ServeStats,
}

impl Shared {
    /// A fresh session on the global pool with this server's options.
    pub(crate) fn session(&self) -> Session<'static> {
        let mut session =
            Session::on(SweepPool::global(), self.store.clone()).with_options(self.options);
        if let Some(window) = self.window {
            session = session.with_window(window);
        }
        session
    }

    /// Probes the in-memory memo tier.
    pub(crate) fn memo_get(&self, key: &str) -> Option<MemoEntry> {
        self.memo.lock().expect("memo cache lock").get(key)
    }

    /// Records a completed response in the LRU and (when configured)
    /// the persistent tier.
    pub(crate) fn memo_store(&self, key: &str, plan: &Plan, payloads: Vec<String>) {
        let entry: MemoEntry = Arc::new(payloads);
        self.memo.lock().expect("memo cache lock").insert(key, Arc::clone(&entry));
        // `disk` is `None` when memoization is disabled (`memo_bytes`
        // of 0), so persistence follows the same switch.
        if let Some(disk) = &self.disk {
            disk.persist(plan, key, &entry);
        }
    }

    /// The periodic stats line (printed only when it changed).
    pub(crate) fn stats_line(&self, conns: usize, backend: &str) -> String {
        let (memo_entries, memo_bytes) = {
            let cache = self.memo.lock().expect("memo cache lock");
            (cache.len(), cache.bytes())
        };
        format!(
            "stats backend={backend} conns={conns} accepted={} accept_errors={} plans={} \
             memo_hits={} memo_entries={memo_entries} memo_bytes={memo_bytes}",
            self.stats.accepted.load(Ordering::Relaxed),
            self.stats.accept_errors.load(Ordering::Relaxed),
            self.stats.plans.load(Ordering::Relaxed),
            self.stats.memo_hits.load(Ordering::Relaxed),
        )
    }
}

/// Rejects plans naming unregistered custom predictors: lowering panics
/// on unknown registry entries (a programming error in-process, but a
/// daemon must survive any client-supplied plan).
pub(crate) fn validate_plan(plan: &Plan) -> Result<(), String> {
    for job in plan.jobs() {
        if let PredictorSpec::Custom(name) = &job.spec {
            if registry::builder(name).is_none() {
                return Err(format!("no predictor registered under {name:?}"));
            }
        }
    }
    Ok(())
}

/// The sweep-as-a-service daemon. See the module docs for the sharing
/// and fairness model.
pub struct SweepServer {
    listener: TcpListener,
    backend: ServeBackend,
    inflight: usize,
    shared: Arc<Shared>,
}

impl SweepServer {
    /// Binds the daemon to `config.addr` with a warm store and the
    /// given execution options, and hydrates the in-memory memo tier
    /// from the persistent one.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn bind(
        config: &ServeConfig,
        store: TraceStore,
        options: ExecOptions,
    ) -> std::io::Result<SweepServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let budget = config.memo_disk_bytes;
        let disk = match &config.memo_dir {
            _ if config.memo_bytes == 0 => None,
            _ if budget == Some(0) => None,
            MemoDirMode::Off => None,
            MemoDirMode::Dir(dir) => Some(MemoDisk::new(dir.clone(), budget)),
            MemoDirMode::Auto => {
                store.cache_dir().map(|dir| MemoDisk::new(dir.join("memo"), budget))
            }
        };
        let mut cache = MemoCache::new(config.memo_bytes);
        if let Some(disk) = &disk {
            // Startup enforcement: a budget shrunk between runs takes
            // effect before hydration reads the survivors.
            disk.enforce_budget();
            let mut hydrated = 0usize;
            for (key, entry) in disk.hydrate() {
                cache.insert(&key, entry);
                hydrated += 1;
            }
            if hydrated > 0 {
                eprintln!(
                    "tlabp-serve: hydrated {hydrated} memoized response(s) ({} bytes) from {}",
                    cache.bytes(),
                    disk.dir().display()
                );
            }
        }
        Ok(SweepServer {
            listener,
            backend: config.backend,
            inflight: config.inflight.max(1),
            shared: Arc::new(Shared {
                store,
                options,
                window: config.window,
                memo: Mutex::new(cache),
                disk,
                stats: ServeStats::default(),
            }),
        })
    }

    /// The bound address — useful after binding port 0.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the local address cannot be queried.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the configured backend. Simulation work always
    /// funnels through the one global
    /// [`SweepPool`](tlabp_sim::SweepPool), so concurrent clients share
    /// the worker threads fairly instead of multiplying them; on the
    /// event backends the *connection* threads are fixed too.
    pub fn run(&self) -> ! {
        match resolve_backend(self.backend) {
            ResolvedBackend::Threaded => self.run_threaded(),
            #[cfg(unix)]
            ResolvedBackend::Event(backend) => crate::event::run(
                &self.listener,
                &self.shared,
                &crate::event::EventConfig {
                    backend,
                    inflight: self.inflight,
                    exec_threads: SweepPool::global().threads().max(2),
                },
            ),
        }
    }

    /// The original thread-per-connection loop: one handler thread per
    /// client. Kept as the portable fallback and as the baseline the
    /// `bench --section service` comparison measures against — note it
    /// parses every plan before the memo probe and flushes every frame
    /// as its own syscall, exactly the costs the event core avoids.
    fn run_threaded(&self) -> ! {
        let mut backoff = Duration::from_millis(10);
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    backoff = Duration::from_millis(10);
                    self.shared.stats.accept();
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        if let Err(err) = handle_connection(stream, &shared) {
                            eprintln!("tlabp-serve: connection {peer}: {err}");
                        }
                    });
                }
                Err(err) => {
                    // EMFILE and friends: back off exponentially instead
                    // of spinning hot on a persistent error.
                    self.shared.stats.accept_error();
                    eprintln!("tlabp-serve: accept failed: {err}; retrying in {backoff:?}");
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2).min(Duration::from_secs(1));
                }
            }
        }
    }
}

/// What [`ServeBackend`] resolves to on this host.
enum ResolvedBackend {
    Threaded,
    #[cfg(unix)]
    Event(crate::event::PollerBackend),
}

fn resolve_backend(backend: ServeBackend) -> ResolvedBackend {
    match backend {
        ServeBackend::Threaded => ResolvedBackend::Threaded,
        #[cfg(unix)]
        ServeBackend::Auto | ServeBackend::Epoll => {
            ResolvedBackend::Event(crate::event::PollerBackend::Epoll)
        }
        #[cfg(unix)]
        ServeBackend::Poll => ResolvedBackend::Event(crate::event::PollerBackend::Poll),
        #[cfg(not(unix))]
        other => {
            eprintln!(
                "tlabp-serve: backend {:?} needs unix readiness APIs; using threaded",
                other.name()
            );
            ResolvedBackend::Threaded
        }
    }
}

/// Serves one connection: a sequence of `plan` frames, each answered by
/// streamed `result` frames and a terminal `done` (or one `error`).
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        match decode_frame(&line) {
            Ok((FrameKind::Plan, payload)) => serve_plan(payload, shared, &mut writer)?,
            Ok((kind, _)) => {
                send(
                    &mut writer,
                    FrameKind::Error,
                    &error_payload(&format!("expected a plan frame, got {kind}")),
                )?;
            }
            Err(err) => {
                // The stream's framing is no longer trustworthy; report
                // and drop the connection.
                send(&mut writer, FrameKind::Error, &error_payload(&err.to_string()))?;
                break;
            }
        }
    }
    Ok(())
}

fn serve_plan(
    payload: &str,
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    shared.stats.plan();
    let plan = match Plan::from_json_str(payload) {
        Ok(plan) => plan,
        Err(err) => return send(writer, FrameKind::Error, &error_payload(&err.to_string())),
    };
    if let Err(message) = validate_plan(&plan) {
        return send(writer, FrameKind::Error, &error_payload(&message));
    }

    // The canonical plan JSON doubles as the memo key: two plans memo-hit
    // iff their canonical encodings are byte-equal.
    let key = plan.to_json_string();
    if let Some(entry) = shared.memo_get(&key) {
        shared.stats.memo_hit();
        for frame_payload in entry.iter() {
            send(writer, FrameKind::Result, frame_payload)?;
        }
        return send(writer, FrameKind::Done, &done_payload(entry.len(), true));
    }

    // Miss: stream the session. Each result frame is written and flushed
    // as soon as the engine yields the job, so clients see plan-order
    // results incrementally while later jobs are still simulating.
    let session = shared.session();
    let mut payloads = Vec::with_capacity(plan.len());
    for item in session.submit(&plan) {
        let frame_payload = result_payload(item.index, &item.outcome);
        send(writer, FrameKind::Result, &frame_payload)?;
        payloads.push(frame_payload);
    }
    let jobs = payloads.len();
    shared.memo_store(&key, &plan, payloads);
    send(writer, FrameKind::Done, &done_payload(jobs, false))
}

fn send(writer: &mut BufWriter<TcpStream>, kind: FrameKind, payload: &str) -> std::io::Result<()> {
    writer.write_all(encode_frame(kind, payload).as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Binds per `config`, prints the bound address to stderr, and serves
/// forever (the `Ok` arm is never reached). This is the entry point the
/// `experiments serve` command uses.
///
/// # Errors
///
/// Fails if the address cannot be bound.
pub fn serve(config: &ServeConfig, store: TraceStore, options: ExecOptions) -> std::io::Result<()> {
    let server = SweepServer::bind(config, store, options)?;
    eprintln!(
        "tlabp-serve: listening on {} (backend {})",
        server.local_addr()?,
        server.backend.name()
    );
    server.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_tokens_round_trip_and_garbage_falls_back() {
        for backend in
            [ServeBackend::Auto, ServeBackend::Epoll, ServeBackend::Poll, ServeBackend::Threaded]
        {
            assert_eq!(ServeBackend::try_parse(backend.name()), Ok(backend));
            assert_eq!(ServeBackend::parse(backend.name()), backend);
        }
        assert_eq!(ServeBackend::try_parse(" EPOLL "), Ok(ServeBackend::Epoll));
        assert_eq!(ServeBackend::try_parse("kqueue"), Err("kqueue".to_owned()));
        assert_eq!(ServeBackend::parse("kqueue"), ServeBackend::Auto, "garbage falls back");
    }

    #[test]
    fn numeric_knobs_warn_and_fall_back_on_garbage() {
        assert_eq!(parse_usize_env(SERVE_MEMO_BYTES_ENV, "1048576"), Some(1 << 20));
        assert_eq!(parse_usize_env(SERVE_MEMO_BYTES_ENV, " 42 "), Some(42));
        assert_eq!(parse_usize_env(SERVE_MEMO_BYTES_ENV, "64MiB"), None, "units are garbage");
        assert_eq!(parse_usize_env(SERVE_MEMO_BYTES_ENV, "-1"), None);

        assert_eq!(parse_window_env("8"), Some(8));
        assert_eq!(parse_window_env("0"), None, "zero window means session default");
        assert_eq!(parse_window_env("lots"), None);

        assert_eq!(parse_inflight_env("2"), Some(2));
        assert_eq!(parse_inflight_env("0"), Some(DEFAULT_INFLIGHT), "zero admits nothing");
        assert_eq!(parse_inflight_env("∞"), None);
    }

    #[test]
    fn memo_dir_mode_distinguishes_off_from_a_directory() {
        assert_eq!(MemoDirMode::from_raw(""), MemoDirMode::Off);
        assert_eq!(MemoDirMode::from_raw("/tmp/x"), MemoDirMode::Dir(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn unregistered_custom_predictors_are_rejected_before_lowering() {
        use tlabp_workloads::Benchmark;
        let li = Benchmark::by_name("li").expect("li exists");
        let bad: Plan = [tlabp_sim::plan::Job::custom("no-such-predictor-registered", li)]
            .into_iter()
            .collect();
        let message = validate_plan(&bad).expect_err("unknown custom name must be rejected");
        assert!(message.contains("no-such-predictor-registered"), "message names the predictor");
        let good: Plan =
            [tlabp_sim::plan::Job::scheme(tlabp_core::config::SchemeConfig::btfn(), li)]
                .into_iter()
                .collect();
        assert_eq!(validate_plan(&good), Ok(()));
    }
}
