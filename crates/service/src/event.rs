//! Event-driven connection core: every client served from a fixed set
//! of threads.
//!
//! The thread-per-connection loop the daemon started with costs one OS
//! thread per client — fine for a handful of interactive sessions,
//! hostile to hundreds of sweep clients. This module replaces it with a
//! readiness loop:
//!
//! * **One I/O thread** runs a level-triggered [`Poller`] — `epoll` on
//!   Linux, portable `poll(2)` everywhere else on unix — over the
//!   listener, a self-pipe waker, and every client socket, all
//!   nonblocking. The two syscall shims are the only unsafe code in the
//!   crate, confined to the `sys` module.
//! * **Per-connection state machines** ([`Conn`]) reassemble frames
//!   from arbitrarily fragmented reads
//!   ([`FrameAssembler`](crate::proto::FrameAssembler), hard-capped at
//!   [`MAX_FRAME_BYTES`] per frame) and stage responses through a
//!   bounded output buffer: response bytes stop being generated past
//!   [`OUT_HIGH`] until the socket drains, so a slow reader holds
//!   buffers, not threads.
//! * **A small executor pool** (sized off the global
//!   [`SweepPool`](tlabp_sim::SweepPool)) runs admitted plans through
//!   [`Session`](tlabp_sim::Session) streams and hands finished frames
//!   back over a bounded channel, nudging the I/O thread through the
//!   waker. The channel bound is end-to-end backpressure: a client that
//!   stops reading eventually blocks only its own plan's producer.
//! * **Admission control**: at most `inflight` plans per connection
//!   execute concurrently; further pipelined plans wait in FIFO order
//!   and are (re)checked against the memo tier at admission, so a
//!   duplicate computed meanwhile is served for free. Responses always
//!   leave in request order.
//!
//! The accept loop survives resource exhaustion: a failing `accept`
//! (EMFILE and friends) suspends the listener with exponential backoff
//! ([`next_backoff`]) instead of spinning hot, counts the error, and
//! resumes serving established connections meanwhile.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tlabp_sim::plan::Plan;

use crate::memo::MemoEntry;
use crate::proto::FrameAssembler;
use crate::proto::{
    decode_frame, done_payload, encode_frame, error_payload, result_payload, FrameKind,
};
use crate::server::{validate_plan, Shared};

/// Hard cap on one frame line; a client that streams bytes without a
/// newline is cut off here rather than growing the reassembly buffer
/// without bound.
pub(crate) const MAX_FRAME_BYTES: usize = 8 << 20;
/// Stop generating response bytes for a connection whose unsent output
/// exceeds this; generation resumes as the socket drains.
const OUT_HIGH: usize = 256 << 10;
/// Bound of the per-plan frame channel between an executor and the I/O
/// thread — the backpressure window of one in-flight response.
const RESPONSE_WINDOW_FRAMES: usize = 64;
/// Stop reading from a connection with this many responses pending
/// (admitted or queued); reads resume as responses complete.
const MAX_PIPELINE: usize = 1024;
/// Read syscall chunk size.
const READ_CHUNK: usize = 64 << 10;
/// First delay after a failed `accept`.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Ceiling of the accept backoff schedule.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);
/// How often the daemon considers printing its one-line stats summary.
const STATS_PERIOD: Duration = Duration::from_secs(60);

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_FIRST_CONN: usize = 2;

/// The accept backoff schedule: double per consecutive failure,
/// saturating at [`ACCEPT_BACKOFF_MAX`].
fn next_backoff(current: Duration) -> Duration {
    current.saturating_mul(2).min(ACCEPT_BACKOFF_MAX)
}

// ---------------------------------------------------------------------
// Raw readiness syscalls. std exposes no readiness API and external
// crates are off the table, so `epoll`/`poll` are declared against the
// libc std already links. This module is the crate's entire unsafe
// surface; everything above it is safe Rust over `RawFd`s owned by std
// types.
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_short, c_ulong};
    use std::io;
    use std::os::unix::io::RawFd;

    pub(super) const POLLIN: c_short = 0x001;
    pub(super) const POLLOUT: c_short = 0x004;
    pub(super) const POLLERR: c_short = 0x008;
    pub(super) const POLLHUP: c_short = 0x010;
    pub(super) const POLLNVAL: c_short = 0x020;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub(super) struct PollFd {
        pub(super) fd: c_int,
        pub(super) events: c_short,
        pub(super) revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks in `poll(2)`; `timeout_ms < 0` blocks indefinitely.
    /// Returns the number of entries with nonzero `revents` (0 on
    /// timeout or EINTR).
    pub(super) fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd values for the duration of the call, and
        // `nfds` is its exact length.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }

    #[cfg(target_os = "linux")]
    pub(super) mod epoll {
        use super::{c_int, io, RawFd};

        pub(crate) const EPOLLIN: u32 = 0x001;
        pub(crate) const EPOLLOUT: u32 = 0x004;
        pub(crate) const EPOLLERR: u32 = 0x008;
        pub(crate) const EPOLLHUP: u32 = 0x010;
        const EPOLL_CTL_ADD: c_int = 1;
        const EPOLL_CTL_DEL: c_int = 2;
        const EPOLL_CTL_MOD: c_int = 3;
        const EPOLL_CLOEXEC: c_int = 0o200_0000;

        /// `struct epoll_event`; packed on x86-64, where the kernel ABI
        /// leaves the u64 payload unaligned.
        #[derive(Debug, Clone, Copy)]
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        pub(crate) struct Event {
            pub(crate) events: u32,
            pub(crate) data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut Event) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut Event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        /// An owned epoll instance; the fd is closed on drop.
        #[derive(Debug)]
        pub(crate) struct Epoll {
            epfd: RawFd,
        }

        impl Epoll {
            pub(crate) fn new() -> io::Result<Epoll> {
                // SAFETY: epoll_create1 takes no pointers.
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(Epoll { epfd })
            }

            fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
                let mut event = Event { events, data };
                // SAFETY: `event` outlives the call (the kernel copies
                // it) and is ignored for EPOLL_CTL_DEL.
                let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }

            pub(crate) fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, events, data)
            }

            pub(crate) fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, events, data)
            }

            pub(crate) fn del(&self, fd: RawFd) -> io::Result<()> {
                self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
            }

            /// Waits for readiness; `timeout_ms < 0` blocks. Returns how
            /// many entries of `buf` were filled (0 on timeout or EINTR).
            pub(crate) fn wait(&self, buf: &mut [Event], timeout_ms: c_int) -> io::Result<usize> {
                // SAFETY: `buf` is a valid exclusively borrowed slice;
                // maxevents is its exact length (nonzero by the caller).
                let rc = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                Ok(rc as usize)
            }
        }

        impl Drop for Epoll {
            fn drop(&mut self) {
                // SAFETY: `epfd` is owned by this instance and closed
                // exactly once.
                unsafe {
                    close(self.epfd);
                }
            }
        }
    }
}

/// Which readiness mechanism a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PollerBackend {
    /// Linux `epoll` — O(ready) wakeups.
    Epoll,
    /// Portable `poll(2)` — O(registered) per wait, fine for hundreds
    /// of fds, available on every unix.
    Poll,
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Readiness {
    pub(crate) token: usize,
    pub(crate) readable: bool,
    pub(crate) writable: bool,
    /// Error or hangup; the owner should attempt I/O and observe the
    /// failure there.
    pub(crate) error: bool,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    fd: RawFd,
    token: usize,
    read: bool,
    write: bool,
}

#[derive(Debug)]
enum PollerImp {
    #[cfg(target_os = "linux")]
    Epoll {
        epoll: sys::epoll::Epoll,
        buf: Vec<sys::epoll::Event>,
        registered: usize,
    },
    Poll {
        interest: Vec<Slot>,
        fds: Vec<sys::PollFd>,
    },
}

/// Level-triggered readiness over raw fds, keyed by caller tokens.
#[derive(Debug)]
pub(crate) struct Poller {
    imp: PollerImp,
}

impl Poller {
    /// Opens a poller. Asking for [`PollerBackend::Epoll`] off Linux
    /// (or when `epoll_create1` fails) falls back to `poll` with a
    /// warning rather than erroring: the two are behaviorally
    /// interchangeable here.
    pub(crate) fn new(backend: PollerBackend) -> Poller {
        #[cfg(target_os = "linux")]
        if backend == PollerBackend::Epoll {
            match sys::epoll::Epoll::new() {
                Ok(epoll) => {
                    return Poller {
                        imp: PollerImp::Epoll { epoll, buf: Vec::new(), registered: 0 },
                    }
                }
                Err(err) => {
                    eprintln!("tlabp-serve: epoll unavailable ({err}); falling back to poll");
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        if backend == PollerBackend::Epoll {
            eprintln!("tlabp-serve: epoll is Linux-only; falling back to poll");
        }
        Poller { imp: PollerImp::Poll { interest: Vec::new(), fds: Vec::new() } }
    }

    /// The backend actually in use (after any fallback).
    pub(crate) fn backend(&self) -> PollerBackend {
        match self.imp {
            #[cfg(target_os = "linux")]
            PollerImp::Epoll { .. } => PollerBackend::Epoll,
            PollerImp::Poll { .. } => PollerBackend::Poll,
        }
    }

    fn backend_name(&self) -> &'static str {
        match self.backend() {
            PollerBackend::Epoll => "epoll",
            PollerBackend::Poll => "poll",
        }
    }

    pub(crate) fn register(
        &mut self,
        fd: RawFd,
        token: usize,
        read: bool,
        write: bool,
    ) -> std::io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            PollerImp::Epoll { epoll, registered, .. } => {
                epoll.add(fd, epoll_mask(read, write), token as u64)?;
                *registered += 1;
                Ok(())
            }
            PollerImp::Poll { interest, .. } => {
                interest.retain(|slot| slot.fd != fd);
                interest.push(Slot { fd, token, read, write });
                Ok(())
            }
        }
    }

    pub(crate) fn reregister(
        &mut self,
        fd: RawFd,
        token: usize,
        read: bool,
        write: bool,
    ) -> std::io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            PollerImp::Epoll { epoll, .. } => {
                epoll.modify(fd, epoll_mask(read, write), token as u64)
            }
            PollerImp::Poll { interest, .. } => {
                for slot in interest.iter_mut() {
                    if slot.fd == fd {
                        slot.token = token;
                        slot.read = read;
                        slot.write = write;
                        return Ok(());
                    }
                }
                interest.push(Slot { fd, token, read, write });
                Ok(())
            }
        }
    }

    pub(crate) fn deregister(&mut self, fd: RawFd) -> std::io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            PollerImp::Epoll { epoll, registered, .. } => {
                *registered = registered.saturating_sub(1);
                epoll.del(fd)
            }
            PollerImp::Poll { interest, .. } => {
                interest.retain(|slot| slot.fd != fd);
                Ok(())
            }
        }
    }

    /// Waits for readiness, clearing and filling `out`. `None` blocks
    /// indefinitely. EINTR and timeouts return an empty `out`.
    pub(crate) fn wait(
        &mut self,
        out: &mut Vec<Readiness>,
        timeout: Option<Duration>,
    ) -> std::io::Result<()> {
        out.clear();
        let timeout_ms =
            timeout.map_or(-1i32, |d| i32::try_from(d.as_millis()).unwrap_or(i32::MAX));
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            PollerImp::Epoll { epoll, buf, registered } => {
                buf.resize((*registered).max(16), sys::epoll::Event { events: 0, data: 0 });
                let n = epoll.wait(buf, timeout_ms)?;
                for ev in &buf[..n] {
                    let events = ev.events;
                    let data = ev.data;
                    out.push(Readiness {
                        token: data as usize,
                        readable: events & sys::epoll::EPOLLIN != 0,
                        writable: events & sys::epoll::EPOLLOUT != 0,
                        error: events & (sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            PollerImp::Poll { interest, fds } => {
                fds.clear();
                fds.extend(interest.iter().map(|slot| sys::PollFd {
                    fd: slot.fd,
                    events: if slot.read { sys::POLLIN } else { 0 }
                        | if slot.write { sys::POLLOUT } else { 0 },
                    revents: 0,
                }));
                let n = sys::poll_fds(fds, timeout_ms)?;
                if n > 0 {
                    for (slot, fd) in interest.iter().zip(fds.iter()) {
                        if fd.revents != 0 {
                            out.push(Readiness {
                                token: slot.token,
                                readable: fd.revents & sys::POLLIN != 0,
                                writable: fd.revents & sys::POLLOUT != 0,
                                error: fd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                                    != 0,
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(read: bool, write: bool) -> u32 {
    (if read { sys::epoll::EPOLLIN } else { 0 }) | (if write { sys::epoll::EPOLLOUT } else { 0 })
}

/// The I/O thread's end of the self-pipe: a nonblocking socketpair
/// registered under [`TOKEN_WAKER`].
#[derive(Debug)]
struct Waker {
    rx: UnixStream,
    tx: Arc<UnixStream>,
}

impl Waker {
    fn new() -> std::io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { rx, tx: Arc::new(tx) })
    }

    fn handle(&self) -> WakeHandle {
        WakeHandle { tx: Arc::clone(&self.tx) }
    }

    fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Swallows all pending wake bytes (many wakes coalesce into one
    /// loop iteration).
    fn drain(&mut self) {
        let mut buf = [0u8; 256];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Executor-side handle: nudges the I/O thread out of its wait.
#[derive(Debug, Clone)]
struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl WakeHandle {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; errors are
        // deliberately ignored.
        let _ = (&*self.tx).write(&[1]);
    }
}

/// One admitted plan handed to the executor pool.
struct ExecJob {
    key: String,
    plan: Plan,
    reply: SyncSender<OutEvent>,
}

/// What an executor streams back to the I/O thread.
enum OutEvent {
    /// One pre-encoded `result` frame payload, in plan order.
    Frame(String),
    /// The response is complete.
    Done { jobs: usize, memo: bool },
}

/// Executor thread body: pull admitted plans, stream frames back.
/// Exits when the I/O thread (the only job sender) goes away.
fn exec_worker(shared: &Shared, jobs: &Mutex<Receiver<ExecJob>>, waker: &WakeHandle) {
    loop {
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        // Recheck the memo tier: an identical plan may have completed
        // while this one waited in the executor queue.
        if let Some(entry) = shared.memo_get(&job.key) {
            shared.stats.memo_hit();
            let total = entry.len();
            let replayed =
                entry.iter().all(|frame| job.reply.send(OutEvent::Frame(frame.clone())).is_ok());
            if replayed {
                let _ = job.reply.send(OutEvent::Done { jobs: total, memo: true });
            }
            waker.wake();
            continue;
        }
        let session = shared.session();
        let mut payloads = Vec::with_capacity(job.plan.len());
        let complete = session.submit(&job.plan).drain_while(|item| {
            let payload = result_payload(item.index, &item.outcome);
            // A send failure means the connection is gone; abandoning
            // the stream mid-plan is safe (remaining jobs are dropped).
            let sent = job.reply.send(OutEvent::Frame(payload.clone())).is_ok();
            waker.wake();
            payloads.push(payload);
            sent
        });
        if complete {
            let total = payloads.len();
            shared.memo_store(&job.key, &job.plan, payloads);
            let _ = job.reply.send(OutEvent::Done { jobs: total, memo: false });
            waker.wake();
        }
    }
}

/// One response owed to a client, in request order.
enum Resp {
    /// Parsed and validated, waiting for an admission slot.
    Queued { key: String, plan: Box<Plan> },
    /// Executing; frames arrive over the bounded channel.
    Live { rx: Receiver<OutEvent> },
    /// A memo hit replaying pre-encoded frames.
    Memo { entry: MemoEntry, next: usize },
    /// An `error` frame; `fatal` closes the connection after it flushes.
    Fail { message: String, fatal: bool },
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    peer: String,
    assembler: FrameAssembler,
    /// Staged output bytes; `out[out_pos..]` is unsent.
    out: Vec<u8>,
    out_pos: usize,
    /// Responses owed, FIFO.
    responses: VecDeque<Resp>,
    /// How many of `responses` are currently `Live`.
    live: usize,
    read_closed: bool,
    /// A fatal error frame has been staged; close once flushed.
    closing: bool,
    want_read: bool,
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer: String) -> Conn {
        Conn {
            stream,
            peer,
            assembler: FrameAssembler::new(MAX_FRAME_BYTES),
            out: Vec::new(),
            out_pos: 0,
            responses: VecDeque::new(),
            live: 0,
            read_closed: false,
            closing: false,
            want_read: true,
            want_write: false,
        }
    }

    fn unsent(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

fn append_frame(out: &mut Vec<u8>, kind: FrameKind, payload: &str) {
    out.extend_from_slice(encode_frame(kind, payload).as_bytes());
    out.push(b'\n');
}

/// Drains the socket until `WouldBlock`/EOF, reassembling and handling
/// every completed frame. Returns `false` when the connection died.
fn handle_readable(
    conn: &mut Conn,
    shared: &Shared,
    job_tx: &Sender<ExecJob>,
    inflight: usize,
) -> bool {
    let mut buf = [0u8; READ_CHUNK];
    loop {
        if conn.read_closed || conn.responses.len() >= MAX_PIPELINE {
            return true;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                return true;
            }
            Ok(n) => match conn.assembler.push(&buf[..n]) {
                Ok(lines) => {
                    for line in lines {
                        if line.is_empty() {
                            continue;
                        }
                        handle_frame(conn, &line, shared, job_tx, inflight);
                        if conn.read_closed {
                            return true;
                        }
                    }
                }
                Err(err) => {
                    // Framing is no longer trustworthy: answer with one
                    // error frame, then close after it flushes.
                    eprintln!("tlabp-serve: connection {}: {err}", conn.peer);
                    conn.responses.push_back(Resp::Fail { message: err.to_string(), fatal: true });
                    conn.read_closed = true;
                    return true;
                }
            },
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Handles one complete frame line from a client.
fn handle_frame(
    conn: &mut Conn,
    line: &str,
    shared: &Shared,
    job_tx: &Sender<ExecJob>,
    inflight: usize,
) {
    match decode_frame(line) {
        Ok((FrameKind::Plan, payload)) => submit_plan(conn, payload, shared, job_tx, inflight),
        Ok((kind, _)) => {
            conn.responses.push_back(Resp::Fail {
                message: format!("expected a plan frame, got {kind}"),
                fatal: false,
            });
        }
        Err(err) => {
            eprintln!("tlabp-serve: connection {}: {err}", conn.peer);
            conn.responses.push_back(Resp::Fail { message: err.to_string(), fatal: true });
            conn.read_closed = true;
        }
    }
}

/// Queues one plan request: memo fast path, then parse/validate, then
/// admission.
fn submit_plan(
    conn: &mut Conn,
    payload: &str,
    shared: &Shared,
    job_tx: &Sender<ExecJob>,
    inflight: usize,
) {
    shared.stats.plan();
    // Fast path: conforming clients send the canonical plan JSON, which
    // is exactly the memo key — a hit costs one map probe and zero
    // parsing.
    if let Some(entry) = shared.memo_get(payload) {
        shared.stats.memo_hit();
        conn.responses.push_back(Resp::Memo { entry, next: 0 });
        return;
    }
    let plan = match Plan::from_json_str(payload) {
        Ok(plan) => plan,
        Err(err) => {
            conn.responses.push_back(Resp::Fail { message: err.to_string(), fatal: false });
            return;
        }
    };
    if let Err(message) = validate_plan(&plan) {
        conn.responses.push_back(Resp::Fail { message, fatal: false });
        return;
    }
    let key = plan.to_json_string();
    if key != payload {
        // Non-canonical encoding of a known plan: still a hit.
        if let Some(entry) = shared.memo_get(&key) {
            shared.stats.memo_hit();
            conn.responses.push_back(Resp::Memo { entry, next: 0 });
            return;
        }
    }
    conn.responses.push_back(Resp::Queued { key, plan: Box::new(plan) });
    admit(conn, shared, job_tx, inflight);
}

/// Converts queued plans to live executions, FIFO, up to the
/// per-connection in-flight cap. Plans memoized since they queued are
/// converted to free memo replays instead (and don't consume a slot).
fn admit(conn: &mut Conn, shared: &Shared, job_tx: &Sender<ExecJob>, inflight: usize) {
    for resp in conn.responses.iter_mut() {
        if conn.live >= inflight {
            return;
        }
        if let Resp::Queued { key, plan } = resp {
            if let Some(entry) = shared.memo_get(key) {
                shared.stats.memo_hit();
                *resp = Resp::Memo { entry, next: 0 };
                continue;
            }
            let (tx, rx) = mpsc::sync_channel(RESPONSE_WINDOW_FRAMES);
            let job = ExecJob {
                key: std::mem::take(key),
                plan: *std::mem::replace(plan, Box::new(Plan::new())),
                reply: tx,
            };
            if job_tx.send(job).is_ok() {
                *resp = Resp::Live { rx };
                conn.live += 1;
            } else {
                *resp =
                    Resp::Fail { message: "execution workers unavailable".to_owned(), fatal: true };
            }
        }
    }
}

/// Moves completed response data into the output buffer (bounded by
/// [`OUT_HIGH`]) and re-admits queued plans as slots free up. Responses
/// leave strictly in request order.
fn pump(conn: &mut Conn, shared: &Shared, job_tx: &Sender<ExecJob>, inflight: usize) {
    loop {
        let before = (conn.out.len(), conn.responses.len(), conn.live);
        fill_out(conn);
        admit(conn, shared, job_tx, inflight);
        if (conn.out.len(), conn.responses.len(), conn.live) == before {
            return;
        }
    }
}

fn fill_out(conn: &mut Conn) {
    let Conn { out, out_pos, responses, live, closing, .. } = conn;
    while !*closing && out.len() - *out_pos < OUT_HIGH {
        let Some(front) = responses.front_mut() else { break };
        let pop = match front {
            Resp::Queued { .. } => break,
            Resp::Memo { entry, next } => {
                if *next < entry.len() {
                    append_frame(out, FrameKind::Result, &entry[*next]);
                    *next += 1;
                    false
                } else {
                    append_frame(out, FrameKind::Done, &done_payload(entry.len(), true));
                    true
                }
            }
            Resp::Live { rx } => match rx.try_recv() {
                Ok(OutEvent::Frame(payload)) => {
                    append_frame(out, FrameKind::Result, &payload);
                    false
                }
                Ok(OutEvent::Done { jobs, memo }) => {
                    append_frame(out, FrameKind::Done, &done_payload(jobs, memo));
                    *live -= 1;
                    true
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    // The executor died mid-plan (it never disconnects
                    // before `Done` otherwise): report and close.
                    append_frame(
                        out,
                        FrameKind::Error,
                        &error_payload("execution aborted on the server"),
                    );
                    *live -= 1;
                    *closing = true;
                    true
                }
            },
            Resp::Fail { message, fatal } => {
                append_frame(out, FrameKind::Error, &error_payload(message));
                if *fatal {
                    *closing = true;
                }
                true
            }
        };
        if pop {
            responses.pop_front();
        }
    }
}

/// Writes as much staged output as the socket accepts. Returns `false`
/// when the connection died.
fn write_out(conn: &mut Conn) -> bool {
    loop {
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            return true;
        }
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.out_pos += n,
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                // Reclaim the sent prefix so the buffer stays bounded by
                // unsent bytes, not lifetime traffic.
                if conn.out_pos > 0 {
                    conn.out.drain(..conn.out_pos);
                    conn.out_pos = 0;
                }
                return true;
            }
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

fn should_close(conn: &Conn) -> bool {
    let flushed = conn.unsent() == 0;
    flushed && (conn.closing || (conn.read_closed && conn.responses.is_empty()))
}

fn update_interest(conn: &mut Conn, poller: &mut Poller, token: usize) -> std::io::Result<()> {
    let want_read = !conn.read_closed && !conn.closing && conn.responses.len() < MAX_PIPELINE;
    let want_write = conn.unsent() > 0;
    if want_read != conn.want_read || want_write != conn.want_write {
        conn.want_read = want_read;
        conn.want_write = want_write;
        poller.reregister(conn.stream.as_raw_fd(), token, want_read, want_write)?;
    }
    Ok(())
}

/// Event-core knobs resolved by the server from its [`ServeConfig`]
/// (see [`crate::server::ServeConfig`]).
pub(crate) struct EventConfig {
    pub(crate) backend: PollerBackend,
    /// Per-connection concurrent-plan cap (`TLABP_SERVE_INFLIGHT`).
    pub(crate) inflight: usize,
    /// Executor pool size.
    pub(crate) exec_threads: usize,
}

/// Runs the event-driven accept-and-serve loop forever. The fixed
/// thread budget is `1` (this I/O thread) `+ exec_threads`, independent
/// of the number of connections.
pub(crate) fn run(listener: &TcpListener, shared: &Arc<Shared>, config: &EventConfig) -> ! {
    listener.set_nonblocking(true).expect("nonblocking listener");
    let mut poller = Poller::new(config.backend);
    let mut waker = Waker::new().expect("waker socketpair");

    let (job_tx, job_rx) = mpsc::channel::<ExecJob>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    for n in 0..config.exec_threads.max(1) {
        let shared = Arc::clone(shared);
        let job_rx = Arc::clone(&job_rx);
        let handle = waker.handle();
        std::thread::Builder::new()
            .name(format!("tlabp-exec-{n}"))
            .spawn(move || exec_worker(&shared, &job_rx, &handle))
            .expect("spawn executor thread");
    }

    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false).expect("register listener");
    poller.register(waker.fd(), TOKEN_WAKER, true, false).expect("register waker");

    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut backoff = ACCEPT_BACKOFF_MIN;
    let mut accept_resume: Option<Instant> = None;
    let mut events: Vec<Readiness> = Vec::new();
    let mut dead: Vec<usize> = Vec::new();
    let mut last_stats = Instant::now();
    let mut last_stats_line = String::new();

    loop {
        let timeout = accept_resume.map(|at| at.saturating_duration_since(Instant::now()));
        if let Err(err) = poller.wait(&mut events, timeout) {
            eprintln!("tlabp-serve: poller wait failed: {err}");
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }

        let mut accept_ready = false;
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => accept_ready = true,
                TOKEN_WAKER => waker.drain(),
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if (ev.readable || ev.error)
                            && !handle_readable(conn, shared, &job_tx, config.inflight)
                        {
                            dead.push(token);
                        }
                        let _ = ev.writable; // flushed in the pump pass below
                    }
                }
            }
        }

        // Resume a backed-off listener once its deadline passes.
        if accept_resume.is_some_and(|at| Instant::now() >= at) {
            accept_resume = None;
            if poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false).is_ok() {
                accept_ready = true;
            } else {
                accept_resume = Some(Instant::now() + backoff);
            }
        }

        if accept_ready && accept_resume.is_none() {
            loop {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        backoff = ACCEPT_BACKOFF_MIN;
                        shared.stats.accept();
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let token = next_token;
                        next_token += 1;
                        if poller.register(stream.as_raw_fd(), token, true, false).is_ok() {
                            conns.insert(token, Conn::new(stream, peer.to_string()));
                        }
                    }
                    Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(err) => {
                        // EMFILE and friends: back off instead of
                        // spinning hot, keep serving existing clients.
                        shared.stats.accept_error();
                        eprintln!(
                            "tlabp-serve: accept failed: {err}; pausing accepts for {backoff:?}"
                        );
                        let _ = poller.deregister(listener.as_raw_fd());
                        accept_resume = Some(Instant::now() + backoff);
                        backoff = next_backoff(backoff);
                        break;
                    }
                }
            }
        }

        // Pump every connection: completed frames may belong to any of
        // them (the waker doesn't say which), and flushing below
        // OUT_HIGH may unblock more generation.
        for (&token, conn) in &mut conns {
            pump(conn, shared, &job_tx, config.inflight);
            if !write_out(conn) {
                dead.push(token);
                continue;
            }
            pump(conn, shared, &job_tx, config.inflight);
            if !write_out(conn) || should_close(conn) {
                dead.push(token);
                continue;
            }
            if update_interest(conn, &mut poller, token).is_err() {
                dead.push(token);
            }
        }
        for token in dead.drain(..) {
            if let Some(conn) = conns.remove(&token) {
                let _ = poller.deregister(conn.stream.as_raw_fd());
                drop(conn); // dropping the stream closes the socket and
                            // unblocks any executor mid-plan
            }
        }

        if last_stats.elapsed() >= STATS_PERIOD {
            last_stats = Instant::now();
            let line = shared.stats_line(conns.len(), poller.backend_name());
            if line != last_stats_line {
                eprintln!("tlabp-serve: {line}");
                last_stats_line = line;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut delay = ACCEPT_BACKOFF_MIN;
        let mut schedule = Vec::new();
        for _ in 0..10 {
            schedule.push(delay.as_millis());
            delay = next_backoff(delay);
        }
        assert_eq!(schedule[..8], [10, 20, 40, 80, 160, 320, 640, 1000]);
        assert_eq!(delay, ACCEPT_BACKOFF_MAX, "the schedule saturates at the max");
    }

    fn backends() -> Vec<PollerBackend> {
        let mut backends = vec![PollerBackend::Poll];
        if cfg!(target_os = "linux") {
            backends.push(PollerBackend::Epoll);
        }
        backends
    }

    #[test]
    fn poller_reports_listener_and_connection_readiness() {
        for backend in backends() {
            let mut poller = Poller::new(backend);
            assert_eq!(poller.backend(), backend, "no fallback expected on this host");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).expect("nonblocking");
            poller.register(listener.as_raw_fd(), 7, true, false).expect("register");

            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
            assert!(events.is_empty(), "{backend:?}: nothing is ready before a client connects");

            let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
            poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert!(
                events.iter().any(|ev| ev.token == 7 && ev.readable),
                "{backend:?}: pending accept must report the listener readable"
            );

            // A connected socket with write interest is writable at once.
            client.set_nonblocking(true).expect("nonblocking client");
            poller.register(client.as_raw_fd(), 9, false, true).expect("register client");
            poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert!(
                events.iter().any(|ev| ev.token == 9 && ev.writable),
                "{backend:?}: an idle connected socket must be writable"
            );
            poller.deregister(client.as_raw_fd()).expect("deregister");
            poller.deregister(listener.as_raw_fd()).expect("deregister listener");
        }
    }

    #[test]
    fn waker_unblocks_a_waiting_poller() {
        for backend in backends() {
            let mut poller = Poller::new(backend);
            let mut waker = Waker::new().expect("waker");
            poller.register(waker.fd(), TOKEN_WAKER, true, false).expect("register");
            let handle = waker.handle();
            let waking = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                handle.wake();
            });
            let mut events = Vec::new();
            let start = Instant::now();
            poller.wait(&mut events, Some(Duration::from_secs(10))).expect("wait");
            assert!(
                events.iter().any(|ev| ev.token == TOKEN_WAKER && ev.readable),
                "{backend:?}: the wake byte must surface as waker readability"
            );
            assert!(start.elapsed() < Duration::from_secs(5), "woken, not timed out");
            waker.drain();
            // Coalesced wakes drain to quiescence: the next wait times out.
            poller.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
            assert!(events.is_empty(), "{backend:?}: drained waker is quiet");
            waking.join().expect("waker thread");
        }
    }
}
