//! # Sweep-as-a-service daemon
//!
//! A thin network layer over the simulator's session-oriented streaming
//! core ([`tlabp_sim::Session`]): clients serialize a
//! [`Plan`](tlabp_sim::plan::Plan) onto a line-delimited, checksummed
//! wire protocol ([`proto`]) and receive result frames streamed back in
//! plan order as jobs finish, followed by a terminal `done` frame.
//!
//! * [`proto`] — the frame format: `TLBS <version> <kind> <len>
//!   <payload> <checksum>`, versioned and checksummed like the v2 trace
//!   artifact container, with a precise rejection taxonomy
//!   ([`proto::FrameError`]), plus the byte-stream reassembly state
//!   machine ([`proto::FrameAssembler`]) the event-driven core reads
//!   through.
//! * [`server`] — [`server::SweepServer`]: one warm
//!   [`TraceStore`](tlabp_sim::TraceStore) and the global worker pool
//!   shared across all connections. The default backend is an
//!   event-driven readiness loop ([`event`], epoll on Linux with a
//!   portable `poll` fallback) that serves every connection from a
//!   fixed set of threads, with per-client admission control
//!   (`TLABP_SERVE_INFLIGHT` plans in flight per connection, FIFO
//!   beyond) and bounded per-connection output queues; the original
//!   thread-per-connection loop survives as the `threaded` backend for
//!   non-unix hosts and as the benchmark baseline.
//! * memo tiers — a byte-capped LRU (`TLABP_SERVE_MEMO_BYTES`) of
//!   pre-encoded response frames replayed byte-for-byte with zero
//!   simulation work, persisted as checksummed memo artifacts next to
//!   the trace artifacts and re-hydrated on daemon start, so a
//!   restarted daemon still answers previously-seen plans without
//!   simulating.
//! * [`client`] — [`client::Client`]: submit plans, iterate streamed
//!   outcomes, or drain a whole response into a
//!   [`ResultSet`](tlabp_sim::ResultSet) bit-identical to an in-process
//!   `execute` of the same plan.
//!
//! Unsafe code is confined to the raw `epoll`/`poll` syscall shim in
//! [`event`]; every other module keeps the workspace-wide
//! `deny(unsafe_code)` discipline.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
#[cfg(unix)]
pub mod event;
mod memo;
pub mod proto;
pub mod server;

pub use client::{Client, ResultStream};
pub use proto::{Done, FrameError, FrameKind, PROTOCOL_VERSION};
pub use server::{
    serve, MemoDirMode, ServeBackend, ServeConfig, SweepServer, DEFAULT_INFLIGHT,
    DEFAULT_MEMO_BYTES, DEFAULT_SERVE_ADDR, SERVE_ADDR_ENV, SERVE_BACKEND_ENV, SERVE_INFLIGHT_ENV,
    SERVE_MEMO_BYTES_ENV, SERVE_MEMO_DIR_ENV, SERVE_MEMO_DISK_BYTES_ENV, SERVE_WINDOW_ENV,
};
