//! # Sweep-as-a-service daemon
//!
//! A thin network layer over the simulator's session-oriented streaming
//! core ([`tlabp_sim::Session`]): clients serialize a
//! [`Plan`](tlabp_sim::plan::Plan) onto a line-delimited, checksummed
//! wire protocol ([`proto`]) and receive result frames streamed back in
//! plan order as jobs finish, followed by a terminal `done` frame.
//!
//! * [`proto`] — the frame format: `TLBS <version> <kind> <len>
//!   <payload> <checksum>`, versioned and checksummed like the v2 trace
//!   artifact container, with a precise rejection taxonomy
//!   ([`proto::FrameError`]).
//! * [`server`] — [`server::SweepServer`]: one warm
//!   [`TraceStore`](tlabp_sim::TraceStore) and the global worker pool
//!   shared across all connections (fair admission: concurrent clients
//!   interleave on the same workers in bounded windows), plus a memo
//!   cache keyed by canonical plan JSON that replays previous responses
//!   byte-for-byte with zero simulation work.
//! * [`client`] — [`client::Client`]: submit plans, iterate streamed
//!   outcomes, or drain a whole response into a
//!   [`ResultSet`](tlabp_sim::ResultSet) bit-identical to an in-process
//!   `execute` of the same plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ResultStream};
pub use proto::{Done, FrameError, FrameKind, PROTOCOL_VERSION};
pub use server::{
    serve, ServeConfig, SweepServer, DEFAULT_MEMO_CAP, DEFAULT_SERVE_ADDR, SERVE_ADDR_ENV,
    SERVE_MEMO_ENV, SERVE_WINDOW_ENV,
};
