//! The line-delimited wire protocol of the sweep service.
//!
//! Every message is one **frame**, one line:
//!
//! ```text
//! TLBS <version> <kind> <len> <payload> <checksum>\n
//! ```
//!
//! * `TLBS` — frame magic (the service sibling of the artifact
//!   container's `TLBP`).
//! * `<version>` — decimal [`PROTOCOL_VERSION`]; frames from another
//!   version are rejected, never guessed at.
//! * `<kind>` — [`FrameKind`]: `plan`, `result`, `done` or `error`.
//! * `<len>` — decimal byte length of `<payload>`. The payload is
//!   compact JSON — newline-free by construction but full of spaces
//!   inside string values, so the length (not whitespace splitting)
//!   delimits it.
//! * `<checksum>` — 16 lower-hex digits of
//!   [`tlabp_trace::io::checksum`] over the payload bytes, the same
//!   fx-fold the v2 artifact container uses per section. A flipped bit
//!   anywhere in the payload fails decode.
//!
//! Payloads by kind:
//!
//! * `plan` — a serialized [`Plan`](tlabp_sim::plan::Plan)
//!   (`Plan::to_json_string`). Client → server.
//! * `result` — `{"index":N,"outcome":...}`: one job's outcome, streamed
//!   as soon as the engine yields it. Server → client, strictly in plan
//!   order.
//! * `done` — `{"jobs":N,"memo":bool}`: the response is complete; `memo`
//!   reports whether it was served from the memo cache (zero simulation
//!   work). Server → client.
//! * `error` — `{"message":"..."}`: the request failed before or during
//!   streaming. Server → client, terminal for that request.

use std::fmt;

use tlabp_sim::json::{Json, WireError};
use tlabp_sim::JobOutcome;
use tlabp_trace::io::checksum;

/// Version of the frame format; bumped on any incompatible change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame magic, first token of every frame.
pub const FRAME_MAGIC: &str = "TLBS";

/// The message kinds of the protocol (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a serialized plan to execute.
    Plan,
    /// Server → client: one streamed job outcome.
    Result,
    /// Server → client: the response is complete.
    Done,
    /// Server → client: the request failed.
    Error,
}

impl FrameKind {
    /// The kind's wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            FrameKind::Plan => "plan",
            FrameKind::Result => "result",
            FrameKind::Done => "done",
            FrameKind::Error => "error",
        }
    }

    fn from_token(token: &str) -> Option<FrameKind> {
        match token {
            "plan" => Some(FrameKind::Plan),
            "result" => Some(FrameKind::Result),
            "done" => Some(FrameKind::Done),
            "error" => Some(FrameKind::Error),
            _ => None,
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Why a frame failed to decode. Mirrors the artifact container's error
/// taxonomy: every structural violation has its own variant so tests
/// (and logs) can tell truncation from corruption from version skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// The version token is not this build's [`PROTOCOL_VERSION`].
    BadVersion {
        /// What the frame claimed (unparsable text comes through
        /// verbatim).
        found: String,
    },
    /// The kind token is not one of the four known kinds.
    BadKind {
        /// The unrecognized token.
        found: String,
    },
    /// The length token is not a decimal integer.
    BadLength,
    /// The line ends before `<len>` payload bytes plus the checksum.
    Truncated,
    /// The trailing checksum does not match the payload bytes.
    BadChecksum,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "frame does not start with {FRAME_MAGIC}"),
            FrameError::BadVersion { found } => write!(
                f,
                "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
            ),
            FrameError::BadKind { found } => write!(f, "unknown frame kind {found:?}"),
            FrameError::BadLength => write!(f, "frame length is not a decimal integer"),
            FrameError::Truncated => write!(f, "frame is shorter than its declared length"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame (without the trailing newline — writers add it when
/// putting the frame on the wire).
#[must_use]
pub fn encode_frame(kind: FrameKind, payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "payloads are newline-free JSON");
    format!(
        "{FRAME_MAGIC} {PROTOCOL_VERSION} {kind} {len} {payload} {sum:016x}",
        len = payload.len(),
        sum = checksum(payload.as_bytes()),
    )
}

/// Decodes one frame line (trailing `\n`/`\r\n` tolerated) into its kind
/// and payload.
///
/// # Errors
///
/// Returns the specific [`FrameError`] for a bad magic, an unsupported
/// version, an unknown kind, a malformed length, a truncated line, or a
/// checksum mismatch.
pub fn decode_frame(line: &str) -> Result<(FrameKind, &str), FrameError> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let line = line.strip_suffix('\r').unwrap_or(line);

    let rest = line.strip_prefix(FRAME_MAGIC).ok_or(FrameError::BadMagic)?;
    let rest = rest.strip_prefix(' ').ok_or(FrameError::BadMagic)?;

    let (version_token, rest) = rest.split_once(' ').ok_or(FrameError::Truncated)?;
    if version_token.parse::<u16>().ok() != Some(PROTOCOL_VERSION) {
        return Err(FrameError::BadVersion { found: version_token.to_owned() });
    }

    let (kind_token, rest) = rest.split_once(' ').ok_or(FrameError::Truncated)?;
    let kind = FrameKind::from_token(kind_token)
        .ok_or_else(|| FrameError::BadKind { found: kind_token.to_owned() })?;

    let (len_token, rest) = rest.split_once(' ').ok_or(FrameError::Truncated)?;
    let len = len_token.parse::<usize>().map_err(|_| FrameError::BadLength)?;

    // The payload may contain spaces, so slice it by byte length; a
    // single space separates it from the checksum.
    if rest.len() < len + 1 {
        return Err(FrameError::Truncated);
    }
    let (payload, tail) = rest.split_at_checked(len).ok_or(FrameError::Truncated)?;
    let sum_token = tail.strip_prefix(' ').ok_or(FrameError::Truncated)?;
    if sum_token.len() != 16 {
        return Err(FrameError::Truncated);
    }
    let declared = u64::from_str_radix(sum_token, 16).map_err(|_| FrameError::BadChecksum)?;
    if declared != checksum(payload.as_bytes()) {
        return Err(FrameError::BadChecksum);
    }
    Ok((kind, payload))
}

/// Why reassembling frames from a byte stream failed. Both variants are
/// connection-fatal: the stream's framing can no longer be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A line exceeded the reassembler's hard frame-length cap before
    /// (or when) its newline arrived.
    FrameTooLong {
        /// Bytes buffered or received for the offending line so far.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// A completed line was not valid UTF-8 (frames are text by
    /// definition).
    NotUtf8,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::FrameTooLong { len, max } => {
                write!(f, "frame of {len}+ bytes exceeds the {max}-byte cap")
            }
            AssembleError::NotUtf8 => f.write_str("frame is not valid UTF-8"),
        }
    }
}

impl std::error::Error for AssembleError {}

/// Reassembles newline-delimited frame lines from arbitrarily
/// fragmented reads — the receive half of a nonblocking connection.
///
/// [`FrameAssembler::push`] accepts whatever bytes a read returned (a
/// frame may arrive one byte at a time, or many frames in one read) and
/// yields every line completed so far, without its newline, ready for
/// [`decode_frame`]. A partial line is buffered across pushes; the
/// buffered prefix is capped at a hard maximum so a client that never
/// sends a newline cannot grow the buffer without bound.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    max: usize,
}

impl FrameAssembler {
    /// A reassembler capped at `max_frame_len` bytes per line.
    #[must_use]
    pub fn new(max_frame_len: usize) -> FrameAssembler {
        FrameAssembler { buf: Vec::new(), max: max_frame_len }
    }

    /// Bytes currently buffered for the next (incomplete) line.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends `bytes` and returns every line they complete, in order.
    ///
    /// Empty lines are returned too (callers skip them, matching the
    /// blocking reader's behavior).
    ///
    /// # Errors
    ///
    /// [`AssembleError::FrameTooLong`] once a line (complete or still
    /// partial) exceeds the cap, [`AssembleError::NotUtf8`] when a
    /// completed line is not UTF-8. After an error the assembler's state
    /// is unspecified; the connection must be dropped.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<String>, AssembleError> {
        let mut lines = Vec::new();
        let mut rest = bytes;
        // Newlines can only be in the incoming chunk: everything already
        // buffered was scanned by an earlier push.
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            self.buf.extend_from_slice(&rest[..pos]);
            rest = &rest[pos + 1..];
            let line_bytes = std::mem::take(&mut self.buf);
            if line_bytes.len() > self.max {
                return Err(AssembleError::FrameTooLong { len: line_bytes.len(), max: self.max });
            }
            lines.push(String::from_utf8(line_bytes).map_err(|_| AssembleError::NotUtf8)?);
        }
        self.buf.extend_from_slice(rest);
        if self.buf.len() > self.max {
            return Err(AssembleError::FrameTooLong { len: self.buf.len(), max: self.max });
        }
        Ok(lines)
    }
}

/// Builds a `result` frame payload for one streamed outcome.
#[must_use]
pub fn result_payload(index: usize, outcome: &JobOutcome) -> String {
    Json::object(vec![("index", Json::UInt(index as u64)), ("outcome", outcome.to_json())]).render()
}

/// Parses a `result` frame payload.
///
/// # Errors
///
/// Fails on malformed JSON or missing/mistyped fields.
pub fn parse_result_payload(payload: &str) -> Result<(usize, JobOutcome), WireError> {
    let json = Json::parse(payload)?;
    let index = json
        .field("index")?
        .as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| WireError::new("index must be an unsigned integer"))?;
    let outcome = JobOutcome::from_json(json.field("outcome")?)?;
    Ok((index, outcome))
}

/// Builds a `done` frame payload.
#[must_use]
pub fn done_payload(jobs: usize, memo: bool) -> String {
    Json::object(vec![("jobs", Json::UInt(jobs as u64)), ("memo", Json::Bool(memo))]).render()
}

/// What a `done` frame reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Done {
    /// Number of result frames that preceded this frame.
    pub jobs: usize,
    /// Whether the response was served from the memo cache (zero
    /// simulation work on the server).
    pub memo: bool,
}

/// Parses a `done` frame payload.
///
/// # Errors
///
/// Fails on malformed JSON or missing/mistyped fields.
pub fn parse_done_payload(payload: &str) -> Result<Done, WireError> {
    let json = Json::parse(payload)?;
    let jobs = json
        .field("jobs")?
        .as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| WireError::new("jobs must be an unsigned integer"))?;
    let memo =
        json.field("memo")?.as_bool().ok_or_else(|| WireError::new("memo must be a boolean"))?;
    Ok(Done { jobs, memo })
}

/// Builds an `error` frame payload.
#[must_use]
pub fn error_payload(message: &str) -> String {
    Json::object(vec![("message", Json::Str(message.to_owned()))]).render()
}

/// Parses an `error` frame payload; falls back to the raw payload when
/// it is not well-formed JSON (the message still reaches the user).
#[must_use]
pub fn parse_error_payload(payload: &str) -> String {
    Json::parse(payload)
        .ok()
        .and_then(|json| json.get("message").and_then(|m| m.as_str().map(str::to_owned)))
        .unwrap_or_else(|| payload.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for (kind, payload) in [
            (FrameKind::Plan, r#"{"version":1,"jobs":[]}"#),
            (FrameKind::Result, r#"{"index":0,"outcome":{"skipped":"has spaces in it"}}"#),
            (FrameKind::Done, r#"{"jobs":12,"memo":true}"#),
            (FrameKind::Error, r#"{"message":"no such artifact"}"#),
            (FrameKind::Plan, ""),
        ] {
            let line = encode_frame(kind, payload);
            let (back_kind, back_payload) = decode_frame(&line).expect("encoded frame decodes");
            assert_eq!(back_kind, kind);
            assert_eq!(back_payload, payload);
            // Writers append a newline; decoders strip it.
            let with_newline = format!("{line}\n");
            let (k2, p2) = decode_frame(&with_newline).expect("newline tolerated");
            assert_eq!((k2, p2), (kind, payload));
        }
    }

    #[test]
    fn decode_rejects_structural_violations() {
        let good = encode_frame(FrameKind::Done, r#"{"jobs":1,"memo":false}"#);
        assert_eq!(decode_frame("HTTP 1 done 0  0000000000000000"), Err(FrameError::BadMagic));
        assert_eq!(
            decode_frame(&good.replacen("TLBS 1 ", "TLBS 2 ", 1)),
            Err(FrameError::BadVersion { found: "2".to_owned() })
        );
        assert_eq!(
            decode_frame(&good.replacen(" done ", " pong ", 1)),
            Err(FrameError::BadKind { found: "pong".to_owned() })
        );
        assert_eq!(decode_frame(&good.replacen(" 23 ", " xx ", 1)), Err(FrameError::BadLength));
        assert_eq!(decode_frame(&good[..good.len() - 20]), Err(FrameError::Truncated));
        let mut corrupted = good.clone();
        corrupted.replace_range(
            corrupted.find("jobs").unwrap()..corrupted.find("jobs").unwrap() + 4,
            "Jobs",
        );
        assert_eq!(decode_frame(&corrupted), Err(FrameError::BadChecksum));
    }

    #[test]
    fn every_truncation_of_a_frame_is_rejected() {
        let line = encode_frame(FrameKind::Result, r#"{"index":3,"outcome":{"skipped":"x y"}}"#);
        for cut in 0..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            assert!(decode_frame(&line[..cut]).is_err(), "prefix of length {cut} must not decode");
        }
    }

    #[test]
    fn assembler_reassembles_across_any_fragmentation() {
        let frames = [
            encode_frame(FrameKind::Plan, r#"{"version":1,"jobs":[]}"#),
            encode_frame(FrameKind::Result, r#"{"index":0,"outcome":{"skipped":"a b"}}"#),
            encode_frame(FrameKind::Done, r#"{"jobs":1,"memo":false}"#),
        ];
        let stream: Vec<u8> =
            frames.iter().flat_map(|f| f.bytes().chain(std::iter::once(b'\n'))).collect();
        // Split at every byte boundary: both chunks, any order of sizes.
        for cut in 0..=stream.len() {
            let mut asm = FrameAssembler::new(1 << 16);
            let mut lines = asm.push(&stream[..cut]).expect("first chunk");
            lines.extend(asm.push(&stream[cut..]).expect("second chunk"));
            assert_eq!(lines, frames, "split at byte {cut} must reassemble identically");
            assert_eq!(asm.buffered(), 0);
        }
        // Byte-at-a-time delivery — the worst nonblocking read pattern.
        let mut asm = FrameAssembler::new(1 << 16);
        let mut lines = Vec::new();
        for &b in &stream {
            lines.extend(asm.push(&[b]).expect("single byte"));
        }
        assert_eq!(lines, frames);
    }

    #[test]
    fn assembler_caps_frame_length() {
        let mut asm = FrameAssembler::new(8);
        assert_eq!(asm.push(b"12345678\n").expect("at cap"), vec!["12345678".to_owned()]);
        let mut asm = FrameAssembler::new(8);
        assert_eq!(
            asm.push(b"123456789\n"),
            Err(AssembleError::FrameTooLong { len: 9, max: 8 }),
            "a complete over-cap line is rejected"
        );
        let mut asm = FrameAssembler::new(8);
        assert!(asm.push(b"1234").is_ok());
        assert!(asm.push(b"5678").is_ok(), "at the cap without a newline is still fine");
        assert_eq!(
            asm.push(b"9"),
            Err(AssembleError::FrameTooLong { len: 9, max: 8 }),
            "a partial line is rejected as soon as it exceeds the cap"
        );
    }

    #[test]
    fn assembler_rejects_non_utf8_lines() {
        let mut asm = FrameAssembler::new(64);
        assert_eq!(asm.push(b"\xff\xfe\n"), Err(AssembleError::NotUtf8));
    }

    #[test]
    fn payload_helpers_round_trip() {
        let outcome = JobOutcome::Skipped { reason: "needs a training trace".to_owned() };
        let (index, back) = parse_result_payload(&result_payload(7, &outcome)).unwrap();
        assert_eq!(index, 7);
        assert_eq!(back, outcome);

        let done = parse_done_payload(&done_payload(42, true)).unwrap();
        assert_eq!(done, Done { jobs: 42, memo: true });

        assert_eq!(parse_error_payload(&error_payload("boom")), "boom");
        assert_eq!(parse_error_payload("not json at all"), "not json at all");
    }
}
