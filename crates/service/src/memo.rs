//! The daemon's two memo tiers.
//!
//! **In memory** — [`MemoCache`]: a byte-capped LRU keyed by the
//! canonical plan JSON, holding each memoized response as its
//! pre-encoded `result` frame payloads. Replaying the exact stored
//! strings (never re-encoding a `ResultSet`) is what makes a memo hit
//! byte-identical to the original response by construction. The cap
//! counts what the cache actually holds — the pre-encoded frame bytes
//! plus the key — so `TLABP_SERVE_MEMO_BYTES` bounds real memory, not
//! an entry count.
//!
//! **On disk** — [`MemoDisk`]: every completed cold response is also
//! persisted as a memo artifact
//! ([`tlabp_trace::io::write_memo`]) next to the trace artifacts,
//! named `<plan_hash>-<workload_fingerprint>.tlabm`:
//!
//! * `plan_hash` is [`Plan::wire_hash`] of the canonical plan JSON —
//!   the same key equality the in-memory tier uses, compressed to a
//!   file name; the full JSON is stored *inside* the artifact and
//!   re-verified on hydration, so a 64-bit collision can waste a file
//!   name but never serve the wrong response.
//! * `workload_fingerprint` folds the codegen fingerprints
//!   ([`Benchmark::fingerprint`]) of every workload the plan touches,
//!   so editing a workload generator strands the old response under a
//!   name that is simply never looked up again — the same
//!   self-invalidation discipline as the trace disk tier.
//!
//! Writes go through the shared artifact filesystem machinery
//! (advisory [`FileLock`] + [`write_file_atomic`]): readers never see a
//! torn file, and a corrupt or stale file hydrates as a miss, never as
//! wrong bytes. A daemon restarted over the same directory hydrates
//! every valid artifact into the LRU before accepting connections, so
//! previously-seen plans replay with zero simulation work.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use tlabp_sim::plan::Plan;
use tlabp_trace::io::{checksum, read_memo, write_file_atomic, write_memo, FileLock, MemoArtifact};
use tlabp_workloads::{Benchmark, DataSet};

/// A memoized response: the pre-encoded `result` frame payloads, in
/// plan order, shared between the cache and any connection currently
/// replaying them.
pub(crate) type MemoEntry = Arc<Vec<String>>;

/// Lock-acquisition budget for memo artifact writes (matches the trace
/// disk tier: proceed unlocked after this long — the atomic rename
/// makes the worst case last-writer-wins, never a torn file).
const LOCK_WAIT: Duration = Duration::from_millis(2_000);
/// Age beyond which a memo lock file is considered abandoned.
const LOCK_STALE: Duration = Duration::from_secs(10);

/// Bytes a cached response accounts for: its frame payloads plus its
/// key (the canonical plan JSON the map stores alongside).
pub(crate) fn entry_cost(key: &str, frames: &[String]) -> usize {
    key.len() + frames.iter().map(String::len).sum::<usize>()
}

/// One cached response plus its LRU bookkeeping.
#[derive(Debug)]
struct Slot {
    frames: MemoEntry,
    cost: usize,
    last_used: u64,
}

/// Byte-capped LRU memo cache keyed by canonical plan JSON.
#[derive(Debug)]
pub(crate) struct MemoCache {
    cap_bytes: usize,
    used_bytes: usize,
    tick: u64,
    entries: HashMap<String, Slot>,
}

impl MemoCache {
    /// A cache bounded to `cap_bytes` of pre-encoded frame bytes (plus
    /// keys); 0 disables memoization entirely.
    pub(crate) fn new(cap_bytes: usize) -> MemoCache {
        MemoCache { cap_bytes, used_bytes: 0, tick: 0, entries: HashMap::new() }
    }

    /// Looks `key` up and, on a hit, marks the entry most-recently used.
    pub(crate) fn get(&mut self, key: &str) -> Option<MemoEntry> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|slot| {
            slot.last_used = tick;
            Arc::clone(&slot.frames)
        })
    }

    /// Inserts a response, evicting least-recently-used entries until it
    /// fits. An entry that alone exceeds the cap is not cached (evicting
    /// the whole cache for one oversized response would thrash), and a
    /// key already present is left as is — responses are deterministic,
    /// so a second computation is byte-identical anyway.
    pub(crate) fn insert(&mut self, key: &str, frames: MemoEntry) {
        let cost = entry_cost(key, &frames);
        if self.cap_bytes == 0 || cost > self.cap_bytes || self.entries.contains_key(key) {
            return;
        }
        while self.used_bytes + cost > self.cap_bytes {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            if let Some(slot) = self.entries.remove(&oldest) {
                self.used_bytes -= slot.cost;
            }
        }
        self.tick += 1;
        self.used_bytes += cost;
        self.entries.insert(key.to_owned(), Slot { frames, cost, last_used: self.tick });
    }

    /// Bytes currently held (pre-encoded frames plus keys).
    pub(crate) fn bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached responses.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Folds the codegen fingerprints of every workload `plan` touches into
/// one u64 — the staleness guard in a memo artifact's name. Both data
/// sets are folded for every benchmark the plan names (profiled schemes
/// consume training traces implicitly, so the conservative fold
/// over-invalidates rather than ever serving a response computed from
/// edited workloads).
pub(crate) fn plan_workload_fingerprint(plan: &Plan) -> u64 {
    let mut benchmarks: Vec<&'static Benchmark> =
        plan.jobs().iter().map(|job| job.trace.benchmark).collect();
    benchmarks.sort_by_key(|bench| bench.name());
    benchmarks.dedup_by_key(|bench| bench.name());
    let mut folded = Vec::new();
    for bench in benchmarks {
        folded.extend_from_slice(bench.name().as_bytes());
        folded.push(0);
        folded.extend_from_slice(&bench.fingerprint(DataSet::Testing).to_le_bytes());
        if bench.has_training_set() {
            folded.extend_from_slice(&bench.fingerprint(DataSet::Training).to_le_bytes());
        }
    }
    checksum(&folded)
}

/// The persistent memo tier: one memo artifact per memoized plan under
/// a directory next to the trace artifacts, optionally bounded to a
/// byte budget (`TLABP_SERVE_MEMO_DISK_BYTES`) enforced by aging out
/// the oldest artifacts first.
#[derive(Debug)]
pub(crate) struct MemoDisk {
    dir: PathBuf,
    /// Byte cap over all `.tlabm` files; `None` = unbounded.
    cap_bytes: Option<usize>,
}

impl MemoDisk {
    pub(crate) fn new(dir: PathBuf, cap_bytes: Option<usize>) -> MemoDisk {
        MemoDisk { dir, cap_bytes }
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, plan_hash: u64, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{plan_hash:016x}-{fingerprint:016x}.tlabm"))
    }

    /// Persists one completed response. Failures warn and are otherwise
    /// ignored — the persistent tier is an accelerator, never a
    /// correctness dependency.
    pub(crate) fn persist(&self, plan: &Plan, key: &str, frames: &[String]) {
        let artifact = MemoArtifact {
            plan_hash: plan.wire_hash(),
            fingerprint: plan_workload_fingerprint(plan),
            plan: key.to_owned(),
            frames: frames.to_vec(),
        };
        let path = self.path_for(artifact.plan_hash, artifact.fingerprint);
        if let Err(err) = std::fs::create_dir_all(&self.dir) {
            eprintln!(
                "warning: cannot create memo directory {} ({err}); response not persisted",
                self.dir.display()
            );
            return;
        }
        let _lock = FileLock::acquire(&path.with_extension("tlabm.lock"), LOCK_WAIT, LOCK_STALE);
        if let Err(err) = write_file_atomic(&path, &write_memo(&artifact)) {
            eprintln!("warning: failed to write memo artifact {} ({err})", path.display());
        }
        self.enforce_budget();
    }

    /// Every `.tlabm` artifact in the directory with its modification
    /// time and size, oldest first.
    fn artifacts_by_age(&self) -> Vec<(std::time::SystemTime, PathBuf, usize)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut files: Vec<(std::time::SystemTime, PathBuf, usize)> = entries
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "tlabm"))
            .filter_map(|path| {
                let meta = std::fs::metadata(&path).ok()?;
                let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                Some((modified, path, meta.len() as usize))
            })
            .collect();
        files.sort();
        files
    }

    /// Ages out the oldest artifacts until the tier fits its byte cap.
    ///
    /// Called after every persist and once at daemon startup, so the
    /// budget holds across restarts and across daemons sharing one
    /// directory (each enforces after its own writes; eviction of a
    /// file another daemon still holds in its LRU is harmless — the
    /// in-memory entry keeps serving, only the restart-survival copy is
    /// gone). A missing file at removal time just means a concurrent
    /// enforcer got there first.
    pub(crate) fn enforce_budget(&self) {
        let Some(cap) = self.cap_bytes else { return };
        let files = self.artifacts_by_age();
        let mut total: usize = files.iter().map(|(_, _, size)| size).sum();
        for (_, path, size) in files {
            if total <= cap {
                break;
            }
            match std::fs::remove_file(&path) {
                Ok(()) => total -= size,
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => total -= size,
                Err(err) => {
                    eprintln!("warning: cannot evict memo artifact {} ({err})", path.display());
                }
            }
        }
    }

    /// Total bytes of `.tlabm` artifacts currently in the directory.
    #[cfg(test)]
    pub(crate) fn disk_bytes(&self) -> usize {
        self.artifacts_by_age().iter().map(|(_, _, size)| size).sum()
    }

    /// Reads every valid memo artifact in the directory, oldest first
    /// (so inserting them in order leaves the most recently written
    /// entries hottest in the LRU). Every artifact is re-verified before
    /// it is trusted: the stored plan must parse, its canonical
    /// rendering must match the stored key byte-for-byte, its wire hash
    /// must match the stored hash, and the *current* workload
    /// fingerprint fold must match the stored one — so a renamed,
    /// corrupt, truncated, version-skewed, or workload-stale file
    /// hydrates as nothing at all.
    pub(crate) fn hydrate(&self) -> Vec<(String, MemoEntry)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = entries
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "tlabm"))
            .map(|path| {
                let modified = std::fs::metadata(&path)
                    .and_then(|meta| meta.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                (modified, path)
            })
            .collect();
        files.sort();
        let mut hydrated = Vec::new();
        for (_, path) in files {
            let Ok(bytes) = std::fs::read(&path) else { continue };
            let artifact = match read_memo(&bytes) {
                Ok(artifact) => artifact,
                Err(err) => {
                    eprintln!("warning: ignoring corrupt memo artifact {} ({err})", path.display());
                    continue;
                }
            };
            let Ok(plan) = Plan::from_json_str(&artifact.plan) else {
                // A plan from another wire version: stale, not corrupt.
                continue;
            };
            if plan.to_json_string() != artifact.plan
                || plan.wire_hash() != artifact.plan_hash
                || plan_workload_fingerprint(&plan) != artifact.fingerprint
            {
                continue;
            }
            hydrated.push((artifact.plan, Arc::new(artifact.frames)));
        }
        hydrated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(frames: &[&str]) -> MemoEntry {
        Arc::new(frames.iter().map(|s| (*s).to_owned()).collect())
    }

    #[test]
    fn lru_evicts_least_recently_used_when_over_byte_cap() {
        // Keys and frames are 8 bytes each: every entry costs 16 bytes.
        let mut cache = MemoCache::new(40);
        cache.insert("key-aaaa", entry(&["frame-a1"]));
        cache.insert("key-bbbb", entry(&["frame-b1"]));
        assert_eq!((cache.len(), cache.bytes()), (2, 32));
        // Touch A so B becomes the LRU victim.
        assert!(cache.get("key-aaaa").is_some());
        cache.insert("key-cccc", entry(&["frame-c1"]));
        assert_eq!(cache.len(), 2, "inserting C over cap evicts exactly one entry");
        assert!(cache.get("key-bbbb").is_none(), "the least-recently-used entry is evicted");
        assert!(cache.get("key-aaaa").is_some());
        assert!(cache.get("key-cccc").is_some());
        assert_eq!(cache.bytes(), 32);
    }

    #[test]
    fn oversized_entries_and_zero_cap_are_not_cached() {
        let mut cache = MemoCache::new(10);
        cache.insert("key", entry(&["a frame far larger than the whole cache"]));
        assert_eq!((cache.len(), cache.bytes()), (0, 0));

        let mut disabled = MemoCache::new(0);
        disabled.insert("key", entry(&["x"]));
        assert!(disabled.get("key").is_none(), "cap 0 disables memoization");
    }

    #[test]
    fn reinserting_an_existing_key_is_a_no_op() {
        let mut cache = MemoCache::new(1 << 10);
        cache.insert("key", entry(&["first"]));
        cache.insert("key", entry(&["second"]));
        assert_eq!(cache.get("key").unwrap()[0], "first");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_budget_ages_out_oldest_artifacts_first() {
        let dir = std::env::temp_dir().join(format!("tlabp-memo-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("memo dir");

        // Four 100-byte artifacts with strictly increasing mtimes set
        // explicitly (never sleep-derived, so the ordering is exact).
        let epoch = std::time::SystemTime::UNIX_EPOCH;
        for (index, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let path = dir.join(format!("{name}.tlabm"));
            std::fs::write(&path, [0u8; 100]).expect("write artifact");
            let file = std::fs::File::options().append(true).open(&path).expect("open");
            file.set_modified(epoch + Duration::from_secs(1000 + index as u64)).expect("set mtime");
        }

        // Unbounded: nothing is evicted.
        let unbounded = MemoDisk::new(dir.clone(), None);
        unbounded.enforce_budget();
        assert_eq!(unbounded.disk_bytes(), 400);

        // A 250-byte cap keeps the two newest whole artifacts: the two
        // oldest age out, newest-first survivors untouched.
        let capped = MemoDisk::new(dir.clone(), Some(250));
        capped.enforce_budget();
        assert_eq!(capped.disk_bytes(), 200);
        assert!(!dir.join("a.tlabm").exists(), "oldest evicted");
        assert!(!dir.join("b.tlabm").exists(), "second-oldest evicted");
        assert!(dir.join("c.tlabm").exists() && dir.join("d.tlabm").exists());

        // Already under budget: enforcement is a no-op.
        capped.enforce_budget();
        assert_eq!(capped.disk_bytes(), 200);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_enforces_the_disk_budget() {
        use tlabp_core::config::SchemeConfig;
        use tlabp_sim::plan::Job;

        let dir = std::env::temp_dir().join(format!("tlabp-memo-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("memo dir");

        // An old artifact that must age out once real persists push the
        // tier over a tiny cap.
        let stale = dir.join("stale.tlabm");
        std::fs::write(&stale, [0u8; 64]).expect("write stale");
        let file = std::fs::File::options().append(true).open(&stale).expect("open");
        file.set_modified(std::time::SystemTime::UNIX_EPOCH + Duration::from_secs(1))
            .expect("set mtime");

        let li = Benchmark::by_name("li").expect("li exists");
        let plan: Plan = [Job::scheme(SchemeConfig::btfn(), li)].into_iter().collect();
        let key = plan.to_json_string();
        let disk = MemoDisk::new(dir.clone(), Some(1)); // smaller than any artifact
        disk.persist(&plan, &key, &["frame".to_owned()]);
        assert!(!stale.exists(), "persist evicts the stale artifact");
        // With a cap below a single artifact, even the fresh write ages
        // out — the budget is a hard bound, mirroring the in-memory
        // LRU's oversized-entry rule.
        assert_eq!(disk.disk_bytes(), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_fingerprint_is_order_insensitive_and_workload_sensitive() {
        use tlabp_core::config::SchemeConfig;
        use tlabp_sim::plan::Job;
        let li = Benchmark::by_name("li").expect("li exists");
        let gcc = Benchmark::by_name("gcc").expect("gcc exists");
        let ab: Plan =
            [Job::scheme(SchemeConfig::btfn(), li), Job::scheme(SchemeConfig::btfn(), gcc)]
                .into_iter()
                .collect();
        let ba: Plan =
            [Job::scheme(SchemeConfig::btfn(), gcc), Job::scheme(SchemeConfig::btfn(), li)]
                .into_iter()
                .collect();
        let a_only: Plan = [Job::scheme(SchemeConfig::btfn(), li)].into_iter().collect();
        assert_eq!(
            plan_workload_fingerprint(&ab),
            plan_workload_fingerprint(&ba),
            "the fold depends on the workload set, not job order"
        );
        assert_ne!(plan_workload_fingerprint(&ab), plan_workload_fingerprint(&a_only));
    }
}
