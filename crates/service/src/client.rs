//! Client for the sweep daemon: submit a plan, iterate streamed results.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use tlabp_sim::plan::Plan;
use tlabp_sim::{JobOutcome, ResultSet};

use crate::proto::{
    decode_frame, encode_frame, parse_done_payload, parse_error_payload, parse_result_payload,
    Done, FrameKind,
};

/// A connection to a running [`SweepServer`](crate::server::SweepServer).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn io_invalid(message: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

impl Client {
    /// Connects to the daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Connects, retrying until `deadline` elapses — for scripts that
    /// race a just-spawned daemon (the CI smoke test).
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the deadline passes.
    pub fn connect_with_retry(addr: &str, deadline: Duration) -> std::io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(err) if start.elapsed() < deadline => {
                    let _ = err;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Submits a plan and returns the stream of its results.
    ///
    /// The returned [`ResultStream`] yields `(index, outcome)` pairs as
    /// the server streams them — strictly sequential from 0 — and must
    /// be driven to its end ([`ResultStream::finish`]) before the next
    /// submit.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn submit(&mut self, plan: &Plan) -> std::io::Result<ResultStream<'_>> {
        self.writer.write_all(encode_frame(FrameKind::Plan, &plan.to_json_string()).as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(ResultStream { reader: &mut self.reader, next_index: 0, done: None })
    }

    /// Submits a plan and drains the whole response into a
    /// [`ResultSet`] plus the terminal [`Done`] summary.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, server-reported errors, and any
    /// protocol violation (out-of-order indices, wrong counts).
    pub fn execute(&mut self, plan: &Plan) -> std::io::Result<(ResultSet, Done)> {
        let mut stream = self.submit(plan)?;
        let mut outcomes = Vec::with_capacity(plan.len());
        while let Some(item) = stream.next_outcome()? {
            outcomes.push(item.1);
        }
        let done = stream.finish()?;
        if outcomes.len() != plan.len() {
            return Err(io_invalid(format!(
                "server streamed {} outcomes for a {}-job plan",
                outcomes.len(),
                plan.len()
            )));
        }
        Ok((ResultSet::from_outcomes(plan, outcomes), done))
    }

    /// Submits every plan back-to-back before reading any response, then
    /// drains the responses in submission order.
    ///
    /// This exploits the server's per-connection admission control: up
    /// to `TLABP_SERVE_INFLIGHT` of the pipelined plans execute
    /// concurrently while the rest queue FIFO, and responses always come
    /// back in submission order — one round trip for the whole batch
    /// instead of one per plan.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, server-reported errors, and any
    /// protocol violation; on error the connection is left mid-stream
    /// and the client should be discarded.
    pub fn execute_pipelined(&mut self, plans: &[Plan]) -> std::io::Result<Vec<(ResultSet, Done)>> {
        for plan in plans {
            self.writer
                .write_all(encode_frame(FrameKind::Plan, &plan.to_json_string()).as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(plans.len());
        for plan in plans {
            let mut stream = ResultStream { reader: &mut self.reader, next_index: 0, done: None };
            let mut outcomes = Vec::with_capacity(plan.len());
            while let Some(item) = stream.next_outcome()? {
                outcomes.push(item.1);
            }
            let done = stream.finish()?;
            if outcomes.len() != plan.len() {
                return Err(io_invalid(format!(
                    "server streamed {} outcomes for a {}-job plan",
                    outcomes.len(),
                    plan.len()
                )));
            }
            responses.push((ResultSet::from_outcomes(plan, outcomes), done));
        }
        Ok(responses)
    }
}

/// The in-flight response to one submitted plan.
pub struct ResultStream<'c> {
    reader: &'c mut BufReader<TcpStream>,
    next_index: usize,
    done: Option<Done>,
}

impl ResultStream<'_> {
    /// Reads the next streamed outcome, or `None` once the server's
    /// `done` frame arrives.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, decodes server `error` frames into
    /// `InvalidData` errors, and rejects out-of-order result indices.
    pub fn next_outcome(&mut self) -> std::io::Result<Option<(usize, JobOutcome)>> {
        if self.done.is_some() {
            return Ok(None);
        }
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io_invalid("server closed the connection mid-response"));
        }
        let (kind, payload) = decode_frame(&line).map_err(io_invalid)?;
        match kind {
            FrameKind::Result => {
                let (index, outcome) = parse_result_payload(payload).map_err(io_invalid)?;
                if index != self.next_index {
                    return Err(io_invalid(format!(
                        "result index {index} out of order (expected {})",
                        self.next_index
                    )));
                }
                self.next_index += 1;
                Ok(Some((index, outcome)))
            }
            FrameKind::Done => {
                let done = parse_done_payload(payload).map_err(io_invalid)?;
                if done.jobs != self.next_index {
                    return Err(io_invalid(format!(
                        "done frame reports {} jobs but {} results were streamed",
                        done.jobs, self.next_index
                    )));
                }
                self.done = Some(done);
                Ok(None)
            }
            FrameKind::Error => Err(io_invalid(parse_error_payload(payload))),
            FrameKind::Plan => Err(io_invalid("server sent a plan frame")),
        }
    }

    /// Drains any remaining results and returns the terminal [`Done`]
    /// summary.
    ///
    /// # Errors
    ///
    /// Propagates any error [`Self::next_outcome`] would.
    pub fn finish(mut self) -> std::io::Result<Done> {
        while self.next_outcome()?.is_some() {}
        Ok(self.done.expect("next_outcome returned None only after a done frame"))
    }
}
