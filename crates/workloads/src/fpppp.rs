//! `fpppp` stand-in: enormous straight-line basic blocks.
//!
//! The original (quantum chemistry two-electron integrals) is famous for
//! very long straight-line code with few, extremely well-behaved branches:
//! "there are very few conditional branches in fpppp and all the
//! conditional branches have regular behavior". Table 2 lists the `natoms`
//! testing input with no training set.
//!
//! The stand-in runs a long chain of arithmetic blocks, each guarded by a
//! branch that fires at most ~1% of the time, with sparse fixed-trip inner
//! loops; the branch-per-instruction ratio is kept low, matching the
//! paper's ~5% figure for the floating-point benchmarks.

use tlabp_isa::inst::{AluOp, Inst, Reg};
use tlabp_isa::program::{Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self};

/// Number of straight-line blocks (Table 1: 653 static conditional
/// branches; we stay near the 512-entry BHT's comfortable capacity since
/// every block executes on every iteration).
const BLOCKS: usize = 160;

pub(crate) fn program(data_set: DataSet) -> Program {
    let (iterations, seed) = match data_set {
        DataSet::Training => (100, 0x5eed_5001),
        DataSet::Testing => (200, 0x5eed_5002),
    };
    build(iterations, seed)
}

fn build(iterations: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let acc = Reg::new(1);
    let x = Reg::new(2);
    let y = Reg::new(3);
    let inner = Reg::new(5);
    let inner_limit = Reg::new(6); // six trips per inner loop
    let outer = Reg::new(20);
    let outer_limit = Reg::new(21);

    codegen::seed_rng(&mut b, seed);
    b.li(acc, 1);
    b.li(inner_limit, 6);

    b.li(outer_limit, iterations);
    let mut fixups = codegen::RareGuards::new();
    let outer_loop = codegen::counted_loop_begin(&mut b, "outer", outer);
    for block in 0..BLOCKS {
        // Long arithmetic block: 18 dependent ALU operations.
        for step in 0..9 {
            b.alu_imm(AluOp::Mul, x, acc, 3 + step);
            b.alu_imm(AluOp::Xor, y, x, 0x55);
            b.add(acc, acc, y);
        }
        b.alu_imm(AluOp::And, acc, acc, 0xff_ffff);

        // Rare denormal-style fixup (~1%), out of line.
        fixups.random(
            &mut b,
            &format!("blk{block}"),
            1,
            vec![Inst::AluImm { op: AluOp::Add, rd: acc, a: acc, imm: 7 }],
        );

        // Fixed-trip inner loop on every other block: fpppp's dynamic
        // branches are dominated by perfectly regular loop back-edges.
        if block % 2 == 0 {
            let body = codegen::counted_loop_begin(&mut b, &format!("blk{block}_l"), inner);
            b.alu_imm(AluOp::Add, acc, acc, 1);
            codegen::counted_loop_end(&mut b, body, inner, inner_limit);
        }
    }
    codegen::counted_loop_end(&mut b, outer_loop, outer, outer_limit);
    let over = b.label("fixups_over");
    b.jump(over);
    fixups.flush(&mut b);
    b.bind(over);
    b.halt();
    b.build().expect("fpppp generator binds all labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn branches_are_sparse_and_one_sided() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let summary = TraceSummary::from_trace(&vm.into_trace());
        assert!(
            summary.branch_instruction_fraction < 0.15,
            "fpppp should be branch-sparse, got {}",
            summary.branch_instruction_fraction
        );
        // Loop back-edges dominate: taken-biased overall.
        assert!(summary.taken_rate > 0.55, "taken rate {}", summary.taken_rate);
        assert!(summary.static_conditional_branches >= BLOCKS);
        assert!(summary.dynamic_conditional_branches > 80_000);
    }
}
