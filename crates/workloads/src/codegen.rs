//! Shared code-generation helpers for the workload programs.

use tlabp_isa::inst::{AluOp, Cond, Inst, Reg};
use tlabp_isa::program::{Label, ProgramBuilder};

/// Conventional register assignments used by the generated workloads.
pub mod regs {
    use tlabp_isa::inst::Reg;

    /// LCG state (the program's pseudo-random data source).
    pub const RNG: Reg = Reg::new(30);
    /// Scratch register for extracted random values.
    pub const RAND: Reg = Reg::new(29);
    /// General scratch.
    pub const TMP: Reg = Reg::new(28);
    /// Second LCG state, used for *reproducible* data fills: reseeding it
    /// at a known point makes the filled data identical on every pass, so
    /// the branch sequences it induces repeat — the structure
    /// history-based predictors exploit in real programs.
    pub const FILL_RNG: Reg = Reg::new(27);
}

/// Multiplier of the 64-bit LCG (Knuth's MMIX constants).
pub const LCG_MUL: i64 = 6364136223846793005;
/// Increment of the 64-bit LCG.
pub const LCG_INC: i64 = 1442695040888963407;

/// Emits `seed` initialization for the in-program random source.
pub fn seed_rng(b: &mut ProgramBuilder, seed: i64) {
    b.li(regs::RNG, seed);
}

/// Emits one LCG step and leaves a non-negative pseudo-random value in
/// `regs::RAND`, reduced modulo `modulus` (must be positive).
///
/// Cost: 5 instructions, no branches — random data without perturbing the
/// branch statistics under study.
pub fn emit_rand(b: &mut ProgramBuilder, modulus: i64) {
    assert!(modulus > 0, "modulus must be positive");
    // rng = rng * MUL + INC
    b.alu_imm(AluOp::Mul, regs::RNG, regs::RNG, LCG_MUL);
    b.alu_imm(AluOp::Add, regs::RNG, regs::RNG, LCG_INC);
    // rand = (rng >> 33) % modulus  (logical-ish: shr is arithmetic, so
    // mask the sign first by shifting one extra bit and anding).
    b.alu_imm(AluOp::Shr, regs::RAND, regs::RNG, 33);
    b.alu_imm(AluOp::And, regs::RAND, regs::RAND, i64::MAX >> 33);
    b.alu_imm(AluOp::Rem, regs::RAND, regs::RAND, modulus);
}

/// Emits reseeding of the fill RNG (see [`regs::FILL_RNG`]).
pub fn seed_fill_rng(b: &mut ProgramBuilder, seed: i64) {
    b.li(regs::FILL_RNG, seed);
}

/// Emits a *cyclic* reseed of the fill RNG: the seed is a function of
/// `counter % modulus`, so the data (and the branch sequences it induces)
/// cycles with period `modulus` — varied enough to be non-trivial,
/// repetitive enough for history-based predictors to learn.
pub fn seed_fill_rng_periodic(b: &mut ProgramBuilder, counter: Reg, modulus: i64, base: i64) {
    assert!(modulus >= 1);
    b.alu_imm(AluOp::Rem, regs::TMP, counter, modulus);
    b.alu_imm(AluOp::Mul, regs::TMP, regs::TMP, 7919);
    b.alu_imm(AluOp::Add, regs::TMP, regs::TMP, base);
    b.add(regs::FILL_RNG, regs::TMP, Reg::ZERO);
}

/// Like [`emit_rand`] but drawing from the reproducible fill RNG; leaves
/// the value in `regs::RAND`.
pub fn emit_fill_rand(b: &mut ProgramBuilder, modulus: i64) {
    assert!(modulus > 0, "modulus must be positive");
    b.alu_imm(AluOp::Mul, regs::FILL_RNG, regs::FILL_RNG, LCG_MUL);
    b.alu_imm(AluOp::Add, regs::FILL_RNG, regs::FILL_RNG, LCG_INC);
    b.alu_imm(AluOp::Shr, regs::RAND, regs::FILL_RNG, 33);
    b.alu_imm(AluOp::And, regs::RAND, regs::RAND, i64::MAX >> 33);
    b.alu_imm(AluOp::Rem, regs::RAND, regs::RAND, modulus);
}

/// Emits the header of a counted loop: initializes `counter` to zero and
/// binds the returned body label. Close it with [`counted_loop_end`].
pub fn counted_loop_begin(b: &mut ProgramBuilder, name: &str, counter: Reg) -> Label {
    b.li(counter, 0);
    let body = b.label(name);
    b.bind(body);
    body
}

/// Emits the back edge of a counted loop: `counter += 1;
/// if counter < limit_reg goto body`.
pub fn counted_loop_end(b: &mut ProgramBuilder, body: Label, counter: Reg, limit: Reg) {
    b.addi(counter, counter, 1);
    b.branch(Cond::Lt, counter, limit, body);
}

/// Emits a data-dependent `if rand < threshold_of(percent)` guard with
/// the then-block *inline*: draws a random value and skips the "then"
/// region when the condition fails. Returns the join label to bind after
/// emitting the then-block.
///
/// Use this for then-blocks that execute most of the time
/// (`percent_taken >= 50`): the skip branch is then a forward branch that
/// is rarely taken, the layout a compiler produces. For rare then-blocks
/// use [`RareGuards`], which moves them out of line.
pub fn emit_random_guard(b: &mut ProgramBuilder, name: &str, percent_taken: i64) -> Label {
    assert!((0..=100).contains(&percent_taken));
    emit_rand(b, 100);
    b.li(regs::TMP, percent_taken);
    let skip = b.label(name);
    // Branch *around* the then-block when rand >= percent (forward,
    // usually not taken for high percentages — realistic compiler shape).
    b.branch(Cond::Ge, regs::RAND, regs::TMP, skip);
    skip
}

/// Collects rarely executed guard bodies and emits them *out of line*, the
/// way a compiler lays out error/fixup paths: the guard is a forward
/// branch that is rarely taken, the common path falls through, and the
/// fixup block lives past the hot code with a jump back.
///
/// Bodies are restricted to label-free instructions (ALU/memory), which
/// is all the workload fixups need.
#[derive(Debug, Default)]
pub struct RareGuards {
    pending: Vec<(Label, Label, Vec<Inst>)>,
}

impl RareGuards {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        RareGuards::default()
    }

    /// Emits `if rand%100 < percent_then { body }` with `body` deferred
    /// out of line; the guard branch is taken `percent_then`% of the time.
    pub fn random(
        &mut self,
        b: &mut ProgramBuilder,
        name: &str,
        percent_then: i64,
        body: Vec<Inst>,
    ) {
        assert!((0..=100).contains(&percent_then));
        emit_rand(b, 100);
        b.li(regs::TMP, percent_then);
        let fixup = b.label(format!("{name}_fix"));
        let resume = b.label(format!("{name}_res"));
        b.branch(Cond::Lt, regs::RAND, regs::TMP, fixup);
        b.bind(resume);
        self.pending.push((fixup, resume, body));
    }

    /// Emits `if (counter + phase) % modulus == 0 { body }` — a *periodic*
    /// guard: its outcome repeats with period `modulus` in `counter`,
    /// which pattern-history predictors learn exactly while per-branch
    /// counters only capture the (modulus-1)/modulus bias.
    pub fn periodic(
        &mut self,
        b: &mut ProgramBuilder,
        name: &str,
        counter: Reg,
        phase: i64,
        modulus: i64,
        body: Vec<Inst>,
    ) {
        assert!(modulus >= 2, "period must be at least 2");
        b.alu_imm(AluOp::Add, regs::TMP, counter, phase);
        b.alu_imm(AluOp::Rem, regs::TMP, regs::TMP, modulus);
        let fixup = b.label(format!("{name}_fix"));
        let resume = b.label(format!("{name}_res"));
        b.branch(Cond::Eq, regs::TMP, Reg::ZERO, fixup);
        b.bind(resume);
        self.pending.push((fixup, resume, body));
    }

    /// Emits every deferred fixup block (call once, after the hot code of
    /// the enclosing function/section, before its return).
    pub fn flush(self, b: &mut ProgramBuilder) {
        for (fixup, resume, body) in self.pending {
            b.bind(fixup);
            for inst in body {
                b.inst(inst);
            }
            b.jump(resume);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;

    #[test]
    fn rand_values_are_in_range_and_vary() {
        let mut b = ProgramBuilder::new();
        seed_rng(&mut b, 42);
        // Store 16 draws mod 10 into memory[0..16].
        let base = Reg::new(1);
        b.li(base, 0);
        for i in 0..16 {
            emit_rand(&mut b, 10);
            b.st(regs::RAND, base, i);
        }
        b.halt();
        let mut vm = Vm::with_limits(b.build().unwrap(), 64, 10_000);
        vm.run().unwrap();
        let draws: Vec<i64> = (0..16).map(|i| vm.mem(i)).collect();
        assert!(draws.iter().all(|&v| (0..10).contains(&v)), "{draws:?}");
        let distinct: std::collections::HashSet<i64> = draws.iter().copied().collect();
        assert!(distinct.len() > 3, "draws should vary: {draws:?}");
    }

    #[test]
    fn counted_loop_runs_exactly_n_times() {
        let mut b = ProgramBuilder::new();
        let counter = Reg::new(1);
        let limit = Reg::new(2);
        let acc = Reg::new(3);
        b.li(limit, 7);
        b.li(acc, 0);
        let body = counted_loop_begin(&mut b, "loop", counter);
        b.addi(acc, acc, 1);
        counted_loop_end(&mut b, body, counter, limit);
        b.halt();
        let mut vm = Vm::with_limits(b.build().unwrap(), 64, 10_000);
        vm.run().unwrap();
        assert_eq!(vm.reg(acc), 7);
    }

    #[test]
    fn random_guard_takes_roughly_the_requested_fraction() {
        let mut b = ProgramBuilder::new();
        seed_rng(&mut b, 7);
        let counter = Reg::new(1);
        let limit = Reg::new(2);
        let hits = Reg::new(3);
        b.li(limit, 1000);
        b.li(hits, 0);
        let body = counted_loop_begin(&mut b, "loop", counter);
        let join = emit_random_guard(&mut b, "skip", 30);
        b.addi(hits, hits, 1); // then-block: executed ~30% of the time
        b.bind(join);
        counted_loop_end(&mut b, body, counter, limit);
        b.halt();
        let mut vm = Vm::with_limits(b.build().unwrap(), 64, 1_000_000);
        vm.run().unwrap();
        let hits = vm.reg(hits);
        assert!((200..=400).contains(&hits), "expected ~300 hits, got {hits}");
    }
}
