//! `li` (xlisp) stand-in: recursive interpreter workloads.
//!
//! Table 2 is explicit about this benchmark's inputs: training runs the
//! *tower of hanoi*, testing runs *eight queens* — both classic xlisp
//! test programs dominated by recursion. The stand-in implements both
//! solvers natively (recursive calls through the VM call stack, arguments
//! on an explicit data stack) inside one program; an embedded mode flag
//! selects which solver the run exercises, so the program text — and every
//! static branch address — is identical across data sets while the
//! exercised paths differ, which is exactly the hazard profiling-based
//! predictors face.
//!
//! Shared "interpreter runtime" helpers (list scans and a mark-sweep-like
//! pass) run in both modes, giving the profiled schemes partial coverage.

use tlabp_isa::inst::{AluOp, Cond, Reg};
use tlabp_isa::program::{Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Stack pointer register for the explicit argument stack.
const SP: Reg = Reg::new(26);
/// Board/argument memory for the queens solver.
const BOARD_BASE: i64 = 400_000;
/// Argument stack region.
const STACK_BASE: i64 = 450_000;
/// Heap region scanned by the GC-like helper.
const HEAP_BASE: i64 = 460_000;
/// Number of replicated runtime-helper families.
const HELPERS: usize = 60;

pub(crate) fn program(data_set: DataSet) -> Program {
    // mode 0 = tower of hanoi (training), mode 1 = eight queens (testing).
    let (mode, hanoi_depth, queens_n, repeats, seed) = match data_set {
        DataSet::Training => (0, 13, 8, 2, 0x5eed_8001),
        DataSet::Testing => (1, 13, 8, 2, 0x5eed_8002),
    };
    build(mode, hanoi_depth, queens_n, repeats, seed)
}

fn build(mode: i64, hanoi_depth: i64, queens_n: i64, repeats: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let mode_reg = Reg::new(25);
    let repeat = Reg::new(20);
    let repeat_limit = Reg::new(21);
    let arg = Reg::new(10); // first argument to callees
    let solutions = Reg::new(11);
    let moves = Reg::new(12);
    let n_queens = Reg::new(24);

    codegen::seed_rng(&mut b, seed);
    b.li(mode_reg, mode);
    b.li(SP, STACK_BASE);
    b.li(n_queens, queens_n);

    let hanoi = b.label("hanoi");
    let queens = b.label("queens");
    let safe = b.label("safe");
    let helpers_start = b.label("helpers");
    let end = b.label("end");

    b.li(repeat_limit, repeats);
    let driver = codegen::counted_loop_begin(&mut b, "driver", repeat);
    {
        // Shared runtime helpers run in both modes and dominate the
        // dynamic profile, like the interpreter loop in real xlisp.
        for _ in 0..10 {
            b.call(helpers_start);
        }

        // Mode dispatch: one branch, then the selected solver.
        let run_queens = b.label("run_queens");
        let dispatched = b.label("dispatched");
        b.branch(Cond::Ne, mode_reg, Reg::ZERO, run_queens);
        b.li(arg, hanoi_depth);
        b.call(hanoi);
        b.jump(dispatched);
        b.bind(run_queens);
        b.li(arg, 0); // start at row 0
        b.call(queens);
        b.bind(dispatched);
    }
    codegen::counted_loop_end(&mut b, driver, repeat, repeat_limit);
    b.jump(end);

    // ---- hanoi(n): if n == 0 return; hanoi(n-1); moves++; hanoi(n-1) ----
    b.bind(hanoi);
    {
        let recurse = b.label("hanoi_rec");
        b.branch(Cond::Gt, arg, Reg::ZERO, recurse);
        b.ret();
        b.bind(recurse);
        // push n, call hanoi(n-1)
        b.st(arg, SP, 0);
        b.addi(SP, SP, 1);
        b.addi(arg, arg, -1);
        b.call(hanoi);
        // pop n, count the move
        b.addi(SP, SP, -1);
        b.ld(arg, SP, 0);
        b.addi(moves, moves, 1);
        // second recursive call
        b.addi(arg, arg, -1);
        b.call(hanoi);
        b.ret();
    }

    // ---- queens(row): for col in 0..n: if safe: place; recurse/record ----
    b.bind(queens);
    {
        let row = Reg::new(13);
        let col = Reg::new(14);
        let col_loop = b.label("q_col");
        let col_next = b.label("q_next");
        let col_done = b.label("q_done");
        let recurse = b.label("q_rec");
        let after = b.label("q_after");

        b.add(row, arg, Reg::ZERO);
        b.li(col, 0);
        b.bind(col_loop);
        {
            // safe(row, col)? returns verdict in r15.
            // Save row/col across the call on the data stack.
            b.st(row, SP, 0);
            b.st(col, SP, 1);
            b.addi(SP, SP, 2);
            b.call(safe);
            b.addi(SP, SP, -2);
            b.ld(row, SP, 0);
            b.ld(col, SP, 1);
            b.branch(Cond::Eq, Reg::new(15), Reg::ZERO, col_next);

            // place queen: board[row] = col
            b.addi(Reg::new(16), row, BOARD_BASE);
            b.st(col, Reg::new(16), 0);
            // last row? count a solution, else recurse.
            b.addi(Reg::new(17), n_queens, -1);
            b.branch(Cond::Lt, row, Reg::new(17), recurse);
            b.addi(solutions, solutions, 1);
            b.jump(after);
            b.bind(recurse);
            b.st(row, SP, 0);
            b.st(col, SP, 1);
            b.addi(SP, SP, 2);
            b.addi(arg, row, 1);
            b.call(queens);
            b.addi(SP, SP, -2);
            b.ld(row, SP, 0);
            b.ld(col, SP, 1);
            b.bind(after);
        }
        b.bind(col_next);
        b.addi(col, col, 1);
        // Bottom-tested: backward branch taken n-1 of n times.
        b.branch(Cond::Lt, col, n_queens, col_loop);
        b.bind(col_done);
        b.ret();
    }

    // ---- safe(row=stack[-2], col=stack[-1]) -> r15 ----
    b.bind(safe);
    {
        let row = Reg::new(13);
        let col = Reg::new(14);
        let verdict = Reg::new(15);
        let prev = Reg::new(16);
        let prev_col = Reg::new(17);
        let diff = Reg::new(18);
        let diff2 = Reg::new(19);

        b.ld(row, SP, -2);
        b.ld(col, SP, -1);
        b.li(verdict, 1);
        b.li(prev, 0);
        let scan = b.label("safe_scan");
        let unsafe_exit = b.label("safe_no");
        let done = b.label("safe_done");
        // Row 0 has nothing to check.
        b.branch(Cond::Le, row, Reg::ZERO, done);
        b.bind(scan);
        {
            b.addi(diff, prev, BOARD_BASE);
            b.ld(prev_col, diff, 0);
            // Different column in the common case: taken-biased test.
            let col_ok = b.label(format!("safe_colok_{}", 0));
            b.branch(Cond::Ne, prev_col, col, col_ok);
            b.jump(unsafe_exit);
            b.bind(col_ok);
            // same diagonal? |row - prev| == |col - prev_col|
            b.sub(diff, row, prev);
            b.sub(diff2, col, prev_col);
            let abs_ok = b.label(format!("safe_abs_{}", 0));
            b.branch(Cond::Ge, diff2, Reg::ZERO, abs_ok);
            b.sub(diff2, Reg::ZERO, diff2);
            b.bind(abs_ok);
            let diag_ok = b.label(format!("safe_diagok_{}", 0));
            b.branch(Cond::Ne, diff, diff2, diag_ok);
            b.jump(unsafe_exit);
            b.bind(diag_ok);
        }
        b.addi(prev, prev, 1);
        // Bottom-tested: backward branch taken while rows remain.
        b.branch(Cond::Lt, prev, row, scan);
        b.jump(done);
        b.bind(unsafe_exit);
        b.li(verdict, 0);
        b.bind(done);
        b.ret();
    }

    // ---- shared runtime helpers: list scans + mark-like sweep ----
    b.bind(helpers_start);
    {
        let i = Reg::new(1);
        let limit = Reg::new(2);
        let addr = Reg::new(3);
        let cell = Reg::new(4);
        let marked = Reg::new(5);
        b.li(limit, 64);
        // Seed the heap with *reproducible* tagged cells: the fill RNG is
        // reseeded here, so every sweep (and every driver round) walks the
        // same tag sequence — a repeating pattern history captures.
        codegen::seed_fill_rng(&mut b, 0x11_0000 + seed);
        let fill = codegen::counted_loop_begin(&mut b, "heap_fill", i);
        // AND of two draws: each tag bit set with p = 0.25 — biased the
        // way real type tags are, not a fair coin.
        codegen::emit_fill_rand(&mut b, 8);
        b.add(cell, regs::RAND, Reg::ZERO);
        codegen::emit_fill_rand(&mut b, 8);
        b.alu(AluOp::And, cell, cell, regs::RAND);
        b.addi(addr, i, HEAP_BASE);
        b.st(cell, addr, 0);
        codegen::counted_loop_end(&mut b, fill, i, limit);

        for h in 0..HELPERS {
            // Irregular padding breaks code-stride aliasing across the
            // replicated helpers.
            for _ in 0..(h * 31 + 3) % 23 {
                b.nop();
            }
            // Sweep: branch on cell tag (data-dependent), two tag tests.
            let sweep = codegen::counted_loop_begin(&mut b, &format!("h{h}_sweep"), i);
            b.addi(addr, i, HEAP_BASE);
            b.ld(cell, addr, 0);
            let not_pair = b.label(format!("h{h}_np"));
            b.alu_imm(AluOp::And, marked, cell, 1);
            b.branch(Cond::Eq, marked, Reg::ZERO, not_pair);
            b.addi(Reg::new(6), Reg::new(6), 1);
            b.bind(not_pair);
            let not_atom = b.label(format!("h{h}_na"));
            b.alu_imm(AluOp::And, marked, cell, 2);
            b.branch(Cond::Eq, marked, Reg::ZERO, not_atom);
            b.addi(Reg::new(7), Reg::new(7), 1);
            b.bind(not_atom);
            let not_str = b.label(format!("h{h}_ns"));
            b.alu_imm(AluOp::And, marked, cell, 4);
            b.branch(Cond::Eq, marked, Reg::ZERO, not_str);
            b.addi(Reg::new(8), Reg::new(8), 1);
            b.bind(not_str);
            codegen::counted_loop_end(&mut b, sweep, i, limit);
        }
        b.ret();
    }

    b.bind(end);
    b.halt();
    b.build().expect("li generator binds all labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;
    use tlabp_trace::BranchClass;

    #[test]
    fn eight_queens_finds_92_solutions() {
        // Run the testing mode once (repeats=1) and read the solution
        // counter (r11) — the canonical eight-queens answer is 92.
        let program = build(1, 13, 8, 1, 1);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        assert_eq!(vm.reg(Reg::new(11)), 92);
    }

    #[test]
    fn hanoi_counts_moves() {
        // hanoi(n) makes 2^n - 1 moves.
        let program = build(0, 10, 8, 1, 1);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        assert_eq!(vm.reg(Reg::new(12)), (1 << 10) - 1);
    }

    #[test]
    fn recursion_shows_in_branch_mix() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let trace = vm.into_trace();
        let summary = TraceSummary::from_trace(&trace);
        assert!(summary.mix.count(BranchClass::Return) > 5_000, "{:?}", summary.mix);
        assert_eq!(summary.mix.calls, summary.mix.returns);
        assert!(summary.dynamic_conditional_branches > 40_000);
    }

    #[test]
    fn modes_exercise_different_paths() {
        let train = {
            let mut vm = Vm::with_limits(program(DataSet::Training), 1 << 20, 80_000_000);
            vm.run().unwrap();
            vm.into_trace()
        };
        let test = {
            let mut vm = Vm::with_limits(program(DataSet::Testing), 1 << 20, 80_000_000);
            vm.run().unwrap();
            vm.into_trace()
        };
        use std::collections::HashSet;
        let train_pcs: HashSet<u64> = train.conditional_branches().map(|b| b.pc).collect();
        let test_pcs: HashSet<u64> = test.conditional_branches().map(|b| b.pc).collect();
        assert!(
            test_pcs.difference(&train_pcs).count() > 3,
            "testing must exercise branches training never saw"
        );
        assert!(
            test_pcs.intersection(&train_pcs).count() > 10,
            "shared runtime helpers must overlap"
        );
    }
}
