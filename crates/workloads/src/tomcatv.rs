//! `tomcatv` stand-in: 2-D mesh-generation sweeps.
//!
//! The original is a vectorizable mesh generator: regular doubly nested
//! sweeps over a grid, with occasional residual checks that almost never
//! fire. Table 2 lists its input as "Built-in" with no training set.

use tlabp_isa::inst::{AluOp, Inst, Reg};
use tlabp_isa::program::{Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Number of sweep sections (static-branch budget; Table 1: 370).
const SECTIONS: usize = 60;

const GRID_BASE: i64 = 0;
const OUT_BASE: i64 = 100_000;

pub(crate) fn program(data_set: DataSet) -> Program {
    let (n, passes, seed) = match data_set {
        DataSet::Training => (12, 2, 0x5eed_4001),
        DataSet::Testing => (24, 3, 0x5eed_4002),
    };
    build(n, passes, seed)
}

fn build(n: i64, passes: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, j) = (Reg::new(1), Reg::new(2));
    let n_reg = Reg::new(4);
    let addr = Reg::new(6);
    let value = Reg::new(7);
    let neighbor = Reg::new(8);
    let pass = Reg::new(20);
    let pass_limit = Reg::new(21);
    let fill = Reg::new(22);
    let fill_limit = Reg::new(23);

    codegen::seed_rng(&mut b, seed);
    b.li(n_reg, n);

    b.li(fill_limit, n * n);
    let fill_loop = codegen::counted_loop_begin(&mut b, "fill", fill);
    codegen::emit_rand(&mut b, 5000);
    b.addi(addr, fill, GRID_BASE);
    b.st(regs::RAND, addr, 0);
    codegen::counted_loop_end(&mut b, fill_loop, fill, fill_limit);

    b.li(pass_limit, passes);
    let pass_loop = codegen::counted_loop_begin(&mut b, "pass", pass);
    for section in 0..SECTIONS {
        emit_sweep(&mut b, section, n_reg, i, j, addr, value, neighbor);
    }
    codegen::counted_loop_end(&mut b, pass_loop, pass, pass_limit);
    b.halt();
    b.build().expect("tomcatv generator binds all labels")
}

/// One mesh sweep: `for i { for j { out = f(grid); if residual big: fixup } }`.
///
/// Static branches per section: two loop exits plus two rarely-firing
/// residual guards.
#[allow(clippy::too_many_arguments)]
fn emit_sweep(
    b: &mut ProgramBuilder,
    section: usize,
    n_reg: Reg,
    i: Reg,
    j: Reg,
    addr: Reg,
    value: Reg,
    neighbor: Reg,
) {
    // Irregular padding breaks code-stride aliasing across sections.
    for _ in 0..(section * 47 + 9) % 23 {
        b.nop();
    }
    let mut fixups = codegen::RareGuards::new();
    let i_loop = codegen::counted_loop_begin(b, &format!("sw{section}_i"), i);
    {
        let j_loop = codegen::counted_loop_begin(b, &format!("sw{section}_j"), j);
        {
            // value = grid[i*n + j]; neighbor = grid[i*n + j] (offset 1
            // when j+1 < n is not checked — wraps inside the row buffer,
            // harmless for the branch study).
            b.alu(AluOp::Mul, addr, i, n_reg);
            b.add(addr, addr, j);
            b.addi(addr, addr, GRID_BASE);
            b.ld(value, addr, 0);
            b.ld(neighbor, addr, 0);
            b.add(value, value, neighbor);
            b.alu_imm(AluOp::Shr, value, value, 1);

            b.alu_imm(AluOp::Add, addr, addr, OUT_BASE - GRID_BASE);
            b.st(value, addr, 0);
        }
        codegen::counted_loop_end(b, j_loop, j, n_reg);

        // Per-row residual checks (outside the inner loop, so loop
        // back-edges dominate the dynamic mix as in the real code).
        // Rare residual fixup (~2%), out of line like a compiler lays out
        // cold paths.
        fixups.random(
            b,
            &format!("sw{section}_resA"),
            2,
            vec![Inst::AluImm { op: AluOp::Add, rd: value, a: value, imm: 1 }],
        );
        // Boundary-row correction: periodic in i (every 8th row) —
        // perfectly learnable by pattern history.
        fixups.periodic(
            b,
            &format!("sw{section}_resB"),
            i,
            (section % 8) as i64,
            8,
            vec![Inst::AluImm { op: AluOp::Sub, rd: value, a: value, imm: 1 }],
        );
    }
    codegen::counted_loop_end(b, i_loop, i, n_reg);
    // Cold fixup blocks live past the sweep; control never falls into
    // them.
    let over = b.label(format!("sw{section}_over"));
    b.jump(over);
    fixups.flush(b);
    b.bind(over);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn sweeps_are_highly_regular() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let summary = TraceSummary::from_trace(&vm.into_trace());
        // Loop branches dominate; guard branches are "taken" (skip) ~98%.
        assert!(summary.taken_rate > 0.8, "taken rate {}", summary.taken_rate);
        assert!(summary.static_conditional_branches >= 4 * SECTIONS);
        assert!(summary.dynamic_conditional_branches > 100_000);
    }
}
