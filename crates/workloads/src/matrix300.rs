//! `matrix300` stand-in: dense matrix-multiply kernels.
//!
//! The original is a collection of matrix-multiplication loops whose
//! control flow is completely data-independent — the archetype of the
//! paper's "repetitive loop execution; thus a very high prediction
//! accuracy is attainable, independent of the predictors used". Table 2
//! lists its input as "Built-in" with no training set.
//!
//! The stand-in runs a bank of triple-nested matmul kernels over
//! LCG-initialized matrices. Only loop-exit branches exist; every branch
//! is taken `n-1` of every `n` executions.

use tlabp_isa::inst::{AluOp, Reg};
use tlabp_isa::program::{Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Number of distinct matmul kernel instances (static-branch budget;
/// Table 1 lists 213 static conditional branches for matrix300).
const KERNELS: usize = 64;

const A_BASE: i64 = 0;
const B_BASE: i64 = 40_000;
const C_BASE: i64 = 80_000;

pub(crate) fn program(data_set: DataSet) -> Program {
    // "Built-in" data: the testing run is the canonical one; the training
    // configuration exists only so the program is total over `DataSet`
    // (Table 2 has no training input for matrix300).
    let (n, passes, seed) = match data_set {
        DataSet::Training => (6, 2, 0x5eed_3001),
        DataSet::Testing => (8, 3, 0x5eed_3002),
    };
    build(n, passes, seed)
}

fn build(n: i64, passes: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, j, k) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let n_reg = Reg::new(4);
    let acc = Reg::new(5);
    let addr = Reg::new(6);
    let lhs = Reg::new(7);
    let rhs = Reg::new(8);
    let pass = Reg::new(20);
    let pass_limit = Reg::new(21);
    let fill = Reg::new(22);
    let fill_limit = Reg::new(23);

    codegen::seed_rng(&mut b, seed);
    b.li(n_reg, n);

    // Initialize A and B with pseudo-random words.
    b.li(fill_limit, n * n);
    let fill_loop = codegen::counted_loop_begin(&mut b, "fill", fill);
    codegen::emit_rand(&mut b, 1000);
    b.addi(addr, fill, A_BASE);
    b.st(regs::RAND, addr, 0);
    b.addi(addr, fill, B_BASE);
    b.st(regs::RAND, addr, 0);
    codegen::counted_loop_end(&mut b, fill_loop, fill, fill_limit);

    b.li(pass_limit, passes);
    let pass_loop = codegen::counted_loop_begin(&mut b, "pass", pass);
    for kernel in 0..KERNELS {
        emit_matmul(&mut b, kernel, n_reg, i, j, k, acc, addr, lhs, rhs);
    }
    codegen::counted_loop_end(&mut b, pass_loop, pass, pass_limit);
    b.halt();
    b.build().expect("matrix300 generator binds all labels")
}

/// Emits one `C += A * B` triple loop (three static conditional
/// branches).
#[allow(clippy::too_many_arguments)]
fn emit_matmul(
    b: &mut ProgramBuilder,
    kernel: usize,
    n_reg: Reg,
    i: Reg,
    j: Reg,
    k: Reg,
    acc: Reg,
    addr: Reg,
    lhs: Reg,
    rhs: Reg,
) {
    let i_loop = codegen::counted_loop_begin(b, &format!("mm{kernel}_i"), i);
    {
        let j_loop = codegen::counted_loop_begin(b, &format!("mm{kernel}_j"), j);
        {
            b.li(acc, 0);
            let k_loop = codegen::counted_loop_begin(b, &format!("mm{kernel}_k"), k);
            {
                // lhs = A[i*n + k]
                b.alu(AluOp::Mul, addr, i, n_reg);
                b.add(addr, addr, k);
                b.addi(addr, addr, A_BASE);
                b.ld(lhs, addr, 0);
                // rhs = B[k*n + j]
                b.alu(AluOp::Mul, addr, k, n_reg);
                b.add(addr, addr, j);
                b.addi(addr, addr, B_BASE);
                b.ld(rhs, addr, 0);
                b.alu(AluOp::Mul, lhs, lhs, rhs);
                b.add(acc, acc, lhs);
            }
            codegen::counted_loop_end(b, k_loop, k, n_reg);
            // C[i*n + j] = acc
            b.alu(AluOp::Mul, addr, i, n_reg);
            b.add(addr, addr, j);
            b.addi(addr, addr, C_BASE);
            b.st(acc, addr, 0);
        }
        codegen::counted_loop_end(b, j_loop, j, n_reg);
    }
    codegen::counted_loop_end(b, i_loop, i, n_reg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn kernels_are_perfectly_regular() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let trace = vm.into_trace();
        let summary = TraceSummary::from_trace(&trace);
        // Only loop branches: taken rate = (n-1)/n-ish, very high.
        assert!(summary.taken_rate > 0.85, "taken rate {}", summary.taken_rate);
        assert_eq!(summary.traps, 0);
        // 3 branches per kernel + fill + pass loops.
        assert!(summary.static_conditional_branches >= 3 * KERNELS);
    }

    #[test]
    fn matmul_result_is_correct_for_small_case() {
        // n=2 sanity check of the generated address arithmetic: C = A*B.
        let program = build(2, 1, 99);
        let mut vm = Vm::with_limits(program, 1 << 20, 10_000_000);
        vm.run().unwrap();
        let a: Vec<i64> = (0..4).map(|w| vm.mem((A_BASE + w) as usize)).collect();
        let bm: Vec<i64> = (0..4).map(|w| vm.mem((B_BASE + w) as usize)).collect();
        let c00 = a[0] * bm[0] + a[1] * bm[2];
        let c11 = a[2] * bm[1] + a[3] * bm[3];
        assert_eq!(vm.mem(C_BASE as usize), c00);
        assert_eq!(vm.mem((C_BASE + 3) as usize), c11);
    }
}
