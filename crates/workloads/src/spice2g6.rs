//! `spice2g6` stand-in: circuit-simulation timestep loop.
//!
//! The original alternates device-model evaluation with Newton iteration;
//! branch behavior is phase-like — device states persist across timesteps
//! and flip occasionally. Table 2: training on `short greycode.in`,
//! testing on `greycode.in`.
//!
//! The stand-in keeps one persistent mode word per device in data memory;
//! each timestep evaluates every device (branches conditioned on the mode,
//! which flips with ~10% probability per step — a two-state Markov chain)
//! and runs a convergence loop whose trip count is data-dependent.

use tlabp_isa::inst::{AluOp, Cond, Inst, Reg};
use tlabp_isa::program::{Label, Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Number of device-model subroutines (Table 1: 606 static conditional
/// branches for spice2g6). Kept comfortably inside the 512-entry BHT's
/// reach, since every device is evaluated on every timestep.
const DEVICES: usize = 36;

/// Data-memory base of the per-device mode words.
const STATE_BASE: i64 = 500_000;

pub(crate) fn program(data_set: DataSet) -> Program {
    let (timesteps, seed) = match data_set {
        // "short greycode.in".
        DataSet::Training => (55, 0x5eed_2001),
        DataSet::Testing => (145, 0x5eed_2002),
    };
    build(timesteps, seed)
}

fn build(timesteps: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let step = Reg::new(20);
    let step_limit = Reg::new(21);

    codegen::seed_rng(&mut b, seed);

    let entries: Vec<Label> = (0..DEVICES).map(|d| b.label(format!("dev{d}"))).collect();
    let end = b.label("end");

    // Initialize device modes to pseudo-random 0/1.
    let init = Reg::new(1);
    let init_limit = Reg::new(2);
    let addr = Reg::new(3);
    b.li(init_limit, DEVICES as i64);
    let init_loop = codegen::counted_loop_begin(&mut b, "init", init);
    codegen::emit_rand(&mut b, 2);
    b.addi(addr, init, STATE_BASE);
    b.st(regs::RAND, addr, 0);
    codegen::counted_loop_end(&mut b, init_loop, init, init_limit);

    b.li(step_limit, timesteps);
    let stepper = codegen::counted_loop_begin(&mut b, "step", step);
    for entry in &entries {
        // Each device model is evaluated several times per timestep
        // (Newton re-evaluations), giving the bursty reuse pattern real
        // simulators have.
        for _ in 0..3 {
            b.call(*entry);
        }
    }
    codegen::counted_loop_end(&mut b, stepper, step, step_limit);
    b.jump(end);

    for (d, entry) in entries.iter().enumerate() {
        b.bind(*entry);
        // Irregular padding breaks code-stride aliasing across devices.
        for _ in 0..(d * 29 + 5) % 23 {
            b.nop();
        }
        emit_device(&mut b, d);
        b.ret();
    }

    b.bind(end);
    b.halt();
    b.build().expect("spice2g6 generator binds all labels")
}

/// One device model: three mode-conditioned branches (phase-like: the mode
/// persists across timesteps), a Markov mode update with a periodic
/// re-anchor to the device's nominal operating region, and a convergence
/// loop with a data-dependent trip count.
fn emit_device(b: &mut ProgramBuilder, d: usize) {
    let mode = Reg::new(4);
    let addr = Reg::new(5);
    let acc = Reg::new(6);
    let delta = Reg::new(7);
    let eps = Reg::new(8);
    let step = Reg::new(20); // timestep counter (see `build`)

    // Each device has a nominal operating region; the bias is a stable,
    // data-set-independent property of the device (this is what lets
    // profiling-based schemes transfer between training and testing).
    let nominal = i64::from((d * 7) % 10 < 7);

    b.li(addr, STATE_BASE + d as i64);
    b.ld(mode, addr, 0);

    // Three branches conditioned on the persistent mode: while the mode
    // holds, they repeat the same direction every timestep (runs), which
    // counters predict well; mode flips create the mispredictions.
    for g in 0..3 {
        let skip = b.label(format!("dev{d}_m{g}"));
        b.branch(Cond::Eq, mode, Reg::ZERO, skip);
        b.alu_imm(AluOp::Add, acc, acc, 1 + g as i64);
        b.bind(skip);
    }

    // Markov update: flip the mode with ~6% probability (devices dwell in
    // an operating region for many timesteps). The flip path is cold and
    // lives out of line.
    let mut fixups = codegen::RareGuards::new();
    fixups.random(
        b,
        &format!("dev{d}_flip"),
        2,
        vec![
            Inst::AluImm { op: AluOp::Xor, rd: mode, a: mode, imm: 1 },
            Inst::Store { src: mode, base: addr, offset: 0 },
        ],
    );
    // The operating point drifts back to nominal on a periodic schedule
    // (the input waveform repeats), giving each device a stable long-run
    // bias.
    fixups.periodic(
        b,
        &format!("dev{d}_anchor"),
        step,
        (d % 24) as i64,
        24,
        vec![
            Inst::LoadImm { rd: mode, imm: nominal },
            Inst::Store { src: mode, base: addr, offset: 0 },
        ],
    );

    // Newton-style convergence loop: the starting residual depends on the
    // device's mode (deterministic given the mode), so the trip count is
    // phase-like rather than white noise.
    b.alu_imm(AluOp::Mul, delta, mode, 9);
    b.addi(delta, delta, 3);
    b.li(eps, 0);
    let converge = b.label(format!("dev{d}_newton"));
    b.bind(converge);
    b.alu_imm(AluOp::Shr, delta, delta, 1);
    b.alu_imm(AluOp::Add, acc, acc, 1);
    b.branch(Cond::Gt, delta, eps, converge);

    // Cold flip path past the hot code.
    let over = b.label(format!("dev{d}_over"));
    b.jump(over);
    fixups.flush(b);
    b.bind(over);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn phase_like_branch_behavior() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let summary = TraceSummary::from_trace(&vm.into_trace());
        assert!(summary.static_conditional_branches >= 5 * DEVICES);
        assert!(summary.dynamic_conditional_branches > 80_000);
        assert!(summary.mix.calls > 10_000);
    }

    #[test]
    fn modes_persist_in_memory_between_steps() {
        let program = build(3, 1234);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        // All mode words are still 0/1 after the run.
        for d in 0..DEVICES {
            let mode = vm.mem((STATE_BASE as usize) + d);
            assert!(mode == 0 || mode == 1, "device {d} mode {mode}");
        }
    }
}
