//! The benchmark registry: Table 1 metadata and trace generation.

use std::fmt;

use tlabp_isa::program::Program;
use tlabp_isa::vm::Vm;
use tlabp_trace::Trace;

use crate::{doduc, eqntott, espresso, fpppp, gcc, li, matrix300, spice2g6, tomcatv};

/// Which input a benchmark runs with (the paper's Table 2).
///
/// A benchmark's program text is *identical* for both data sets — only
/// embedded immediates (seeds, sizes, mode flags) differ — so static
/// branch addresses line up between training and testing runs, which is
/// what the profiling-based schemes (GSg, PSg, Profiling) depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSet {
    /// The profiling input (e.g. `cps` for espresso, tower of hanoi for
    /// li, `cexp.i` for gcc).
    Training,
    /// The measurement input (e.g. `bca`, eight queens, `dbxout.i`).
    Testing,
}

/// Benchmark category, used for the paper's Int/FP geometric means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkKind {
    /// SPECint'89-like.
    Integer,
    /// SPECfp'89-like.
    FloatingPoint,
}

impl fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BenchmarkKind::Integer => "integer",
            BenchmarkKind::FloatingPoint => "floating-point",
        })
    }
}

/// One of the nine SPEC'89-like workloads.
///
/// # Example
///
/// ```
/// use tlabp_workloads::{Benchmark, BenchmarkKind};
///
/// let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
/// assert_eq!(names.len(), 9);
/// assert_eq!(Benchmark::by_name("gcc").unwrap().kind(), BenchmarkKind::Integer);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Benchmark {
    name: &'static str,
    kind: BenchmarkKind,
    paper_static_branches: usize,
    has_training_set: bool,
}

impl Benchmark {
    /// Data-memory words every benchmark VM runs with.
    pub const VM_MEMORY_WORDS: usize = 1 << 20;
    /// Instruction budget every benchmark VM runs with.
    pub const VM_MAX_INSTRUCTIONS: u64 = 80_000_000;

    /// All nine benchmarks, integer first (as the paper's tables list
    /// them).
    pub const ALL: [Benchmark; 9] = [
        Benchmark {
            name: "eqntott",
            kind: BenchmarkKind::Integer,
            paper_static_branches: 277,
            has_training_set: false,
        },
        Benchmark {
            name: "espresso",
            kind: BenchmarkKind::Integer,
            paper_static_branches: 556,
            has_training_set: true,
        },
        Benchmark {
            name: "gcc",
            kind: BenchmarkKind::Integer,
            paper_static_branches: 6922,
            has_training_set: true,
        },
        Benchmark {
            name: "li",
            kind: BenchmarkKind::Integer,
            paper_static_branches: 489,
            has_training_set: true,
        },
        Benchmark {
            name: "doduc",
            kind: BenchmarkKind::FloatingPoint,
            paper_static_branches: 1149,
            has_training_set: true,
        },
        Benchmark {
            name: "fpppp",
            kind: BenchmarkKind::FloatingPoint,
            paper_static_branches: 653,
            has_training_set: false,
        },
        Benchmark {
            name: "matrix300",
            kind: BenchmarkKind::FloatingPoint,
            paper_static_branches: 213,
            has_training_set: false,
        },
        Benchmark {
            name: "spice2g6",
            kind: BenchmarkKind::FloatingPoint,
            paper_static_branches: 606,
            has_training_set: true,
        },
        Benchmark {
            name: "tomcatv",
            kind: BenchmarkKind::FloatingPoint,
            paper_static_branches: 370,
            has_training_set: false,
        },
    ];

    /// Looks a benchmark up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<&'static Benchmark> {
        Benchmark::ALL.iter().find(|b| b.name == name)
    }

    /// The benchmarks of one category.
    pub fn of_kind(kind: BenchmarkKind) -> impl Iterator<Item = &'static Benchmark> {
        Benchmark::ALL.iter().filter(move |b| b.kind == kind)
    }

    /// The benchmark's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Integer or floating point.
    #[must_use]
    pub fn kind(&self) -> BenchmarkKind {
        self.kind
    }

    /// The static conditional-branch count the paper's Table 1 reports for
    /// the original benchmark (a scale reference for our stand-in).
    #[must_use]
    pub fn paper_static_branches(&self) -> usize {
        self.paper_static_branches
    }

    /// Whether Table 2 lists a training data set ("NA" entries return
    /// `false`); benchmarks without one are excluded from the
    /// profiled-scheme averages, as in the paper's Figure 11.
    #[must_use]
    pub fn has_training_set(&self) -> bool {
        self.has_training_set
    }

    /// Builds the benchmark's program for `data_set`.
    ///
    /// The instruction sequence (and hence every static branch address) is
    /// identical across data sets; only immediates differ.
    #[must_use]
    pub fn program(&self, data_set: DataSet) -> Program {
        match self.name {
            "eqntott" => eqntott::program(data_set),
            "espresso" => espresso::program(data_set),
            "gcc" => gcc::program(data_set),
            "li" => li::program(data_set),
            "doduc" => doduc::program(data_set),
            "fpppp" => fpppp::program(data_set),
            "matrix300" => matrix300::program(data_set),
            "spice2g6" => spice2g6::program(data_set),
            "tomcatv" => tomcatv::program(data_set),
            other => unreachable!("unknown benchmark {other}"),
        }
    }

    /// Runs the benchmark on the VM and returns its trace.
    ///
    /// # Panics
    ///
    /// Panics if the generated program faults — that would be a bug in the
    /// workload generator, not a user error.
    #[must_use]
    pub fn trace(&self, data_set: DataSet) -> Trace {
        let program = self.program(data_set);
        let mut vm = Vm::with_limits(program, Self::VM_MEMORY_WORDS, Self::VM_MAX_INSTRUCTIONS);
        vm.run().unwrap_or_else(|e| panic!("workload {} faulted: {e}", self.name));
        vm.into_trace()
    }

    /// A fingerprint of everything that determines this benchmark's trace
    /// for `data_set`: the generated instruction sequence and the VM
    /// limits it runs under. Disk-cached trace artifacts are keyed by it,
    /// so editing a workload generator (or the VM budget) invalidates the
    /// stale cache entries automatically instead of silently replaying an
    /// outdated trace.
    ///
    /// The hash folds the `Debug` rendering of each instruction — the
    /// rendering is a total, injective description of the instruction, and
    /// hashing text keeps this independent of in-memory layout.
    #[must_use]
    pub fn fingerprint(&self, data_set: DataSet) -> u64 {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let fold = |hash: u64, word: u64| (hash.rotate_left(5) ^ word).wrapping_mul(SEED);
        let fold_bytes = |mut hash: u64, bytes: &[u8]| {
            let mut chunks = bytes.chunks_exact(8);
            for chunk in &mut chunks {
                hash = fold(hash, u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            }
            let rest = chunks.remainder();
            if !rest.is_empty() {
                let mut word = [0u8; 8];
                word[..rest.len()].copy_from_slice(rest);
                hash = fold(hash, u64::from_le_bytes(word));
            }
            fold(hash, bytes.len() as u64)
        };
        let program = self.program(data_set);
        let mut hash = fold(0, Self::VM_MEMORY_WORDS as u64);
        hash = fold(hash, Self::VM_MAX_INSTRUCTIONS);
        let mut rendered = String::new();
        for inst in program.instructions() {
            rendered.clear();
            fmt::write(&mut rendered, format_args!("{inst:?}")).expect("fmt to String");
            hash = fold_bytes(hash, rendered.as_bytes());
        }
        hash
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn registry_has_four_integer_five_fp() {
        assert_eq!(Benchmark::of_kind(BenchmarkKind::Integer).count(), 4);
        assert_eq!(Benchmark::of_kind(BenchmarkKind::FloatingPoint).count(), 5);
    }

    #[test]
    fn by_name_round_trips() {
        for b in &Benchmark::ALL {
            assert_eq!(Benchmark::by_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::by_name("nasa7"), None, "nasa7 is excluded, as in the paper");
    }

    #[test]
    fn table2_na_entries() {
        let no_training: Vec<&str> =
            Benchmark::ALL.iter().filter(|b| !b.has_training_set()).map(|b| b.name()).collect();
        assert_eq!(no_training, vec!["eqntott", "fpppp", "matrix300", "tomcatv"]);
    }

    /// Every benchmark must keep the same code layout across data sets so
    /// that profiling-based schemes see the same branch addresses.
    #[test]
    fn program_layout_identical_across_data_sets() {
        for b in &Benchmark::ALL {
            let train = b.program(DataSet::Training);
            let test = b.program(DataSet::Testing);
            assert_eq!(
                train.len(),
                test.len(),
                "{}: instruction counts differ between data sets",
                b.name()
            );
            for (i, (a, c)) in train.instructions().iter().zip(test.instructions()).enumerate() {
                assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(c),
                    "{}: instruction {i} changes shape across data sets",
                    b.name()
                );
            }
        }
    }

    /// Smoke-run every benchmark and sanity-check its trace against the
    /// paper's characterization (Section 4.1).
    #[test]
    fn all_benchmarks_run_and_look_reasonable() {
        let mut taken_rates = Vec::new();
        for b in &Benchmark::ALL {
            let trace = b.trace(DataSet::Testing);
            let summary = TraceSummary::from_trace(&trace);
            taken_rates.push(summary.taken_rate);
            assert!(
                summary.dynamic_conditional_branches >= 40_000,
                "{}: only {} dynamic conditional branches",
                b.name(),
                summary.dynamic_conditional_branches
            );
            // Static branch counts within a factor ~3 of Table 1.
            let target = b.paper_static_branches() as f64;
            let actual = summary.static_conditional_branches as f64;
            assert!(
                actual > target / 3.0 && actual < target * 3.0,
                "{}: {actual} static branches vs Table 1's {target}",
                b.name()
            );
            // No benchmark should be overwhelmingly not-taken.
            assert!(
                summary.taken_rate > 0.3,
                "{}: taken rate {} suspiciously low",
                b.name(),
                summary.taken_rate
            );
        }
        // "There are more taken branches than not taken branches according
        // to our simulation results" — holds in aggregate.
        let mean = taken_rates.iter().sum::<f64>() / taken_rates.len() as f64;
        assert!(mean > 0.5, "suite mean taken rate {mean} should exceed 0.5");
    }

    /// Fingerprints must separate programs (across benchmarks *and*
    /// across data sets, whose immediates differ) while staying stable
    /// for repeated builds of the same program.
    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for b in &Benchmark::ALL {
            for ds in [DataSet::Training, DataSet::Testing] {
                let fp = b.fingerprint(ds);
                assert_eq!(fp, b.fingerprint(ds), "{}: fingerprint not deterministic", b.name());
                assert!(seen.insert(fp), "{}/{ds:?}: fingerprint collides", b.name());
            }
        }
    }

    #[test]
    fn training_and_testing_traces_differ() {
        for b in Benchmark::ALL.iter().filter(|b| b.has_training_set()) {
            let train = b.trace(DataSet::Training);
            let test = b.trace(DataSet::Testing);
            assert_ne!(
                train.len(),
                test.len(),
                "{}: training and testing runs should not be identical",
                b.name()
            );
        }
    }
}
