//! `espresso` stand-in: bit-matrix cover manipulation.
//!
//! The original minimizes boolean functions by manipulating cube covers —
//! row/column sweeps over bit matrices with containment tests, bit tests
//! and early-exit scans, all data-dependent. Table 2: training on `cps`,
//! testing on `bca`.

use tlabp_isa::inst::{AluOp, Cond, Inst, Reg};
use tlabp_isa::program::{Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Replicated routine families (Table 1: 556 static conditional branches
/// for espresso; sized to keep the executed-everywhere working set inside
/// the 512-entry BHT).
const FAMILIES: usize = 16;

/// Rows in the bit matrix.
const ROWS: i64 = 24;
/// Bits tested per row in the bit-scan loops.
const BITS: i64 = 16;

const MATRIX_BASE: i64 = 300_000;

pub(crate) fn program(data_set: DataSet) -> Program {
    let (rounds, density, seed) = match data_set {
        // "cps" vs "bca": different cover density and length.
        DataSet::Training => (4, 3, 0x5eed_7001),
        DataSet::Testing => (12, 5, 0x5eed_7002),
    };
    build(rounds, density, seed)
}

fn build(rounds: i64, density: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let round = Reg::new(20);
    let round_limit = Reg::new(21);
    let rows = Reg::new(19);
    let bits = Reg::new(18);

    codegen::seed_rng(&mut b, seed);
    b.li(rows, ROWS);
    b.li(bits, BITS);

    b.li(round_limit, rounds);
    let rounds_loop = codegen::counted_loop_begin(&mut b, "round", round);
    for family in 0..FAMILIES {
        emit_fill(&mut b, family, rows, density);
        emit_containment_pairs(&mut b, family, rows);
        emit_bit_scan(&mut b, family, rows, bits);
        emit_guard_chain(&mut b, family);
    }
    codegen::counted_loop_end(&mut b, rounds_loop, round, round_limit);
    b.halt();
    b.build().expect("espresso generator binds all labels")
}

/// Fills the matrix rows with *reproducible* sparse cube masks: the fill
/// RNG is reseeded per family, so the cover is identical on every round —
/// the induced branch sequences repeat, which is the structure
/// history-based prediction exploits. `density` perturbs the seed
/// (different covers between data sets) without changing code layout.
fn emit_fill(b: &mut ProgramBuilder, family: usize, rows: Reg, density: i64) {
    let i = Reg::new(1);
    let addr = Reg::new(2);
    let word = Reg::new(3);
    codegen::seed_fill_rng(b, 0x0e59_0000 + family as i64 * 97 + density);
    let probe = Reg::new(4);
    let fill = codegen::counted_loop_begin(b, &format!("e{family}_fill"), i);
    let copy_row = b.label(format!("e{family}_copy"));
    let store_row = b.label(format!("e{family}_store"));
    // Covers contain recurring cube shapes: only the first 6 rows are
    // fresh; later rows repeat them (row i = row i-6). The periodic
    // structure is what history-based predictors exploit downstream.
    b.li(probe, 6);
    b.branch(Cond::Ge, i, probe, copy_row);
    // Sparse fresh row: AND of two draws sets each bit with p ≈ 0.25,
    // like a real cover where most literals are absent.
    codegen::emit_fill_rand(b, 1 << BITS);
    b.add(word, regs::RAND, Reg::ZERO);
    codegen::emit_fill_rand(b, 1 << BITS);
    b.alu(AluOp::And, word, word, regs::RAND);
    b.jump(store_row);
    b.bind(copy_row);
    b.addi(addr, i, MATRIX_BASE - 6);
    b.ld(word, addr, 0);
    b.bind(store_row);
    b.addi(addr, i, MATRIX_BASE);
    b.st(word, addr, 0);
    codegen::counted_loop_end(b, fill, i, rows);
}

/// All-pairs containment test: `if (row_i & row_j) == row_i` — the core
/// espresso cover check, data-dependent per pair.
fn emit_containment_pairs(b: &mut ProgramBuilder, family: usize, rows: Reg) {
    let i = Reg::new(1);
    let j = Reg::new(2);
    let row_i = Reg::new(3);
    let row_j = Reg::new(4);
    let meet = Reg::new(5);
    let addr = Reg::new(6);
    let contained = Reg::new(7);

    let outer = codegen::counted_loop_begin(b, &format!("e{family}_ci"), i);
    {
        b.addi(addr, i, MATRIX_BASE);
        b.ld(row_i, addr, 0);
        let inner = codegen::counted_loop_begin(b, &format!("e{family}_cj"), j);
        {
            b.addi(addr, j, MATRIX_BASE);
            b.ld(row_j, addr, 0);
            b.alu(AluOp::And, meet, row_i, row_j);
            let skip = b.label(format!("e{family}_cs"));
            b.branch(Cond::Ne, meet, row_i, skip);
            b.addi(contained, contained, 1);
            b.bind(skip);
        }
        codegen::counted_loop_end(b, inner, j, rows);
    }
    codegen::counted_loop_end(b, outer, i, rows);
}

/// Per-row bit scan with a ~50/50 bit-test branch — the irregular core.
fn emit_bit_scan(b: &mut ProgramBuilder, family: usize, rows: Reg, bits: Reg) {
    let i = Reg::new(1);
    let bit = Reg::new(2);
    let row = Reg::new(3);
    let probe = Reg::new(4);
    let addr = Reg::new(5);
    let ones = Reg::new(7);

    let outer = codegen::counted_loop_begin(b, &format!("e{family}_bi"), i);
    {
        b.addi(addr, i, MATRIX_BASE);
        b.ld(row, addr, 0);
        let inner = codegen::counted_loop_begin(b, &format!("e{family}_bb"), bit);
        {
            b.alu(AluOp::Shr, probe, row, bit);
            b.alu_imm(AluOp::And, probe, probe, 1);
            let clear = b.label(format!("e{family}_bc"));
            b.branch(Cond::Eq, probe, Reg::ZERO, clear);
            b.addi(ones, ones, 1);
            b.bind(clear);
        }
        codegen::counted_loop_end(b, inner, bit, bits);
    }
    codegen::counted_loop_end(b, outer, i, rows);
}

/// A chain of skewed guards standing in for espresso's many heuristic
/// cutoffs.
fn emit_guard_chain(b: &mut ProgramBuilder, family: usize) {
    let acc = Reg::new(9);
    let round = Reg::new(20); // driver round counter (see `build`)
    let mut fixups = codegen::RareGuards::new();
    for g in 0..8 {
        // Mostly one-sided cutoffs (real heuristic guards fire rarely or
        // almost always), some periodic in the round, one in five a
        // genuine coin-flip region.
        let h = family * 11 + g * 17;
        match h % 5 {
            0 | 1 => {
                let percent = 91 + (h % 8) as i64;
                let join = codegen::emit_random_guard(b, &format!("e{family}_g{g}"), percent);
                b.alu_imm(AluOp::Add, acc, acc, 1);
                b.bind(join);
            }
            2 => {
                fixups.random(
                    b,
                    &format!("e{family}_g{g}"),
                    2 + (h % 8) as i64,
                    vec![Inst::AluImm { op: AluOp::Add, rd: acc, a: acc, imm: 2 }],
                );
            }
            3 => {
                fixups.periodic(
                    b,
                    &format!("e{family}_g{g}"),
                    round,
                    (h % 3) as i64,
                    2 + (h % 4) as i64,
                    vec![Inst::AluImm { op: AluOp::Xor, rd: acc, a: acc, imm: 1 }],
                );
            }
            _ => {
                let percent = (40 + h % 25) as i64;
                let join = codegen::emit_random_guard(b, &format!("e{family}_g{g}"), percent);
                b.alu_imm(AluOp::Sub, acc, acc, 1);
                b.bind(join);
            }
        }
    }
    let over = b.label(format!("e{family}_over"));
    b.jump(over);
    fixups.flush(b);
    b.bind(over);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn bit_level_irregularity() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let summary = TraceSummary::from_trace(&vm.into_trace());
        assert!(summary.static_conditional_branches >= 12 * FAMILIES);
        assert!(summary.dynamic_conditional_branches > 80_000);
        assert!(
            summary.taken_rate < 0.95,
            "espresso is data-dependent, taken rate {}",
            summary.taken_rate
        );
    }
}
