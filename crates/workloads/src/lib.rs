//! # SPEC'89-like synthetic workloads
//!
//! The paper evaluates nine SPEC benchmarks (Table 1/2): five floating
//! point (`doduc`, `fpppp`, `matrix300`, `spice2g6`, `tomcatv`) and four
//! integer (`eqntott`, `espresso`, `gcc`, `li`). The benchmark sources and
//! reference inputs are proprietary and the original Motorola 88100 traces
//! no longer exist, so this crate provides nine *programs for our
//! mini-RISC ISA* that stand in for them (DESIGN.md, substitution 2).
//!
//! Each workload is built to reproduce the property of its namesake that
//! matters for branch prediction:
//!
//! * the floating-point stand-ins are loop-regular and highly predictable
//!   (`fpppp`, `matrix300`, `tomcatv` especially — "repetitive loop
//!   execution; thus a very high prediction accuracy is attainable,
//!   independent of the predictors used");
//! * the integer stand-ins (`eqntott`, `espresso`, `gcc`, `li`) have many
//!   conditional branches with irregular, data-dependent behavior — "it is
//!   on the integer benchmarks where a branch predictor's mettle is
//!   tested";
//! * static conditional-branch counts are on the order of Table 1's
//!   (gcc large ≈ thousands, the others hundreds);
//! * each benchmark has distinct *training* and *testing* inputs
//!   (Table 2); the four whose Table 2 training entry is "NA"
//!   (`eqntott`, `fpppp`, `matrix300`, `tomcatv`) report
//!   [`Benchmark::has_training_set`] `false` and are excluded from
//!   profiled-scheme averages, exactly as the paper excludes them from
//!   Figure 11's Static Training curves;
//! * `gcc` emits many traps (the paper attributes its outsized
//!   context-switch degradation to "the large number of traps in gcc").
//!
//! Programs self-generate their input data from a seeded linear
//! congruential generator *inside the ISA*, so a data set is just a seed
//! and scale parameters; everything is bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use tlabp_workloads::{Benchmark, DataSet};
//!
//! let li = Benchmark::by_name("li").expect("li exists");
//! let trace = li.trace(DataSet::Testing);
//! assert!(trace.conditional_branches().count() > 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod codegen;

mod doduc;
mod eqntott;
mod espresso;
mod fpppp;
mod gcc;
mod li;
mod matrix300;
mod spice2g6;
mod tomcatv;

pub use benchmark::{Benchmark, BenchmarkKind, DataSet};
