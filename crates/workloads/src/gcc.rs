//! `gcc` stand-in: a huge generated control-flow graph with frequent
//! traps.
//!
//! The original compiler is the paper's stress case: by far the most
//! static conditional branches (Table 1: 6922) and "the large number of
//! traps in gcc" makes it the benchmark whose prediction accuracy
//! degrades most under context switches (Section 5.1.4). Table 2:
//! training on `cexp.i`, testing on `dbxout.i`.
//!
//! The stand-in generates several hundred "compiler pass" functions, each
//! a chain of guards with per-branch skewed probabilities plus a
//! variable-trip scan loop, driven by a main loop that emits an
//! OS-trap after every 64th function call.

use tlabp_isa::inst::{AluOp, Cond, Inst, Reg};
use tlabp_isa::program::{Label, Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Number of generated functions (Table 1: 6922 static conditional
/// branches for gcc; at ~11 branches per function this lands in the same
/// order of magnitude).
const FUNCTIONS: usize = 400;

/// Hot functions, called several times on every pass — real programs
/// concentrate their dynamic branches on a small static working set,
/// which is what lets a 512-entry BHT work at all.
const HOT: usize = 20;
/// How many times each hot function is called back-to-back per pass —
/// real call sites loop locally, which keeps BHT reuse distances short.
const HOT_REPS: usize = 4;
/// Cold functions activated per pass (a rotating window, so every static
/// branch is eventually exercised).
const ROTATE: usize = 8;

pub(crate) fn program(data_set: DataSet) -> Program {
    let (passes, seed) = match data_set {
        // "cexp.i" is a much smaller source file than "dbxout.i".
        DataSet::Training => (48, 0x5eed_9001),
        DataSet::Testing => (130, 0x5eed_9002),
    };
    build(passes, seed)
}

fn build(passes: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let pass = Reg::new(20);
    let pass_limit = Reg::new(21);
    let segment = Reg::new(22);
    let probe = Reg::new(23);

    codegen::seed_rng(&mut b, seed);

    let entries: Vec<Label> = (0..FUNCTIONS).map(|f| b.label(format!("cc{f}"))).collect();
    let end = b.label("end");

    let cold = FUNCTIONS - HOT;
    let segments = cold / ROTATE;

    b.li(pass_limit, passes);
    let driver = codegen::counted_loop_begin(&mut b, "driver", pass);
    {
        // Hot working set: each hot function called several times
        // back-to-back (short BHT reuse distances, like real loops over
        // call sites).
        for entry in &entries[..HOT] {
            for _ in 0..HOT_REPS {
                b.call(*entry);
            }
        }
        // Simulated system call (file IO): the trace trap triggers a
        // context switch in the simulator — gcc's signature behavior.
        b.trap(0);

        // One rotating segment of cold functions per pass.
        b.alu_imm(AluOp::Rem, segment, pass, segments as i64);
        for s in 0..segments {
            let skip = b.label(format!("seg{s}_skip"));
            b.li(probe, s as i64);
            b.branch(Cond::Ne, segment, probe, skip);
            for entry in &entries[HOT + s * ROTATE..HOT + (s + 1) * ROTATE] {
                b.call(*entry);
            }
            b.bind(skip);
        }
        b.trap(1);
    }
    codegen::counted_loop_end(&mut b, driver, pass, pass_limit);
    b.jump(end);

    for (f, entry) in entries.iter().enumerate() {
        b.bind(*entry);
        // Irregular function padding: breaks code-stride aliasing in
        // set-indexed prediction tables, as real variable-size functions
        // do.
        for _ in 0..(f * 37 + 13) % 23 {
            b.nop();
        }
        emit_pass_function(&mut b, f);
        b.ret();
    }

    b.bind(end);
    b.halt();
    b.build().expect("gcc generator binds all labels")
}

/// One compiler-pass function: eight skewed guards (per-branch
/// probabilities spread across 5%–95%) and a short scan loop with two
/// data-dependent branches.
fn emit_pass_function(b: &mut ProgramBuilder, f: usize) {
    let acc = Reg::new(1);
    let trip = Reg::new(2);
    let counter = Reg::new(3);
    let token = Reg::new(4);
    let probe = Reg::new(5);

    let pass = Reg::new(20); // driver pass counter (see `build`)
    let mut fixups = codegen::RareGuards::new();
    for g in 0..8 {
        let h = f * 37 + g * 53 + 11;
        // Real compiler branches are heavily skewed: most guards fire
        // almost never or almost always; some are periodic in the pass
        // (e.g. "dump after every Nth pass"); a minority sit in the
        // middle.
        match h % 8 {
            0..=2 => {
                // Common fast path, inline.
                let percent = 93 + (h % 6) as i64;
                let join = codegen::emit_random_guard(b, &format!("cc{f}_g{g}"), percent);
                b.alu_imm(AluOp::Add, acc, acc, (g + 1) as i64);
                b.bind(join);
            }
            3 | 4 => {
                // Rare error/edge path, out of line.
                let percent = 1 + (h % 7) as i64;
                fixups.random(
                    b,
                    &format!("cc{f}_g{g}"),
                    percent,
                    vec![Inst::AluImm { op: AluOp::Add, rd: acc, a: acc, imm: 9 }],
                );
            }
            5 | 6 => {
                // Periodic in the pass number: pure repeating structure.
                fixups.periodic(
                    b,
                    &format!("cc{f}_g{g}"),
                    pass,
                    (h % 7) as i64,
                    2 + (h % 5) as i64,
                    vec![Inst::AluImm { op: AluOp::Xor, rd: acc, a: acc, imm: 5 }],
                );
            }
            _ => {
                // Genuinely hard data-dependent branch (biased, as real
                // hard branches still are).
                let percent = (62 + h % 24) as i64;
                let join = codegen::emit_random_guard(b, &format!("cc{f}_g{g}"), percent);
                b.alu_imm(AluOp::Sub, acc, acc, 1);
                b.bind(join);
            }
        }
    }

    // Token scan loop over a *fixed* per-function token stream: a
    // compiler re-scans the same source constructs on every pass, so the
    // branch sequence repeats exactly — trivial for pattern history,
    // while counters only get the stream's bias.
    let _ = pass; // pass drives the periodic guards above
    codegen::seed_fill_rng(b, 0x6cc0_0000 + f as i64 * 131);
    codegen::emit_fill_rand(b, 4);
    b.addi(trip, regs::RAND, 3);
    b.li(counter, 0);
    let body = b.label(format!("cc{f}_scan"));
    b.bind(body);
    {
        codegen::emit_fill_rand(b, 256);
        b.add(token, regs::RAND, Reg::ZERO);
        // Is it an "identifier"? (three of four token kinds are.)
        b.alu_imm(AluOp::And, probe, token, 3);
        let not_ident = b.label(format!("cc{f}_ni"));
        b.branch(Cond::Eq, probe, Reg::ZERO, not_ident);
        b.alu_imm(AluOp::Add, acc, acc, 1);
        b.bind(not_ident);
        // Is it "rare punctuation"? (~6%)
        b.li(probe, 16);
        let not_punct = b.label(format!("cc{f}_np"));
        b.branch(Cond::Ge, token, probe, not_punct);
        b.alu_imm(AluOp::Sub, acc, acc, 1);
        b.bind(not_punct);
    }
    b.addi(counter, counter, 1);
    b.branch(Cond::Lt, counter, trip, body);

    // Cold paths past the hot code.
    let over = b.label(format!("cc{f}_over"));
    b.jump(over);
    fixups.flush(b);
    b.bind(over);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn large_static_footprint_and_many_traps() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let summary = TraceSummary::from_trace(&vm.into_trace());
        assert!(
            summary.static_conditional_branches > 3000,
            "gcc must have thousands of static branches, got {}",
            summary.static_conditional_branches
        );
        assert!(summary.traps > 100, "gcc must trap frequently, got {} traps", summary.traps);
        assert!(summary.dynamic_conditional_branches > 100_000);
    }

    #[test]
    fn training_input_is_smaller() {
        let train = {
            let mut vm = Vm::with_limits(program(DataSet::Training), 1 << 20, 80_000_000);
            vm.run().unwrap();
            vm.into_trace()
        };
        let test = {
            let mut vm = Vm::with_limits(program(DataSet::Testing), 1 << 20, 80_000_000);
            vm.run().unwrap();
            vm.into_trace()
        };
        assert!(train.total_instructions() < test.total_instructions() / 2);
    }
}
