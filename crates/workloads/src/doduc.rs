//! `doduc` stand-in: Monte-Carlo nuclear-reactor kernel.
//!
//! The original is a large FORTRAN Monte-Carlo simulation with many
//! subroutines and data-dependent conditionals — the paper groups it with
//! the integer benchmarks as "more interesting ... many conditional
//! branches and irregular branch behavior". Table 2: training on
//! `tiny doducin`, testing on `doducin`.
//!
//! The stand-in is a bank of subroutines, each mixing probability-skewed
//! guards (probabilities vary per subroutine), short variable-trip loops,
//! and carried state, driven from a repeated main loop.

use tlabp_isa::inst::{AluOp, Cond, Inst, Reg};
use tlabp_isa::program::{Label, Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Number of simulated subroutines (Table 1: 1149 static conditional
/// branches for doduc).
const FUNCTIONS: usize = 150;

/// Hot subroutines, each called three times back-to-back per round.
const HOT: usize = 18;
/// Cold subroutines activated per round (rotating window).
const ROTATE: usize = 12;

pub(crate) fn program(data_set: DataSet) -> Program {
    let (rounds, seed) = match data_set {
        // "tiny doducin": a shorter run over different data.
        DataSet::Training => (60, 0x5eed_1001),
        DataSet::Testing => (160, 0x5eed_1002),
    };
    build(rounds, seed)
}

fn build(rounds: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let round = Reg::new(20);
    let round_limit = Reg::new(21);
    let segment = Reg::new(22);
    let probe = Reg::new(23);

    codegen::seed_rng(&mut b, seed);

    // Declare all function labels up front so the driver can call forward.
    let entries: Vec<Label> = (0..FUNCTIONS).map(|f| b.label(format!("fn{f}"))).collect();
    let driver_end = b.label("driver_end");

    let cold = FUNCTIONS - HOT;
    let segments = cold / ROTATE;

    b.li(round_limit, rounds);
    let driver = codegen::counted_loop_begin(&mut b, "driver", round);
    {
        // Hot physics kernels dominate the dynamic profile; back-to-back
        // calls keep BHT reuse distances short, like real inner loops.
        for entry in &entries[..HOT] {
            for _ in 0..3 {
                b.call(*entry);
            }
        }
        // Rotating cold slice: every subroutine executes over the run.
        b.alu_imm(AluOp::Rem, segment, round, segments as i64);
        for s in 0..segments {
            let skip = b.label(format!("dseg{s}_skip"));
            b.li(probe, s as i64);
            b.branch(Cond::Ne, segment, probe, skip);
            for entry in &entries[HOT + s * ROTATE..HOT + (s + 1) * ROTATE] {
                b.call(*entry);
            }
            b.bind(skip);
        }
    }
    codegen::counted_loop_end(&mut b, driver, round, round_limit);
    b.jump(driver_end);

    for (f, entry) in entries.iter().enumerate() {
        b.bind(*entry);
        // Irregular padding breaks code-stride aliasing across the
        // replicated subroutines.
        for _ in 0..(f * 41 + 7) % 23 {
            b.nop();
        }
        emit_function(&mut b, f);
        b.ret();
    }

    b.bind(driver_end);
    b.halt();
    b.build().expect("doduc generator binds all labels")
}

/// One physics subroutine: three skewed guards, a variable-trip inner
/// loop with two data-dependent branches, and an accumulator update.
fn emit_function(b: &mut ProgramBuilder, f: usize) {
    let acc = Reg::new(1);
    let trip = Reg::new(2);
    let counter = Reg::new(3);
    let sample = Reg::new(4);
    let threshold = Reg::new(5);

    let round = Reg::new(20); // driver round counter (see `build`)
    let mut fixups = codegen::RareGuards::new();

    // Guard 1: common fast path, inline then-block (94-98%).
    let p1 = 94 + ((f * 7 + 5) % 5) as i64;
    let j1 = codegen::emit_random_guard(b, &format!("fn{f}_g1"), p1);
    b.alu_imm(AluOp::Add, acc, acc, 1);
    b.bind(j1);
    // Guard 2: rare correction path, out of line (1-5%).
    let p2 = 1 + ((f * 13 + 31) % 5) as i64;
    fixups.random(
        b,
        &format!("fn{f}_g2"),
        p2,
        vec![Inst::AluImm { op: AluOp::Sub, rd: acc, a: acc, imm: 1 }],
    );
    // Guard 3: periodic in the driver round (every 2nd-6th round) —
    // repeating structure only pattern history captures.
    fixups.periodic(
        b,
        &format!("fn{f}_g3"),
        round,
        (f % 5) as i64,
        2 + (f % 5) as i64,
        vec![Inst::AluImm { op: AluOp::Xor, rd: acc, a: acc, imm: 3 }],
    );

    // Inner loop over a *fixed* per-subroutine sample stream (the same
    // input deck is processed every round): the per-call branch sequence
    // repeats exactly — learnable by pattern history, opaque to
    // per-branch counters, which only see the bias.
    codegen::seed_fill_rng(b, 0x0d0d_0000 + f as i64 * 211);
    codegen::emit_fill_rand(b, 6);
    b.addi(trip, regs::RAND, 1);
    b.li(counter, 0);
    let body = b.label(format!("fn{f}_loop"));
    b.bind(body);
    {
        codegen::emit_fill_rand(b, 100);
        b.alu_imm(AluOp::Add, sample, regs::RAND, 0);
        // Low-bits test: fires for one sample in four, and the sample
        // stream repeats — biased for counters, exact for history.
        b.alu_imm(AluOp::And, threshold, sample, 3);
        let even = b.label(format!("fn{f}_even"));
        b.branch(Cond::Ne, threshold, Reg::ZERO, even);
        b.alu_imm(AluOp::Add, acc, acc, 2);
        b.bind(even);
        // Magnitude branch: taken ~70% (and repeats with the stream).
        b.li(threshold, 70);
        let small = b.label(format!("fn{f}_small"));
        b.branch(Cond::Lt, sample, threshold, small);
        b.alu_imm(AluOp::Mul, acc, acc, 3);
        b.bind(small);
    }
    b.addi(counter, counter, 1);
    b.branch(Cond::Lt, counter, trip, body);

    // Cold paths past the hot code; control never falls into them.
    let over = b.label(format!("fn{f}_over"));
    b.jump(over);
    fixups.flush(b);
    b.bind(over);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn irregular_but_biased_taken() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let trace = vm.into_trace();
        let summary = TraceSummary::from_trace(&trace);
        assert!(summary.static_conditional_branches >= 6 * FUNCTIONS);
        assert!(summary.dynamic_conditional_branches > 80_000);
        // Irregular: taken rate well away from 1.0, unlike the FP
        // loop-bound codes.
        assert!(
            summary.taken_rate < 0.92,
            "doduc should be irregular, taken rate {}",
            summary.taken_rate
        );
        // Calls/returns present (subroutine-heavy).
        assert!(summary.mix.calls > 5_000);
        assert_eq!(summary.mix.calls, summary.mix.returns);
    }
}
