//! `eqntott` stand-in: comparison-dominated truth-table manipulation.
//!
//! The original converts boolean equations to truth tables; its run time
//! is dominated by a comparison routine over bit vectors called from
//! sorting — heavily data-dependent compare-and-branch loops. Table 2
//! lists only a testing input (`int_pri_3.eqn`); no training set.
//!
//! The stand-in runs families of classic comparison kernels over
//! pseudo-random arrays: insertion sort (data-dependent inner `while`),
//! binary search, mostly-equal vector comparison, and scan loops.

use tlabp_isa::inst::{AluOp, Cond, Inst, Reg};
use tlabp_isa::program::{Program, ProgramBuilder};

use crate::benchmark::DataSet;
use crate::codegen::{self, regs};

/// Number of replicated kernel families (Table 1: 277 static conditional
/// branches for eqntott).
const FAMILIES: usize = 8;

const ARRAY_BASE: i64 = 0;
const VEC_A_BASE: i64 = 200_000;
const VEC_B_BASE: i64 = 210_000;

pub(crate) fn program(data_set: DataSet) -> Program {
    let (n, rounds, seed) = match data_set {
        DataSet::Training => (20, 10, 0x5eed_6001),
        DataSet::Testing => (24, 24, 0x5eed_6002),
    };
    build(n, rounds, seed)
}

fn build(n: i64, rounds: i64, seed: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let round = Reg::new(20);
    let round_limit = Reg::new(21);
    let n_reg = Reg::new(19);

    codegen::seed_rng(&mut b, seed);
    b.li(n_reg, n);

    b.li(round_limit, rounds);
    let rounds_loop = codegen::counted_loop_begin(&mut b, "round", round);
    let rep = Reg::new(16);
    let rep_limit = Reg::new(17);
    for family in 0..FAMILIES {
        emit_fill(&mut b, family, n_reg);
        emit_insertion_sort(&mut b, family, n_reg);
        emit_binary_searches(&mut b, family, n_reg);
        // Bit-vector comparison dominates real eqntott (it is the routine
        // the paper's related work singles out): repeat the scan, as the
        // quadratic compare loop does.
        b.li(rep_limit, 8);
        let rep_loop = codegen::counted_loop_begin(&mut b, &format!("f{family}_reps"), rep);
        emit_vector_compare(&mut b, family, n_reg);
        codegen::counted_loop_end(&mut b, rep_loop, rep, rep_limit);
        emit_scan(&mut b, family, n_reg);
    }
    codegen::counted_loop_end(&mut b, rounds_loop, round, round_limit);
    b.halt();
    b.build().expect("eqntott generator binds all labels")
}

/// Fills the working array with keys from a *cyclic* stream (period 2 in
/// the round counter: the same two inputs alternate, so the sort's branch
/// sequences repeat — real eqntott reprocesses similar truth tables) and
/// the two bit vectors with mostly-equal words.
fn emit_fill(b: &mut ProgramBuilder, family: usize, n_reg: Reg) {
    let i = Reg::new(1);
    let addr = Reg::new(2);
    let round = Reg::new(20); // driver round counter (see `build`)
    let mut fixups = codegen::RareGuards::new();
    codegen::seed_fill_rng_periodic(b, round, 2, 0x0e97_0000 + family as i64 * 389);
    let fill = codegen::counted_loop_begin(b, &format!("f{family}_fill"), i);
    codegen::emit_fill_rand(b, 10_000);
    b.addi(addr, i, ARRAY_BASE);
    b.st(regs::RAND, addr, 0);
    // Vector A word.
    codegen::emit_fill_rand(b, 64);
    b.addi(addr, i, VEC_A_BASE);
    b.st(regs::RAND, addr, 0);
    // Vector B: equal to A ~90% of the time (eqntott's comparisons are
    // mostly-equal until a late difference); the rare divergence is a
    // cold out-of-line path.
    b.addi(addr, i, VEC_B_BASE);
    b.st(regs::RAND, addr, 0);
    fixups.random(
        b,
        &format!("f{family}_diff"),
        10,
        vec![
            Inst::AluImm { op: AluOp::Add, rd: regs::RAND, a: regs::RAND, imm: 1 },
            Inst::Store { src: regs::RAND, base: addr, offset: 0 },
        ],
    );
    codegen::counted_loop_end(b, fill, i, n_reg);
    let over = b.label(format!("f{family}_fill_over"));
    b.jump(over);
    fixups.flush(b);
    b.bind(over);
}

/// Insertion sort: the inner while-loop trip count depends entirely on
/// the data — the irregular behavior that punishes static schemes.
fn emit_insertion_sort(b: &mut ProgramBuilder, family: usize, n_reg: Reg) {
    let i = Reg::new(1);
    let j = Reg::new(2);
    let key = Reg::new(3);
    let cur = Reg::new(4);
    let addr = Reg::new(5);
    let one = Reg::new(6);

    b.li(one, 1);
    b.li(i, 1);
    // Bottom-tested loops, the shape a compiler emits: backward branches
    // are taken while iterating.
    let outer = b.label(format!("f{family}_sort_i"));
    b.bind(outer);
    {
        b.addi(addr, i, ARRAY_BASE);
        b.ld(key, addr, 0);
        b.add(j, i, Reg::ZERO);
        let shift = b.label(format!("f{family}_sort_w"));
        let place = b.label(format!("f{family}_sort_p"));
        b.bind(shift);
        b.branch(Cond::Le, j, Reg::ZERO, place);
        b.addi(addr, j, ARRAY_BASE - 1);
        b.ld(cur, addr, 0);
        b.branch(Cond::Le, cur, key, place);
        b.addi(addr, j, ARRAY_BASE);
        b.st(cur, addr, 0);
        b.sub(j, j, one);
        b.branch(Cond::Gt, j, Reg::ZERO, shift); // backward, mostly taken
        b.bind(place);
        b.addi(addr, j, ARRAY_BASE);
        b.st(key, addr, 0);
    }
    b.add(i, i, one);
    b.branch(Cond::Lt, i, n_reg, outer); // backward, taken n-2 times
}

/// Binary searches over the (now sorted) array: log-depth compare chains.
fn emit_binary_searches(b: &mut ProgramBuilder, family: usize, n_reg: Reg) {
    let q = Reg::new(1);
    let queries = Reg::new(2);
    let lo = Reg::new(3);
    let hi = Reg::new(4);
    let mid = Reg::new(5);
    let value = Reg::new(6);
    let addr = Reg::new(7);
    let needle = Reg::new(8);

    b.li(queries, 16);
    let loop_q = codegen::counted_loop_begin(b, &format!("f{family}_bs_q"), q);
    {
        // Needles come from the same cyclic stream as the data, so the
        // search paths repeat (real queries hit recurring keys).
        codegen::emit_fill_rand(b, 10_000);
        b.add(needle, regs::RAND, Reg::ZERO);
        b.li(lo, 0);
        b.add(hi, n_reg, Reg::ZERO);
        let probe = b.label(format!("f{family}_bs_probe"));
        let found = b.label(format!("f{family}_bs_out"));
        b.bind(probe);
        b.branch(Cond::Ge, lo, hi, found);
        b.add(mid, lo, hi);
        b.alu_imm(AluOp::Shr, mid, mid, 1);
        b.addi(addr, mid, ARRAY_BASE);
        b.ld(value, addr, 0);
        let go_right = b.label(format!("f{family}_bs_r"));
        b.branch(Cond::Lt, value, needle, go_right);
        b.add(hi, mid, Reg::ZERO);
        b.jump(probe);
        b.bind(go_right);
        b.addi(lo, mid, 1);
        b.jump(probe);
        b.bind(found);
    }
    codegen::counted_loop_end(b, loop_q, q, queries);
}

/// Bit-vector comparison: scan until the first difference; with
/// mostly-equal vectors the not-equal exit is rare — the signature
/// eqntott branch profile.
fn emit_vector_compare(b: &mut ProgramBuilder, family: usize, n_reg: Reg) {
    let i = Reg::new(1);
    let a = Reg::new(2);
    let v = Reg::new(3);
    let addr = Reg::new(4);

    let scan = codegen::counted_loop_begin(b, &format!("f{family}_cmp"), i);
    b.addi(addr, i, VEC_A_BASE);
    b.ld(a, addr, 0);
    b.addi(addr, i, VEC_B_BASE);
    b.ld(v, addr, 0);
    let equal = b.label(format!("f{family}_cmp_eq"));
    b.branch(Cond::Eq, a, v, equal);
    b.alu_imm(AluOp::Add, Reg::new(9), Reg::new(9), 1); // difference tally
    b.bind(equal);
    codegen::counted_loop_end(b, scan, i, n_reg);
}

/// Min/max scan with two data-dependent updates.
fn emit_scan(b: &mut ProgramBuilder, family: usize, n_reg: Reg) {
    let i = Reg::new(1);
    let value = Reg::new(2);
    let min = Reg::new(3);
    let max = Reg::new(4);
    let addr = Reg::new(5);

    b.li(min, i64::MAX);
    b.li(max, i64::MIN);
    let scan = codegen::counted_loop_begin(b, &format!("f{family}_scan"), i);
    b.addi(addr, i, ARRAY_BASE);
    b.ld(value, addr, 0);
    let not_min = b.label(format!("f{family}_nmin"));
    b.branch(Cond::Ge, value, min, not_min);
    b.add(min, value, Reg::ZERO);
    b.bind(not_min);
    let not_max = b.label(format!("f{family}_nmax"));
    b.branch(Cond::Le, value, max, not_max);
    b.add(max, value, Reg::ZERO);
    b.bind(not_max);
    codegen::counted_loop_end(b, scan, i, n_reg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_isa::vm::Vm;
    use tlabp_trace::stats::TraceSummary;

    #[test]
    fn comparison_heavy_and_irregular() {
        let program = program(DataSet::Testing);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let summary = TraceSummary::from_trace(&vm.into_trace());
        assert!(summary.static_conditional_branches >= 10 * FAMILIES);
        assert!(summary.dynamic_conditional_branches > 80_000);
        assert!(
            summary.taken_rate < 0.95,
            "eqntott should be data-dependent, taken rate {}",
            summary.taken_rate
        );
    }

    #[test]
    fn sort_really_sorts() {
        // Run one round and check the array is sorted at halt.
        let program = build(16, 1, 777);
        let mut vm = Vm::with_limits(program, 1 << 20, 80_000_000);
        vm.run().unwrap();
        let values: Vec<i64> = (0..16).map(|w| vm.mem(w)).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(values, sorted);
    }
}
