//! An inlineable multiply-fold hasher for the simulation hot path.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per lookup — measurable when
//! the ideal branch history table and the profiling tables are probed
//! once or twice per simulated branch. Simulation keys are branch
//! addresses from traces we generate ourselves, so collision-flooding
//! resistance buys nothing here.
//!
//! This is the FxHash function used throughout rustc (a Fowler–Noll–Vo
//! variant folding each word with a multiply by a golden-ratio-derived
//! constant), reimplemented in-tree because the build must not touch the
//! registry. For `u64` keys — every hot map in this repository — hashing
//! is a rotate, a xor and one multiply.
//!
//! # Example
//!
//! ```
//! use tlabp_core::fxhash::FxHashMap;
//!
//! let mut map: FxHashMap<u64, u32> = FxHashMap::default();
//! map.insert(0x4000, 7);
//! assert_eq!(map.get(&0x4000), Some(&7));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, the multiplicative constant of FxHash's word fold.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — drop-in for hot simulation maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_hashers() {
        let build = FxBuildHasher::default();
        assert_eq!(build.hash_one(0xdead_beefu64), build.hash_one(0xdead_beefu64));
        assert_ne!(build.hash_one(1u64), build.hash_one(2u64));
    }

    #[test]
    fn byte_stream_equivalence_is_not_required_but_stable() {
        let build = FxBuildHasher::default();
        let a = build.hash_one("hello world");
        let b = build.hash_one("hello world");
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(42, "x");
        assert_eq!(map[&42], "x");
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
    }

    #[test]
    fn spreads_dense_word_aligned_pcs() {
        // Branch pcs are dense multiples of 4; the hash must not collapse
        // them into few buckets.
        let build = FxBuildHasher::default();
        let hashes: std::collections::HashSet<u64> =
            (0..1024u64).map(|w| build.hash_one(0x1_0000 + w * 4) >> 54).collect();
        assert!(hashes.len() > 100, "only {} distinct top-10-bit values", hashes.len());
    }
}
