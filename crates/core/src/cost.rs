//! The hardware cost model of Section 3.4 (Equations 3–6).
//!
//! The paper characterizes the relative chip-area costs of the three
//! variations with a parametric model over base costs for storage cells,
//! decoders, comparators, multiplexers, shifters, LRU incrementors and the
//! pattern-update finite-state machine. We implement both the exact
//! Equation 3 and the simplified closed forms the paper derives for GAg
//! (Equation 4), PAg (Equation 5) and PAp (Equation 6).

/// The constant base costs of Section 3.4: C_s, C_d, C_c, C_m, C_sh, C_i
/// and C_a.
///
/// The paper does not publish numeric values; the default sets every
/// constant to 1.0, which preserves the relative comparisons (who is
/// cheapest at equal accuracy) the paper draws from the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// C_s — one bit of storage.
    pub storage: f64,
    /// C_d — address decoder.
    pub decoder: f64,
    /// C_c — comparator bit.
    pub comparator: f64,
    /// C_m — multiplexer bit.
    pub mux: f64,
    /// C_sh — shifter bit.
    pub shifter: f64,
    /// C_i — LRU incrementor bit.
    pub incrementor: f64,
    /// C_a — pattern-history state-update finite-state machine.
    pub automaton: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        CostConstants {
            storage: 1.0,
            decoder: 1.0,
            comparator: 1.0,
            mux: 1.0,
            shifter: 1.0,
            incrementor: 1.0,
            automaton: 1.0,
        }
    }
}

/// Geometry of a branch history table for costing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BhtGeometry {
    /// Table size `h` (number of entries). Must be a power of two.
    pub entries: usize,
    /// Associativity `2^j`. Must be a power of two dividing `entries`.
    pub ways: usize,
}

impl BhtGeometry {
    /// The paper's standard 4-way 512-entry table.
    pub const PAPER_DEFAULT: BhtGeometry = BhtGeometry { entries: 512, ways: 4 };

    fn validate(self) {
        assert!(self.entries.is_power_of_two(), "entries must be a power of two");
        assert!(self.ways.is_power_of_two(), "ways must be a power of two");
        assert!(self.ways <= self.entries, "ways cannot exceed entries");
    }

    /// `i = log2(h)`.
    #[must_use]
    pub fn index_bits(self) -> u32 {
        self.entries.trailing_zeros()
    }

    /// `j = log2(associativity)`.
    #[must_use]
    pub fn way_bits(self) -> u32 {
        self.ways.trailing_zeros()
    }
}

/// The hardware cost model, parameterized by the base-cost constants and
/// the machine's branch-address width `a`.
///
/// # Example
///
/// ```
/// use tlabp_core::cost::{BhtGeometry, CostModel};
///
/// let model = CostModel::paper_default();
/// // Figure 8: the three configurations reaching ~97% accuracy.
/// let gag = model.gag_cost(18, 2);
/// let pag = model.pag_cost(BhtGeometry::PAPER_DEFAULT, 12, 2);
/// let pap = model.pap_cost(BhtGeometry::PAPER_DEFAULT, 6, 2);
/// assert!(pag < gag && pag < pap, "PAg is the cheapest at equal accuracy");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    constants: CostConstants,
    address_bits: u32,
}

impl CostModel {
    /// Creates a model with explicit constants and address width.
    ///
    /// # Panics
    ///
    /// Panics if `address_bits` is zero.
    #[must_use]
    pub fn new(constants: CostConstants, address_bits: u32) -> Self {
        assert!(address_bits > 0, "address width must be positive");
        CostModel { constants, address_bits }
    }

    /// Unit constants with a 30-bit branch address (word-addressed 32-bit
    /// machine), the configuration used throughout our experiments.
    #[must_use]
    pub fn paper_default() -> Self {
        CostModel::new(CostConstants::default(), 30)
    }

    /// The branch-address width `a`.
    #[must_use]
    pub fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Exact BHT cost: storage + accessing logic + updating logic
    /// (the first brace of Equation 3).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid or violates the equation's
    /// constraint `a + j >= i`.
    #[must_use]
    pub fn bht_cost(&self, geometry: BhtGeometry, history_bits: u32) -> f64 {
        geometry.validate();
        let c = &self.constants;
        let h = geometry.entries as f64;
        let a = f64::from(self.address_bits);
        let i = f64::from(geometry.index_bits());
        let j = f64::from(geometry.way_bits());
        let k = f64::from(history_bits);
        let assoc = geometry.ways as f64; // 2^j
        assert!(f64::from(self.address_bits) + j >= i, "equation 3 requires a + j >= i");

        let tag_bits = a - i + j;
        let storage = h * (tag_bits + k + 1.0 + j) * c.storage;
        let accessing = h * c.decoder + assoc * tag_bits * c.comparator + assoc * k * c.mux;
        let updating = h * k * c.shifter + assoc * j * c.incrementor;
        storage + accessing + updating
    }

    /// Exact cost of one pattern history table with `2^history_bits`
    /// entries of `s = pattern_bits` bits (the second brace of Equation 3).
    #[must_use]
    pub fn pht_cost(&self, history_bits: u32, pattern_bits: u32) -> f64 {
        let c = &self.constants;
        let entries = (1u64 << history_bits) as f64;
        let s = f64::from(pattern_bits);
        let storage = entries * s * c.storage;
        let accessing = entries * c.decoder;
        let updating = s * (1u64 << (pattern_bits + 1)) as f64 * c.automaton;
        storage + accessing + updating
    }

    /// Exact Equation 3: BHT cost plus `pattern_tables` pattern history
    /// tables.
    #[must_use]
    pub fn full_cost(
        &self,
        geometry: BhtGeometry,
        history_bits: u32,
        pattern_bits: u32,
        pattern_tables: usize,
    ) -> f64 {
        self.bht_cost(geometry, history_bits)
            + pattern_tables as f64 * self.pht_cost(history_bits, pattern_bits)
    }

    /// Simplified GAg cost (Equation 4):
    /// `(k+1)·C_s + k·C_sh + 2^k·(s·C_s + C_d)`.
    #[must_use]
    pub fn gag_cost(&self, history_bits: u32, pattern_bits: u32) -> f64 {
        let c = &self.constants;
        let k = f64::from(history_bits);
        let entries = (1u64 << history_bits) as f64;
        let s = f64::from(pattern_bits);
        (k + 1.0) * c.storage + k * c.shifter + entries * (s * c.storage + c.decoder)
    }

    /// Simplified PAg cost (Equation 5):
    /// `h·[(a + 2j + k + 1 − i)·C_s + C_d + k·C_sh] + 2^k·(s·C_s + C_d)`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid or `a + j < i`.
    #[must_use]
    pub fn pag_cost(&self, geometry: BhtGeometry, history_bits: u32, pattern_bits: u32) -> f64 {
        self.pag_bht_term(geometry, history_bits) + self.pht_simplified(history_bits, pattern_bits)
    }

    /// Simplified PAp cost (Equation 6): the PAg BHT term plus `h` pattern
    /// history tables.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid or `a + j < i`.
    #[must_use]
    pub fn pap_cost(&self, geometry: BhtGeometry, history_bits: u32, pattern_bits: u32) -> f64 {
        self.pag_bht_term(geometry, history_bits)
            + geometry.entries as f64 * self.pht_simplified(history_bits, pattern_bits)
    }

    fn pag_bht_term(&self, geometry: BhtGeometry, history_bits: u32) -> f64 {
        geometry.validate();
        let c = &self.constants;
        let h = geometry.entries as f64;
        let a = f64::from(self.address_bits);
        let i = f64::from(geometry.index_bits());
        let j = f64::from(geometry.way_bits());
        let k = f64::from(history_bits);
        assert!(a + j >= i, "equations 5/6 require a + j >= i");
        h * ((a + 2.0 * j + k + 1.0 - i) * c.storage + c.decoder + k * c.shifter)
    }

    fn pht_simplified(&self, history_bits: u32, pattern_bits: u32) -> f64 {
        let c = &self.constants;
        let entries = (1u64 << history_bits) as f64;
        entries * (f64::from(pattern_bits) * c.storage + c.decoder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::paper_default()
    }

    #[test]
    fn gag_cost_grows_exponentially_with_history_length() {
        let m = model();
        let c12 = m.gag_cost(12, 2);
        let c13 = m.gag_cost(13, 2);
        let c18 = m.gag_cost(18, 2);
        // Doubling k's table: cost ratio approaches 2 per extra bit.
        assert!(c13 / c12 > 1.9);
        assert!(c18 > 60.0 * c12);
    }

    #[test]
    fn pag_cost_linear_in_bht_size() {
        let m = model();
        let small = BhtGeometry { entries: 256, ways: 4 };
        let large = BhtGeometry { entries: 512, ways: 4 };
        let delta = m.pag_cost(large, 12, 2) - m.pag_cost(small, 12, 2);
        // The PHT term cancels; the difference is the extra 256 BHT entries.
        assert!(delta > 0.0);
        let per_entry = delta / 256.0;
        // Each entry costs roughly (a + 2j + k + 1 - i) + 1 + k units.
        assert!(per_entry > 20.0 && per_entry < 80.0, "per-entry cost {per_entry}");
    }

    #[test]
    fn figure8_ordering_pag_cheapest() {
        // GAg(18), PAg(12), PAp(6) all reach ~97% accuracy; the paper
        // concludes PAg is the cheapest.
        let m = model();
        let gag = m.gag_cost(18, 2);
        let pag = m.pag_cost(BhtGeometry::PAPER_DEFAULT, 12, 2);
        let pap = m.pap_cost(BhtGeometry::PAPER_DEFAULT, 6, 2);
        assert!(pag < gag, "PAg ({pag}) must undercut GAg ({gag})");
        assert!(pag < pap, "PAg ({pag}) must undercut PAp ({pap})");
    }

    #[test]
    fn pap_dominated_by_pattern_tables() {
        let m = model();
        let geometry = BhtGeometry::PAPER_DEFAULT;
        let bht_only = m.pag_bht_term(geometry, 6);
        let total = m.pap_cost(geometry, 6, 2);
        assert!(total - bht_only > 4.0 * bht_only, "512 PHTs must dominate");
    }

    #[test]
    fn full_cost_exceeds_simplified() {
        // Equation 3 includes comparator/mux/incrementor/automaton terms
        // the simplified forms drop, so it must be at least as large.
        let m = model();
        let geometry = BhtGeometry::PAPER_DEFAULT;
        assert!(m.full_cost(geometry, 12, 2, 1) >= m.pag_cost(geometry, 12, 2) * 0.95);
    }

    #[test]
    fn pht_cost_components() {
        let m = model();
        // 2^4 entries * 2 bits + 2^4 decoders + 2*2^3 automaton = 32+16+16.
        assert!((m.pht_cost(4, 2) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn constants_scale_linearly() {
        let doubled = CostModel::new(
            CostConstants {
                storage: 2.0,
                decoder: 2.0,
                comparator: 2.0,
                mux: 2.0,
                shifter: 2.0,
                incrementor: 2.0,
                automaton: 2.0,
            },
            30,
        );
        let base = model();
        let g = BhtGeometry::PAPER_DEFAULT;
        assert!((doubled.full_cost(g, 12, 2, 1) - 2.0 * base.full_cost(g, 12, 2, 1)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = model().bht_cost(BhtGeometry { entries: 500, ways: 4 }, 12);
    }

    #[test]
    fn geometry_bit_helpers() {
        let g = BhtGeometry::PAPER_DEFAULT;
        assert_eq!(g.index_bits(), 9);
        assert_eq!(g.way_bits(), 2);
    }
}
