//! Branch history tables (first-level storage) — Section 3.3 of the paper.
//!
//! The per-address schemes (PAg, PAp) keep one history register per static
//! conditional branch. The paper studies two implementations:
//!
//! * an **ideal** BHT ([`IdealBht`]) with one history register per static
//!   branch, used to show the accuracy loss of practical tables, and
//! * a **practical** BHT ([`CacheBht`]) organized as a direct-mapped or
//!   set-associative cache with address tags and LRU replacement.
//!
//! Both honor the paper's miss policy (Section 4.2): a newly allocated
//! history register "is initialized to all 1's"; after the result of the
//! missing branch is known, "the result bit is extended throughout the
//!   history register".

use crate::fxhash::FxHashMap;
use crate::history::HistoryRegister;

/// Selects a branch history table implementation for the per-address
/// schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BhtConfig {
    /// One history register per static branch, never evicted (IBHT).
    Ideal,
    /// A cache of `entries` history registers, `ways`-way set-associative
    /// (`ways = 1` is direct-mapped), LRU replacement within a set.
    Cache {
        /// Total number of entries (must be `ways × power-of-two`).
        entries: usize,
        /// Set associativity.
        ways: usize,
    },
}

impl BhtConfig {
    /// The paper's default practical configuration: 4-way set-associative,
    /// 512 entries (Section 5.2 selects it as "simple enough to be
    /// implemented").
    pub const PAPER_DEFAULT: BhtConfig = BhtConfig::Cache { entries: 512, ways: 4 };

    /// The four practical configurations of Figure 10 plus the ideal table.
    pub const FIGURE10: [BhtConfig; 5] = [
        BhtConfig::Ideal,
        BhtConfig::Cache { entries: 512, ways: 4 },
        BhtConfig::Cache { entries: 512, ways: 1 },
        BhtConfig::Cache { entries: 256, ways: 4 },
        BhtConfig::Cache { entries: 256, ways: 1 },
    ];

    /// Builds the table for `history_bits`-bit history registers.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry is invalid (see [`CacheBht::new`]).
    #[must_use]
    pub fn build(self, history_bits: u32) -> BranchHistoryTable {
        match self {
            BhtConfig::Ideal => BranchHistoryTable::Ideal(IdealBht::new(history_bits)),
            BhtConfig::Cache { entries, ways } => {
                BranchHistoryTable::Cache(CacheBht::new(entries, ways, history_bits))
            }
        }
    }

    /// A short label, e.g. `IBHT`, `512x4`, `256x1`.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            BhtConfig::Ideal => "IBHT".to_owned(),
            BhtConfig::Cache { entries, ways } => format!("{entries}x{ways}"),
        }
    }
}

/// The identity of a first-level table's *state evolution*: its
/// implementation, geometry and history width.
///
/// A branch history table is outcome-driven — every mutation
/// (allocation, LRU touch, history fill/shift, eviction) depends only on
/// the access sequence and the resolved directions, never on any
/// prediction. Two tables with equal signatures, stepped over the same
/// stream, therefore hold identical state at every event. The fused
/// sweep exploits this: predictors in a batch whose tables share a
/// signature are driven by one table walked once per chunk (see
/// `BranchPredictor::shared_bht` in [`crate::predictor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BhtSignature {
    /// Table implementation and geometry.
    pub config: BhtConfig,
    /// History register width in bits.
    pub history_bits: u32,
}

impl BhtSignature {
    /// Builds a fresh table in this signature's initial state.
    #[must_use]
    pub fn build(self) -> BranchHistoryTable {
        self.config.build(self.history_bits)
    }
}

/// Hit/miss counters for a branch history table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BhtStats {
    /// Accesses that found the branch's entry.
    pub hits: u64,
    /// Accesses that allocated a new entry.
    pub misses: u64,
}

impl BhtStats {
    /// Hit rate in `[0, 1]`; 0 when no accesses were made.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct IdealEntry {
    history: HistoryRegister,
    fresh: bool,
}

/// The Ideal Branch History Table (IBHT): one history register per static
/// conditional branch, unbounded capacity.
///
/// The paper simulates the IBHT "to show the accuracy loss due to the
/// history interference in a practical branch history table
/// implementation".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdealBht {
    history_bits: u32,
    entries: FxHashMap<u64, IdealEntry>,
    /// Entries keyed by dense interned id instead of pc — the fused
    /// sweep's fast path (see [`IdealBht::access_pattern_id`]). A
    /// predictor instance is driven either entirely by pc or entirely by
    /// id, so at most one of the two stores is ever populated.
    dense: Vec<Option<IdealEntry>>,
    stats: BhtStats,
}

impl IdealBht {
    /// Creates an empty ideal table for `history_bits`-bit registers.
    #[must_use]
    pub fn new(history_bits: u32) -> Self {
        IdealBht {
            history_bits,
            entries: FxHashMap::default(),
            dense: Vec::new(),
            stats: BhtStats::default(),
        }
    }

    /// Looks up `pc`, allocating an all-ones entry on first sight.
    /// Returns `true` on hit.
    pub fn access(&mut self, pc: u64) -> bool {
        if self.entries.contains_key(&pc) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            self.entries.insert(
                pc,
                IdealEntry { history: HistoryRegister::all_ones(self.history_bits), fresh: true },
            );
            false
        }
    }

    /// The current pattern for `pc`, if present.
    #[must_use]
    pub fn pattern(&self, pc: u64) -> Option<usize> {
        self.entries.get(&pc).map(|e| e.history.pattern())
    }

    /// Fused [`IdealBht::access`] + [`IdealBht::pattern`]: one map lookup
    /// instead of two.
    #[inline]
    pub fn access_pattern(&mut self, pc: u64) -> usize {
        let history_bits = self.history_bits;
        let mut hit = true;
        let entry = self.entries.entry(pc).or_insert_with(|| {
            hit = false;
            IdealEntry { history: HistoryRegister::all_ones(history_bits), fresh: true }
        });
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        entry.history.pattern()
    }

    /// [`IdealBht::access_pattern`] keyed by a dense interned id: a
    /// bounds check and vector index replace the hash lookup.
    ///
    /// `id` must alias one pc bijectively over this table's lifetime
    /// (one trace's interning — see `tlabp_trace::InternedConds`), and
    /// the instance must not also be driven through the pc-keyed
    /// methods; then hits, misses and patterns are bit-identical to
    /// [`IdealBht::access_pattern`] on the aliased pcs.
    #[inline]
    pub fn access_pattern_id(&mut self, id: u32) -> usize {
        let index = id as usize;
        if index >= self.dense.len() {
            self.dense.resize(index + 1, None);
        }
        match &self.dense[index] {
            Some(entry) => {
                self.stats.hits += 1;
                entry.history.pattern()
            }
            None => {
                self.stats.misses += 1;
                let entry = IdealEntry {
                    history: HistoryRegister::all_ones(self.history_bits),
                    fresh: true,
                };
                let pattern = entry.history.pattern();
                self.dense[index] = Some(entry);
                pattern
            }
        }
    }

    /// [`IdealBht::record_outcome`] keyed by a dense interned id.
    #[inline]
    pub fn record_outcome_id(&mut self, id: u32, taken: bool) {
        if let Some(Some(entry)) = self.dense.get_mut(id as usize) {
            if entry.fresh {
                entry.history.fill(taken);
                entry.fresh = false;
            } else {
                entry.history.shift_in(taken);
            }
        }
    }

    /// Records the resolved outcome for `pc`: extends the result bit
    /// through a fresh register, otherwise shifts it in. Returns `false`
    /// if `pc` has no entry (e.g. it was flushed between predict and
    /// update).
    pub fn record_outcome(&mut self, pc: u64, taken: bool) -> bool {
        match self.entries.get_mut(&pc) {
            Some(entry) => {
                if entry.fresh {
                    entry.history.fill(taken);
                    entry.fresh = false;
                } else {
                    entry.history.shift_in(taken);
                }
                true
            }
            None => false,
        }
    }

    /// Number of distinct static branches seen (by pc or by id).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len() + self.dense.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the table holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all entries (context switch).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.dense.clear();
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> BhtStats {
        self.stats
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheSlot {
    valid: bool,
    tag: u64,
    history: HistoryRegister,
    fresh: bool,
    /// Timestamp of last access, for LRU replacement.
    last_used: u64,
}

/// A practical branch history table: a direct-mapped or set-associative
/// cache of history registers with LRU replacement (Section 3.3).
///
/// "The lower part of a branch address is used to index into the table and
/// the higher part is stored as a tag." Addresses are word-granular: the
/// two low bits of the pc are dropped before indexing.
///
/// # Example
///
/// ```
/// use tlabp_core::bht::CacheBht;
///
/// let mut bht = CacheBht::new(512, 4, 12);
/// assert!(!bht.access(0x4000), "first access misses");
/// bht.record_outcome(0x4000, false);
/// assert!(bht.access(0x4000), "second access hits");
/// assert_eq!(bht.pattern(0x4000), Some(0)); // result bit extended through
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheBht {
    sets: usize,
    ways: usize,
    history_bits: u32,
    slots: Vec<CacheSlot>,
    clock: u64,
    stats: BhtStats,
    /// Per-interned-id memo of the derived lookup key `(set base, tag)`.
    /// The mapping is a pure function of the pc (no table state), so it
    /// survives flushes; dense ids make caching it a vector index, which
    /// the pc-keyed path could only match by paying a hash lookup. Only
    /// [`CacheBht::access_slot_interned`] touches this.
    id_keys: Vec<Option<(u32, u64)>>,
}

impl CacheBht {
    /// Creates a cache with `entries` total slots organized as
    /// `entries / ways` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `entries` is not a multiple of `ways`, or
    /// the number of sets is not a power of two.
    #[must_use]
    pub fn new(entries: usize, ways: usize, history_bits: u32) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(
            entries > 0 && entries.is_multiple_of(ways),
            "entries {entries} must be a positive multiple of ways {ways}"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        let empty = CacheSlot {
            valid: false,
            tag: 0,
            history: HistoryRegister::all_ones(history_bits),
            fresh: true,
            last_used: 0,
        };
        CacheBht {
            sets,
            ways,
            history_bits,
            slots: vec![empty; entries],
            clock: 0,
            stats: BhtStats::default(),
            id_keys: Vec::new(),
        }
    }

    /// Total slot count.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Set associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    fn set_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn tag(&self, pc: u64) -> u64 {
        (pc >> 2) / self.sets as u64
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let set = self.set_index(pc);
        let tag = self.tag(pc);
        let base = set * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .position(|slot| slot.valid && slot.tag == tag)
            .map(|way| base + way)
    }

    /// Looks up `pc`, allocating on miss (evicting the LRU way of the set).
    /// Returns `true` on hit.
    pub fn access(&mut self, pc: u64) -> bool {
        self.access_slot(pc).1
    }

    /// Fused lookup: like [`CacheBht::access`], but returns the physical
    /// slot index holding `pc` so callers can touch the entry again
    /// ([`CacheBht::pattern_at`], [`CacheBht::record_outcome_at`]) without
    /// re-running the tag search. The second element is the hit flag.
    #[inline]
    pub fn access_slot(&mut self, pc: u64) -> (usize, bool) {
        let base = self.set_index(pc) * self.ways;
        let tag = self.tag(pc);
        self.access_set(base, tag)
    }

    /// [`CacheBht::access_slot`] with the derived key `(set base, tag)`
    /// memoized per interned id, so the steady state replaces the
    /// index/tag arithmetic (including a division) with one vector read.
    /// Same bijection contract as [`IdealBht::access_pattern_id`].
    #[inline]
    pub fn access_slot_interned(&mut self, id: u32, pc: u64) -> (usize, bool) {
        let index = id as usize;
        if index >= self.id_keys.len() {
            self.id_keys.resize(index + 1, None);
        }
        let (base, tag) = match self.id_keys[index] {
            Some(key) => key,
            None => {
                let key = ((self.set_index(pc) * self.ways) as u32, self.tag(pc));
                self.id_keys[index] = Some(key);
                key
            }
        };
        self.access_set(base as usize, tag)
    }

    /// The access/replacement core shared by the pc-keyed and id-memoized
    /// lookups: LRU-touch the matching way of the set at `base`, or
    /// allocate over the least recently used one.
    #[inline]
    fn access_set(&mut self, base: usize, tag: u64) -> (usize, bool) {
        self.clock += 1;
        let hit = self.slots[base..base + self.ways]
            .iter()
            .position(|slot| slot.valid && slot.tag == tag);
        if let Some(way) = hit {
            let i = base + way;
            self.slots[i].last_used = self.clock;
            self.stats.hits += 1;
            return (i, true);
        }
        self.stats.misses += 1;
        let victim = (base..base + self.ways)
            .min_by_key(|&i| (self.slots[i].valid, self.slots[i].last_used))
            .expect("set has at least one way");
        let history_bits = self.history_bits;
        let slot = &mut self.slots[victim];
        slot.valid = true;
        slot.tag = tag;
        slot.history = HistoryRegister::all_ones(history_bits);
        slot.fresh = true;
        slot.last_used = self.clock;
        (victim, false)
    }

    /// The pattern in physical slot `slot` (from [`CacheBht::access_slot`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    #[must_use]
    pub fn pattern_at(&self, slot: usize) -> usize {
        self.slots[slot].history.pattern()
    }

    /// Records the resolved outcome directly into physical slot `slot`
    /// (fill if fresh, else shift) without a tag search.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn record_outcome_at(&mut self, slot: usize, taken: bool) {
        let slot = &mut self.slots[slot];
        if slot.fresh {
            slot.history.fill(taken);
            slot.fresh = false;
        } else {
            slot.history.shift_in(taken);
        }
    }

    /// The current pattern for `pc`, if resident.
    #[must_use]
    pub fn pattern(&self, pc: u64) -> Option<usize> {
        self.find(pc).map(|i| self.slots[i].history.pattern())
    }

    /// The physical slot index currently holding `pc`, if resident.
    ///
    /// PAp uses this to associate one pattern history table with each
    /// physical BHT entry.
    #[must_use]
    pub fn slot_of(&self, pc: u64) -> Option<usize> {
        self.find(pc)
    }

    /// Records the resolved outcome for `pc` (fill if fresh, else shift).
    /// Returns `false` if `pc` is not resident.
    pub fn record_outcome(&mut self, pc: u64, taken: bool) -> bool {
        match self.find(pc) {
            Some(i) => {
                let slot = &mut self.slots[i];
                if slot.fresh {
                    slot.history.fill(taken);
                    slot.fresh = false;
                } else {
                    slot.history.shift_in(taken);
                }
                true
            }
            None => false,
        }
    }

    /// Invalidates every slot (context switch: "a context switch results
    /// in flushing and reinitialization of the branch history table").
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.valid = false;
            slot.fresh = true;
        }
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> BhtStats {
        self.stats
    }
}

/// Either branch history table implementation behind one interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchHistoryTable {
    /// Unbounded per-branch table.
    Ideal(IdealBht),
    /// Practical cache implementation.
    Cache(CacheBht),
}

/// Opaque handle returned by [`BranchHistoryTable::access_pattern`],
/// locating the entry just touched so the outcome write can skip the
/// second lookup on the cache implementation.
#[derive(Debug, Clone, Copy)]
pub struct BhtCursor(usize);

impl BhtCursor {
    const KEYED: usize = usize::MAX;

    /// The physical cache slot, or `None` for the keyed (ideal) table.
    #[must_use]
    pub fn slot(self) -> Option<usize> {
        if self.0 == Self::KEYED {
            None
        } else {
            Some(self.0)
        }
    }
}

impl BranchHistoryTable {
    /// This table's [`BhtSignature`]: a fresh
    /// [`BhtSignature::build`] of it evolves identically to this table
    /// from its initial state.
    #[must_use]
    pub fn signature(&self) -> BhtSignature {
        match self {
            BranchHistoryTable::Ideal(t) => {
                BhtSignature { config: BhtConfig::Ideal, history_bits: t.history_bits }
            }
            BranchHistoryTable::Cache(t) => BhtSignature {
                config: BhtConfig::Cache { entries: t.slots.len(), ways: t.ways },
                history_bits: t.history_bits,
            },
        }
    }

    /// Looks up `pc`, allocating on miss. Returns `true` on hit.
    pub fn access(&mut self, pc: u64) -> bool {
        match self {
            BranchHistoryTable::Ideal(t) => t.access(pc),
            BranchHistoryTable::Cache(t) => t.access(pc),
        }
    }

    /// Fused [`BranchHistoryTable::access`] +
    /// [`BranchHistoryTable::pattern`]: one lookup resolving the entry,
    /// its pre-update pattern, and a [`BhtCursor`] for
    /// [`BranchHistoryTable::record_outcome_at`].
    #[inline]
    pub fn access_pattern(&mut self, pc: u64) -> (usize, BhtCursor) {
        match self {
            BranchHistoryTable::Ideal(t) => (t.access_pattern(pc), BhtCursor(BhtCursor::KEYED)),
            BranchHistoryTable::Cache(t) => {
                let (slot, _hit) = t.access_slot(pc);
                (t.pattern_at(slot), BhtCursor(slot))
            }
        }
    }

    /// [`BranchHistoryTable::access_pattern`] for an interned stream:
    /// the ideal table indexes directly by the dense `id` (no hash); the
    /// cache table memoizes the pc's derived `(set, tag)` key per id
    /// ([`CacheBht::access_slot_interned`]).
    ///
    /// The caller owes the same bijection contract as
    /// [`IdealBht::access_pattern_id`]: `id` and `pc` alias each other
    /// for this table's lifetime.
    #[inline]
    pub fn access_pattern_interned(&mut self, id: u32, pc: u64) -> (usize, BhtCursor) {
        match self {
            BranchHistoryTable::Ideal(t) => (t.access_pattern_id(id), BhtCursor(BhtCursor::KEYED)),
            BranchHistoryTable::Cache(t) => {
                let (slot, _hit) = t.access_slot_interned(id, pc);
                (t.pattern_at(slot), BhtCursor(slot))
            }
        }
    }

    /// [`BranchHistoryTable::record_outcome_at`] for an interned stream
    /// (the `id` that [`BranchHistoryTable::access_pattern_interned`] was
    /// just called with, in place of the pc).
    #[inline]
    pub fn record_outcome_at_interned(&mut self, cursor: BhtCursor, id: u32, taken: bool) {
        match self {
            BranchHistoryTable::Ideal(t) => t.record_outcome_id(id, taken),
            BranchHistoryTable::Cache(t) => t.record_outcome_at(
                cursor.slot().expect("cache table always yields a slot cursor"),
                taken,
            ),
        }
    }

    /// Records the resolved outcome at the entry `cursor` points to
    /// (from [`BranchHistoryTable::access_pattern`] with the same `pc`,
    /// with no intervening flush).
    #[inline]
    pub fn record_outcome_at(&mut self, cursor: BhtCursor, pc: u64, taken: bool) {
        match self {
            BranchHistoryTable::Ideal(t) => {
                t.record_outcome(pc, taken);
            }
            BranchHistoryTable::Cache(t) => t.record_outcome_at(
                cursor.slot().expect("cache table always yields a slot cursor"),
                taken,
            ),
        }
    }

    /// The current pattern for `pc`, if present.
    #[must_use]
    pub fn pattern(&self, pc: u64) -> Option<usize> {
        match self {
            BranchHistoryTable::Ideal(t) => t.pattern(pc),
            BranchHistoryTable::Cache(t) => t.pattern(pc),
        }
    }

    /// Records the resolved outcome for `pc`. Returns `false` if absent.
    pub fn record_outcome(&mut self, pc: u64, taken: bool) -> bool {
        match self {
            BranchHistoryTable::Ideal(t) => t.record_outcome(pc, taken),
            BranchHistoryTable::Cache(t) => t.record_outcome(pc, taken),
        }
    }

    /// The physical slot currently holding `pc` (cache only; `None` for the
    /// ideal table, which has no fixed slots).
    #[must_use]
    pub fn slot_of(&self, pc: u64) -> Option<usize> {
        match self {
            BranchHistoryTable::Ideal(_) => None,
            BranchHistoryTable::Cache(t) => t.slot_of(pc),
        }
    }

    /// Discards all entries (context switch).
    pub fn flush(&mut self) {
        match self {
            BranchHistoryTable::Ideal(t) => t.flush(),
            BranchHistoryTable::Cache(t) => t.flush(),
        }
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> BhtStats {
        match self {
            BranchHistoryTable::Ideal(t) => t.stats(),
            BranchHistoryTable::Cache(t) => t.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_allocates_all_ones_then_extends_result() {
        let mut bht = IdealBht::new(6);
        assert!(!bht.access(0x100));
        assert_eq!(bht.pattern(0x100), Some(0b111111));
        bht.record_outcome(0x100, false);
        assert_eq!(bht.pattern(0x100), Some(0), "result bit extended throughout");
        bht.record_outcome(0x100, true);
        assert_eq!(bht.pattern(0x100), Some(1), "subsequent outcomes shift in");
    }

    #[test]
    fn ideal_tracks_distinct_branches() {
        let mut bht = IdealBht::new(4);
        for pc in [0x10u64, 0x20, 0x30, 0x10] {
            bht.access(pc);
        }
        assert_eq!(bht.len(), 3);
        assert_eq!(bht.stats().hits, 1);
        assert_eq!(bht.stats().misses, 3);
    }

    #[test]
    fn ideal_flush_clears() {
        let mut bht = IdealBht::new(4);
        bht.access(0x10);
        bht.flush();
        assert!(bht.is_empty());
        assert_eq!(bht.pattern(0x10), None);
    }

    #[test]
    fn ideal_id_path_matches_pc_path() {
        // The same access/outcome sequence, once keyed by pc and once by
        // a dense alias of each pc, must produce identical patterns and
        // identical hit/miss statistics.
        let pcs = [0x100u64, 0x204, 0x308, 0x100, 0x40c, 0x204, 0x100, 0x510, 0x308, 0x204];
        let mut by_pc = IdealBht::new(6);
        let mut by_id = IdealBht::new(6);
        let mut ids: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (i, &pc) in pcs.iter().cycle().take(200).enumerate() {
            let next = ids.len() as u32;
            let id = *ids.entry(pc).or_insert(next);
            let taken = (i * 7 + i / 3) % 3 != 0;
            assert_eq!(by_pc.access_pattern(pc), by_id.access_pattern_id(id), "event {i}");
            by_pc.record_outcome(pc, taken);
            by_id.record_outcome_id(id, taken);
        }
        assert_eq!(by_pc.stats(), by_id.stats());
        assert_eq!(by_pc.len(), by_id.len());
    }

    #[test]
    fn ideal_id_path_flushes_too() {
        let mut bht = IdealBht::new(4);
        bht.access_pattern_id(3);
        assert_eq!(bht.len(), 1);
        bht.flush();
        assert!(bht.is_empty());
        // Post-flush access misses and reallocates all-ones.
        assert_eq!(bht.access_pattern_id(3), 0b1111);
        assert_eq!(bht.stats().misses, 2);
    }

    #[test]
    fn cache_id_memo_path_matches_pc_path() {
        // Conflicting pcs (several share sets in a tiny table) driven
        // once through the pc-keyed lookup and once through the
        // id-memoized one: slots, hit flags, patterns and stats must
        // agree event for event, across a mid-stream flush (the memo is
        // pc-derived, not table state, so it survives).
        let pcs = [0x100u64, 0x204, 0x308, 0x100, 0x40c, 0x204, 0x100, 0x510, 0x308, 0x204];
        let mut by_pc = CacheBht::new(8, 2, 6);
        let mut by_id = CacheBht::new(8, 2, 6);
        let mut ids: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (i, &pc) in pcs.iter().cycle().take(200).enumerate() {
            let next = ids.len() as u32;
            let id = *ids.entry(pc).or_insert(next);
            if i == 77 {
                by_pc.flush();
                by_id.flush();
            }
            let taken = (i * 7 + i / 3) % 3 != 0;
            let (slot_pc, hit_pc) = by_pc.access_slot(pc);
            let (slot_id, hit_id) = by_id.access_slot_interned(id, pc);
            assert_eq!((slot_pc, hit_pc), (slot_id, hit_id), "event {i}");
            assert_eq!(by_pc.pattern_at(slot_pc), by_id.pattern_at(slot_id), "event {i}");
            by_pc.record_outcome_at(slot_pc, taken);
            by_id.record_outcome_at(slot_id, taken);
        }
        assert_eq!(by_pc.stats(), by_id.stats());
    }

    #[test]
    fn cache_geometry_validation() {
        let bht = CacheBht::new(512, 4, 12);
        assert_eq!(bht.sets(), 128);
        assert_eq!(bht.ways(), 4);
        assert_eq!(bht.slot_count(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_rejects_non_power_of_two_sets() {
        let _ = CacheBht::new(384, 4, 12);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn cache_rejects_non_multiple_entries() {
        let _ = CacheBht::new(510, 4, 12);
    }

    #[test]
    fn cache_hit_after_allocate() {
        let mut bht = CacheBht::new(16, 2, 4);
        assert!(!bht.access(0x40));
        assert!(bht.access(0x40));
        assert_eq!(bht.stats().hits, 1);
        assert_eq!(bht.stats().misses, 1);
    }

    #[test]
    fn cache_distinguishes_tags_in_same_set() {
        let mut bht = CacheBht::new(8, 2, 4);
        // 4 sets; word addresses 0 and 4 both map to set 0 with different tags.
        let a = 0u64; // word 0, set 0
        let b = (4 * 4) as u64; // word 4, set 0, tag 1
        bht.access(a);
        bht.record_outcome(a, false);
        bht.access(b);
        bht.record_outcome(b, true);
        assert_eq!(bht.pattern(a), Some(0));
        assert_eq!(bht.pattern(b), Some(0b1111));
    }

    #[test]
    fn cache_lru_evicts_least_recent() {
        // 2 sets x 2 ways; three pcs in set 0.
        let mut bht = CacheBht::new(4, 2, 4);
        let pc = |word: u64| word * 4 * 2; // even words -> set 0
        bht.access(pc(0));
        bht.access(pc(2));
        bht.access(pc(0)); // refresh pc(0): LRU is now pc(2)
        bht.access(pc(4)); // evicts pc(2)
        assert!(bht.pattern(pc(0)).is_some());
        assert!(bht.pattern(pc(2)).is_none());
        assert!(bht.pattern(pc(4)).is_some());
    }

    #[test]
    fn cache_direct_mapped_conflicts() {
        let mut bht = CacheBht::new(4, 1, 4);
        let a = 0u64;
        let b = 4 * 4; // same set (4 sets, word 4 -> set 0), different tag
        bht.access(a);
        bht.access(b);
        assert!(bht.pattern(a).is_none(), "direct-mapped conflict must evict");
        assert!(bht.pattern(b).is_some());
    }

    #[test]
    fn cache_prefers_invalid_slot_over_eviction() {
        let mut bht = CacheBht::new(4, 2, 4);
        let pc = |word: u64| word * 4 * 2;
        bht.access(pc(0));
        bht.access(pc(2)); // fills the second way; pc(0) must survive
        assert!(bht.pattern(pc(0)).is_some());
        assert!(bht.pattern(pc(2)).is_some());
    }

    #[test]
    fn cache_fresh_fill_then_shift() {
        let mut bht = CacheBht::new(16, 4, 4);
        bht.access(0x80);
        bht.record_outcome(0x80, true);
        assert_eq!(bht.pattern(0x80), Some(0b1111));
        bht.record_outcome(0x80, false);
        assert_eq!(bht.pattern(0x80), Some(0b1110));
    }

    #[test]
    fn cache_flush_invalidates_all() {
        let mut bht = CacheBht::new(16, 4, 4);
        bht.access(0x80);
        bht.flush();
        assert_eq!(bht.pattern(0x80), None);
        assert!(!bht.access(0x80), "post-flush access must miss");
    }

    #[test]
    fn record_outcome_on_absent_pc_reports_false() {
        let mut cache = CacheBht::new(16, 4, 4);
        assert!(!cache.record_outcome(0x99, true));
        let mut ideal = IdealBht::new(4);
        assert!(!ideal.record_outcome(0x99, true));
    }

    #[test]
    fn unified_interface_dispatches() {
        for config in [BhtConfig::Ideal, BhtConfig::Cache { entries: 64, ways: 4 }] {
            let mut bht = config.build(8);
            assert!(!bht.access(0x123_4560));
            bht.record_outcome(0x123_4560, false);
            assert_eq!(bht.pattern(0x123_4560), Some(0));
            bht.flush();
            assert_eq!(bht.pattern(0x123_4560), None);
        }
    }

    #[test]
    fn signature_round_trips_through_build() {
        for config in BhtConfig::FIGURE10 {
            for history_bits in [6, 12] {
                let table = config.build(history_bits);
                let signature = table.signature();
                assert_eq!(signature, BhtSignature { config, history_bits });
                assert_eq!(signature.build().signature(), signature);
            }
        }
        assert_ne!(
            BhtConfig::PAPER_DEFAULT.build(6).signature(),
            BhtConfig::PAPER_DEFAULT.build(12).signature(),
            "history width is part of the signature"
        );
    }

    #[test]
    fn config_labels() {
        assert_eq!(BhtConfig::Ideal.label(), "IBHT");
        assert_eq!(BhtConfig::Cache { entries: 512, ways: 4 }.label(), "512x4");
    }

    #[test]
    fn stats_hit_rate() {
        let stats = BhtStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(BhtStats::default().hit_rate(), 0.0);
    }
}
