//! The common interface every simulated branch predictor implements.

use tlabp_trace::BranchRecord;

use crate::bht::{BhtCursor, BhtSignature};

/// A dynamic (or static) conditional-branch predictor under trace-driven
/// simulation.
///
/// The simulation contract mirrors the paper's Section 4: for each dynamic
/// conditional branch, the simulator calls [`BranchPredictor::predict`] and
/// then, once the branch resolves, [`BranchPredictor::update`] with the
/// same record (whose `taken` field holds the actual outcome). `update`
/// must be called exactly once after each `predict`, in the same order.
///
/// [`BranchPredictor::context_switch`] implements Section 5.1.4's model:
/// flush and reinitialize the first-level branch history, but leave pattern
/// history tables alone.
///
/// # Example
///
/// ```
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Gag;
/// use tlabp_core::automaton::Automaton;
/// use tlabp_trace::BranchRecord;
///
/// let mut predictor = Gag::new(8, Automaton::A2);
/// let branch = BranchRecord::conditional(0x40, true, 0x10, 1);
/// let predicted_taken = predictor.predict(&branch);
/// predictor.update(&branch);
/// assert!(predicted_taken); // tables initialize biased toward taken
/// ```
pub trait BranchPredictor {
    /// Predicts the direction of `branch` (ignoring its `taken` field).
    fn predict(&mut self, branch: &BranchRecord) -> bool;

    /// Informs the predictor of the resolved outcome (`branch.taken`).
    fn update(&mut self, branch: &BranchRecord);

    /// Simulates a context switch: flush first-level branch history.
    ///
    /// The default does nothing, which is correct for stateless static
    /// schemes.
    fn context_switch(&mut self) {}

    /// A descriptive name in the paper's Table 3 notation where
    /// applicable.
    fn name(&self) -> String;

    /// Convenience: predict then immediately update, returning whether the
    /// prediction was *correct*.
    fn process(&mut self, branch: &BranchRecord) -> bool
    where
        Self: Sized,
    {
        let predicted = self.predict(branch);
        self.update(branch);
        predicted == branch.taken
    }

    /// Fused predict-then-update, returning the prediction.
    ///
    /// Semantically identical to [`BranchPredictor::predict`] followed by
    /// [`BranchPredictor::update`] with the same record. The hot two-level
    /// schemes override it to resolve their first-level table entry once
    /// per branch instead of once per call; `tests/differential.rs` pins
    /// the equivalence for every catalog scheme.
    fn step(&mut self, branch: &BranchRecord) -> bool {
        let predicted = self.predict(branch);
        self.update(branch);
        predicted
    }

    /// [`BranchPredictor::step`] against a pc-interned stream: `id` is
    /// the dense per-trace alias of `branch.pc` (see
    /// `tlabp_trace::InternedConds`).
    ///
    /// The contract a caller must uphold: over this predictor's lifetime,
    /// equal ids always accompany equal pcs and vice versa (one trace's
    /// interning, never mixed with pc-keyed stepping). Under it, schemes
    /// with ideal per-address state override this to index a dense vector
    /// by `id` instead of hashing `branch.pc`, bit-identically. The
    /// default ignores `id` and falls back to [`BranchPredictor::step`],
    /// which is always correct.
    fn step_interned(&mut self, id: u32, branch: &BranchRecord) -> bool {
        let _ = id;
        self.step(branch)
    }

    /// Steps every `(id, record)` of `block` in order, returning how many
    /// predictions matched the resolved direction.
    ///
    /// This is the fused sweep's inner loop: the caller decodes a chunk
    /// of the interned stream once and hands it to each predictor of the
    /// batch, so per-event dispatch (the `AnyPredictor` variant match, or
    /// a `dyn` call) is paid once per block instead of once per event,
    /// and each predictor's tables stay cache-hot for the whole chunk.
    fn step_interned_block(&mut self, block: &[(u32, BranchRecord)]) -> u64 {
        let mut correct = 0u64;
        for (id, branch) in block {
            correct += u64::from(self.step_interned(*id, branch) == branch.taken);
        }
        correct
    }

    /// The signature of this predictor's first-level branch history
    /// table, if its stepping factors as "walk the table, then consume
    /// `(pattern, cursor)`" — i.e. [`BranchPredictor::step_interned`] is
    /// equivalent to `bht.access_pattern_interned` +
    /// [`BranchPredictor::step_shared`] + `bht.record_outcome_at_interned`.
    ///
    /// Table evolution is outcome-driven (see
    /// [`BhtSignature`]), so the fused sweep walks *one* driver table per
    /// signature group and feeds the resulting patterns to every member
    /// through [`BranchPredictor::step_shared_block`] — each member's own
    /// table is then left untouched. A predictor returning `Some` must
    /// implement [`BranchPredictor::step_shared`]. The default `None`
    /// opts out (correct for global-history and non-two-level schemes).
    fn shared_bht(&self) -> Option<BhtSignature> {
        None
    }

    /// One step against an externally-walked first-level table:
    /// `pattern` and `cursor` are what this predictor's own
    /// `bht.access_pattern_interned(id, branch.pc)` would have returned
    /// at this point of the stream. Returns the prediction.
    ///
    /// Must be bit-identical to [`BranchPredictor::step_interned`] minus
    /// the table walk. Only called when [`BranchPredictor::shared_bht`]
    /// returns `Some`; the default panics to catch predictors that
    /// advertise a signature without implementing the consumption step.
    fn step_shared(
        &mut self,
        pattern: usize,
        cursor: BhtCursor,
        id: u32,
        branch: &BranchRecord,
    ) -> bool {
        let _ = (pattern, cursor, id, branch);
        unimplemented!("predictors advertising shared_bht must implement step_shared")
    }

    /// [`BranchPredictor::step_shared`] over a whole chunk: `patterns[i]`
    /// belongs to `block[i]`. Returns how many predictions matched the
    /// resolved direction. Like
    /// [`BranchPredictor::step_interned_block`], overriding types hoist
    /// their dispatch out of the per-event loop.
    fn step_shared_block(
        &mut self,
        block: &[(u32, BranchRecord)],
        patterns: &[(usize, BhtCursor)],
    ) -> u64 {
        debug_assert_eq!(block.len(), patterns.len());
        let mut correct = 0u64;
        for ((id, branch), (pattern, cursor)) in block.iter().zip(patterns) {
            correct += u64::from(self.step_shared(*pattern, *cursor, *id, branch) == branch.taken);
        }
        correct
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        (**self).predict(branch)
    }

    fn update(&mut self, branch: &BranchRecord) {
        (**self).update(branch);
    }

    fn context_switch(&mut self) {
        (**self).context_switch();
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn step(&mut self, branch: &BranchRecord) -> bool {
        (**self).step(branch)
    }

    fn step_interned(&mut self, id: u32, branch: &BranchRecord) -> bool {
        (**self).step_interned(id, branch)
    }

    fn step_interned_block(&mut self, block: &[(u32, BranchRecord)]) -> u64 {
        (**self).step_interned_block(block)
    }

    fn shared_bht(&self) -> Option<BhtSignature> {
        (**self).shared_bht()
    }

    fn step_shared(
        &mut self,
        pattern: usize,
        cursor: BhtCursor,
        id: u32,
        branch: &BranchRecord,
    ) -> bool {
        (**self).step_shared(pattern, cursor, id, branch)
    }

    fn step_shared_block(
        &mut self,
        block: &[(u32, BranchRecord)],
        patterns: &[(usize, BhtCursor)],
    ) -> u64 {
        (**self).step_shared_block(block, patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use crate::schemes::Gag;

    #[test]
    fn process_reports_correctness() {
        let mut p = Gag::new(4, Automaton::A2);
        let taken = BranchRecord::conditional(0x10, true, 0x4, 1);
        let not_taken = BranchRecord::conditional(0x10, false, 0x4, 2);
        assert!(p.process(&taken), "initial bias predicts taken");
        assert!(!p.process(&not_taken), "strongly-taken entry mispredicts first not-taken");
    }

    #[test]
    fn boxed_predictor_dispatches() {
        let mut p: Box<dyn BranchPredictor> = Box::new(Gag::new(4, Automaton::A2));
        let b = BranchRecord::conditional(0x10, true, 0x4, 1);
        assert!(p.predict(&b));
        p.update(&b);
        p.context_switch();
        assert!(p.name().contains("GAg"));
    }
}
