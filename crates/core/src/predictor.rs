//! The common interface every simulated branch predictor implements.

use tlabp_trace::BranchRecord;

/// A dynamic (or static) conditional-branch predictor under trace-driven
/// simulation.
///
/// The simulation contract mirrors the paper's Section 4: for each dynamic
/// conditional branch, the simulator calls [`BranchPredictor::predict`] and
/// then, once the branch resolves, [`BranchPredictor::update`] with the
/// same record (whose `taken` field holds the actual outcome). `update`
/// must be called exactly once after each `predict`, in the same order.
///
/// [`BranchPredictor::context_switch`] implements Section 5.1.4's model:
/// flush and reinitialize the first-level branch history, but leave pattern
/// history tables alone.
///
/// # Example
///
/// ```
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Gag;
/// use tlabp_core::automaton::Automaton;
/// use tlabp_trace::BranchRecord;
///
/// let mut predictor = Gag::new(8, Automaton::A2);
/// let branch = BranchRecord::conditional(0x40, true, 0x10, 1);
/// let predicted_taken = predictor.predict(&branch);
/// predictor.update(&branch);
/// assert!(predicted_taken); // tables initialize biased toward taken
/// ```
pub trait BranchPredictor {
    /// Predicts the direction of `branch` (ignoring its `taken` field).
    fn predict(&mut self, branch: &BranchRecord) -> bool;

    /// Informs the predictor of the resolved outcome (`branch.taken`).
    fn update(&mut self, branch: &BranchRecord);

    /// Simulates a context switch: flush first-level branch history.
    ///
    /// The default does nothing, which is correct for stateless static
    /// schemes.
    fn context_switch(&mut self) {}

    /// A descriptive name in the paper's Table 3 notation where
    /// applicable.
    fn name(&self) -> String;

    /// Convenience: predict then immediately update, returning whether the
    /// prediction was *correct*.
    fn process(&mut self, branch: &BranchRecord) -> bool
    where
        Self: Sized,
    {
        let predicted = self.predict(branch);
        self.update(branch);
        predicted == branch.taken
    }

    /// Fused predict-then-update, returning the prediction.
    ///
    /// Semantically identical to [`BranchPredictor::predict`] followed by
    /// [`BranchPredictor::update`] with the same record. The hot two-level
    /// schemes override it to resolve their first-level table entry once
    /// per branch instead of once per call; `tests/differential.rs` pins
    /// the equivalence for every catalog scheme.
    fn step(&mut self, branch: &BranchRecord) -> bool {
        let predicted = self.predict(branch);
        self.update(branch);
        predicted
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        (**self).predict(branch)
    }

    fn update(&mut self, branch: &BranchRecord) {
        (**self).update(branch);
    }

    fn context_switch(&mut self) {
        (**self).context_switch();
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn step(&mut self, branch: &BranchRecord) -> bool {
        (**self).step(branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use crate::schemes::Gag;

    #[test]
    fn process_reports_correctness() {
        let mut p = Gag::new(4, Automaton::A2);
        let taken = BranchRecord::conditional(0x10, true, 0x4, 1);
        let not_taken = BranchRecord::conditional(0x10, false, 0x4, 2);
        assert!(p.process(&taken), "initial bias predicts taken");
        assert!(!p.process(&not_taken), "strongly-taken entry mispredicts first not-taken");
    }

    #[test]
    fn boxed_predictor_dispatches() {
        let mut p: Box<dyn BranchPredictor> = Box::new(Gag::new(4, Automaton::A2));
        let b = BranchRecord::conditional(0x10, true, 0x4, 1);
        assert!(p.predict(&b));
        p.update(&b);
        p.context_switch();
        assert!(p.name().contains("GAg"));
    }
}
