//! Kernel selection for the transposed replay path.
//!
//! The transposed pattern-history bank ([`crate::pht::TransposedPhtBank`])
//! carries one bit-sliced SWAR kernel in three bodies: a portable `u64`
//! implementation, `std::arch` SSE2/AVX2 widenings of the same algebra,
//! and a scalar per-member reference loop in the identical transposed
//! layout. All four are bit-identical by construction (and pinned so by
//! `tests/differential.rs`); [`SimdMode`] picks which one runs.
//!
//! The mode comes from the `TLABP_SIMD` environment variable:
//!
//! * `auto` (default) — runtime feature detection: AVX2 if the CPU has
//!   it, else SSE2, else the portable `u64` SWAR body. On non-x86_64
//!   targets `auto` is always the portable body.
//! * `swar` — force the portable `u64` body, bypassing `std::arch`.
//! * `scalar` — force the per-member scalar reference loop.
//! * `sse2` / `avx2` — force one `std::arch` body (differential testing
//!   of the vector paths); silently falls back to the portable body when
//!   the CPU or target lacks the feature, so a forced run is always
//!   well-defined.
//!
//! Detection is per *use*, not per process: a forced mode handed through
//! an API (e.g. `ExecOptions::simd`) overrides the environment, which is
//! how the in-process differential suites pin each body without racing
//! on environment mutation.

use std::sync::OnceLock;

/// Which body of the transposed replay kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdMode {
    /// Runtime feature detection: the widest available vector body.
    #[default]
    Auto,
    /// The portable `u64` SWAR body, no `std::arch`.
    Swar,
    /// The scalar per-member reference loop (transposed layout, no
    /// bit-slicing) — the differential baseline.
    Scalar,
    /// Force the SSE2 body (falls back to `Swar` off x86_64).
    Sse2,
    /// Force the AVX2 body (falls back to `Swar` when unavailable).
    Avx2,
}

impl SimdMode {
    /// Parses a `TLABP_SIMD` value.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: a forced kernel that silently
    /// decayed to `auto` would invalidate the differential run that
    /// asked for it.
    #[must_use]
    pub fn parse(value: &str) -> SimdMode {
        match value.to_ascii_lowercase().as_str() {
            "auto" => SimdMode::Auto,
            "swar" => SimdMode::Swar,
            "scalar" => SimdMode::Scalar,
            "sse2" => SimdMode::Sse2,
            "avx2" => SimdMode::Avx2,
            other => panic!("TLABP_SIMD={other:?}: expected auto|swar|scalar|sse2|avx2"),
        }
    }

    /// The mode selected by the `TLABP_SIMD` environment variable
    /// (default [`SimdMode::Auto`]), read once per process.
    ///
    /// # Panics
    ///
    /// See [`SimdMode::parse`].
    #[must_use]
    pub fn from_env() -> SimdMode {
        static MODE: OnceLock<SimdMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("TLABP_SIMD") {
            Ok(value) => SimdMode::parse(&value),
            Err(_) => SimdMode::Auto,
        })
    }

    /// Resolves the mode to the kernel body that will actually run on
    /// this machine.
    #[must_use]
    pub(crate) fn kernel(self) -> Kernel {
        match self {
            SimdMode::Scalar => Kernel::Scalar,
            SimdMode::Swar => Kernel::Swar,
            SimdMode::Sse2 => {
                if cfg!(target_arch = "x86_64") {
                    Kernel::Sse2
                } else {
                    Kernel::Swar
                }
            }
            SimdMode::Avx2 => {
                if avx2_available() {
                    Kernel::Avx2
                } else {
                    Kernel::Swar
                }
            }
            SimdMode::Auto => {
                if avx2_available() {
                    Kernel::Avx2
                } else if cfg!(target_arch = "x86_64") {
                    Kernel::Sse2
                } else {
                    Kernel::Swar
                }
            }
        }
    }
}

/// A concrete kernel body (post feature detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    Scalar,
    Swar,
    Sse2,
    Avx2,
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_documented_value() {
        assert_eq!(SimdMode::parse("auto"), SimdMode::Auto);
        assert_eq!(SimdMode::parse("SWAR"), SimdMode::Swar);
        assert_eq!(SimdMode::parse("scalar"), SimdMode::Scalar);
        assert_eq!(SimdMode::parse("sse2"), SimdMode::Sse2);
        assert_eq!(SimdMode::parse("Avx2"), SimdMode::Avx2);
    }

    #[test]
    #[should_panic(expected = "TLABP_SIMD")]
    fn parse_rejects_unknown_values() {
        let _ = SimdMode::parse("avx512");
    }

    #[test]
    fn forced_modes_resolve_to_a_runnable_kernel() {
        // Whatever the host, every mode must land on some body; the
        // bit-identity of the bodies makes the fallback inconsequential.
        for mode in
            [SimdMode::Auto, SimdMode::Swar, SimdMode::Scalar, SimdMode::Sse2, SimdMode::Avx2]
        {
            let kernel = mode.kernel();
            if mode == SimdMode::Scalar {
                assert_eq!(kernel, Kernel::Scalar);
            } else if mode == SimdMode::Swar {
                assert_eq!(kernel, Kernel::Swar);
            }
        }
    }
}
