//! Kernel selection for the transposed replay path.
//!
//! The transposed pattern-history bank ([`crate::pht::TransposedPhtBank`])
//! carries one bit-sliced SWAR kernel in several bodies: a portable `u64`
//! implementation, `std::arch` SSE2/AVX2/AVX-512 widenings of the same
//! algebra, and a scalar per-member reference loop in the identical
//! transposed layout. All bodies are bit-identical by construction (and
//! pinned so by `tests/differential.rs`); [`SimdMode`] picks which one
//! runs.
//!
//! The mode comes from the `TLABP_SIMD` environment variable:
//!
//! * `auto` (default) — runtime feature detection: AVX-512 if the CPU
//!   has it (`avx512f` + `avx512bw`), else AVX2, else SSE2, else the
//!   portable `u64` SWAR body. On non-x86_64 targets `auto` is always
//!   the portable body.
//! * `swar` — force the portable `u64` body, bypassing `std::arch`.
//! * `scalar` — force the per-member scalar reference loop.
//! * `sse2` / `avx2` / `avx512` — force one `std::arch` body
//!   (differential testing of the vector paths); silently falls back to
//!   the portable body when the CPU or target lacks the feature, so a
//!   forced run is always well-defined.
//!
//! An unrecognized value warns on stderr and falls back to `auto`,
//! matching the `TLABP_THREADS` validation: a typo'd knob should not
//! abort a sweep, but it must not silently pretend to be the kernel it
//! named either — hence the warning.
//!
//! Detection is per *use*, not per process: a forced mode handed through
//! an API (e.g. `ExecOptions::simd`) overrides the environment, which is
//! how the in-process differential suites pin each body without racing
//! on environment mutation.

use std::sync::OnceLock;

/// Which body of the transposed replay kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdMode {
    /// Runtime feature detection: the widest available vector body.
    #[default]
    Auto,
    /// The portable `u64` SWAR body, no `std::arch`.
    Swar,
    /// The scalar per-member reference loop (transposed layout, no
    /// bit-slicing) — the differential baseline.
    Scalar,
    /// Force the SSE2 body (falls back to `Swar` off x86_64).
    Sse2,
    /// Force the AVX2 body (falls back to `Swar` when unavailable).
    Avx2,
    /// Force the AVX-512 body (falls back to `Swar` when unavailable).
    Avx512,
}

impl SimdMode {
    /// Parses a `TLABP_SIMD` value.
    ///
    /// Returns `Err(raw value)` on an unrecognized string so the caller
    /// decides how loudly to fall back; [`SimdMode::parse`] is the
    /// warn-and-default wrapper every runtime path uses.
    pub fn try_parse(value: &str) -> Result<SimdMode, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(SimdMode::Auto),
            "swar" => Ok(SimdMode::Swar),
            "scalar" => Ok(SimdMode::Scalar),
            "sse2" => Ok(SimdMode::Sse2),
            "avx2" => Ok(SimdMode::Avx2),
            "avx512" => Ok(SimdMode::Avx512),
            _ => Err(value.to_owned()),
        }
    }

    /// Parses a `TLABP_SIMD` value, warning on stderr and falling back
    /// to [`SimdMode::Auto`] when the value is unrecognized — the same
    /// contract as the `TLABP_THREADS` override: a typo'd knob must not
    /// abort the run, and must not silently masquerade as a forced
    /// kernel either.
    #[must_use]
    pub fn parse(value: &str) -> SimdMode {
        match SimdMode::try_parse(value) {
            Ok(mode) => mode,
            Err(raw) => {
                eprintln!(
                    "warning: ignoring TLABP_SIMD={raw:?} \
                     (expected auto|swar|scalar|sse2|avx2|avx512); using auto"
                );
                SimdMode::Auto
            }
        }
    }

    /// The mode selected by the `TLABP_SIMD` environment variable
    /// (default [`SimdMode::Auto`]), read once per process. Unrecognized
    /// values warn and resolve to `Auto` (see [`SimdMode::parse`]).
    #[must_use]
    pub fn from_env() -> SimdMode {
        static MODE: OnceLock<SimdMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("TLABP_SIMD") {
            Ok(value) => SimdMode::parse(&value),
            Err(_) => SimdMode::Auto,
        })
    }

    /// The canonical lowercase name of this mode, as accepted by
    /// [`SimdMode::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdMode::Auto => "auto",
            SimdMode::Swar => "swar",
            SimdMode::Scalar => "scalar",
            SimdMode::Sse2 => "sse2",
            SimdMode::Avx2 => "avx2",
            SimdMode::Avx512 => "avx512",
        }
    }

    /// The name of the kernel body this mode actually resolves to on
    /// this machine (post feature detection) — what bench artifacts
    /// should record as the *selected* tier, as opposed to the mode that
    /// was requested.
    #[must_use]
    pub fn resolved_name(self) -> &'static str {
        match self.kernel() {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
        }
    }

    /// Resolves the mode to the kernel body that will actually run on
    /// this machine.
    #[must_use]
    pub(crate) fn kernel(self) -> Kernel {
        match self {
            SimdMode::Scalar => Kernel::Scalar,
            SimdMode::Swar => Kernel::Swar,
            SimdMode::Sse2 => {
                if cfg!(target_arch = "x86_64") {
                    Kernel::Sse2
                } else {
                    Kernel::Swar
                }
            }
            SimdMode::Avx2 => {
                if avx2_available() {
                    Kernel::Avx2
                } else {
                    Kernel::Swar
                }
            }
            SimdMode::Avx512 => {
                if avx512_available() {
                    Kernel::Avx512
                } else {
                    Kernel::Swar
                }
            }
            SimdMode::Auto => {
                if avx512_available() {
                    Kernel::Avx512
                } else if avx2_available() {
                    Kernel::Avx2
                } else if cfg!(target_arch = "x86_64") {
                    Kernel::Sse2
                } else {
                    Kernel::Swar
                }
            }
        }
    }
}

/// A concrete kernel body (post feature detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    Scalar,
    Swar,
    Sse2,
    Avx2,
    Avx512,
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// AVX-512 readiness for the replay kernel. The body uses foundation
/// ops (512-bit logic, `epi64` add/shift — `avx512f`) plus byte/word
/// compares from `avx512bw`; require both so the forced tier either
/// runs the real 512-bit body or falls back whole, never a partial mix.
#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_available() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_documented_value() {
        assert_eq!(SimdMode::parse("auto"), SimdMode::Auto);
        assert_eq!(SimdMode::parse("SWAR"), SimdMode::Swar);
        assert_eq!(SimdMode::parse("scalar"), SimdMode::Scalar);
        assert_eq!(SimdMode::parse("sse2"), SimdMode::Sse2);
        assert_eq!(SimdMode::parse("Avx2"), SimdMode::Avx2);
        assert_eq!(SimdMode::parse("avx512"), SimdMode::Avx512);
        assert_eq!(SimdMode::parse(" AVX512 "), SimdMode::Avx512);
    }

    #[test]
    fn parse_warns_and_falls_back_to_auto_on_unknown_values() {
        // The warn-and-default contract (matching TLABP_THREADS): a
        // garbage value must not panic and must resolve to Auto.
        assert_eq!(SimdMode::parse("neon"), SimdMode::Auto);
        assert_eq!(SimdMode::parse(""), SimdMode::Auto);
        assert_eq!(SimdMode::parse("avx1024"), SimdMode::Auto);
        assert!(SimdMode::try_parse("neon").is_err());
        assert_eq!(SimdMode::try_parse("neon").unwrap_err(), "neon");
    }

    #[test]
    fn names_round_trip_through_parse() {
        for mode in [
            SimdMode::Auto,
            SimdMode::Swar,
            SimdMode::Scalar,
            SimdMode::Sse2,
            SimdMode::Avx2,
            SimdMode::Avx512,
        ] {
            assert_eq!(SimdMode::parse(mode.name()), mode);
        }
    }

    #[test]
    fn forced_modes_resolve_to_a_runnable_kernel() {
        // Whatever the host, every mode must land on some body; the
        // bit-identity of the bodies makes the fallback inconsequential.
        for mode in [
            SimdMode::Auto,
            SimdMode::Swar,
            SimdMode::Scalar,
            SimdMode::Sse2,
            SimdMode::Avx2,
            SimdMode::Avx512,
        ] {
            let kernel = mode.kernel();
            if mode == SimdMode::Scalar {
                assert_eq!(kernel, Kernel::Scalar);
            } else if mode == SimdMode::Swar {
                assert_eq!(kernel, Kernel::Swar);
            }
            // resolved_name() must describe the same body kernel() picks.
            let name = mode.resolved_name();
            assert!(["scalar", "swar", "sse2", "avx2", "avx512"].contains(&name));
        }
    }

    #[test]
    fn avx512_resolution_is_all_or_nothing() {
        // A forced avx512 either runs the 512-bit body or degrades to
        // the portable SWAR body — never an intermediate tier, so the
        // differential suites know exactly which two bodies can appear.
        let kernel = SimdMode::Avx512.kernel();
        assert!(kernel == Kernel::Avx512 || kernel == Kernel::Swar);
    }
}
