//! The finite-state Moore machines of the paper's Figure 2.
//!
//! Each pattern history table entry holds the state of one of these
//! automata. The automaton supplies the paper's two functions: the
//! prediction decision function λ ([`Automaton::predict`], Equation 1) and
//! the state transition function δ ([`Automaton::update`], Equation 2).
//!
//! The prose of Section 2.1 fully specifies three of the machines:
//!
//! * **Last-Time** — one bit; predict whatever happened the last time this
//!   history pattern appeared.
//! * **A1** — records the outcomes of the last *two* occurrences of the
//!   pattern; predicts not taken only when neither was taken.
//! * **A2** — the classic two-bit saturating up/down counter (J. Smith);
//!   predict taken when the counter is ≥ 2.
//!
//! A3 and A4 are described only as "variations of A2" (their diagrams are
//! figures we do not have). We reconstruct them as the standard asymmetric
//! counter variants (see DESIGN.md §1, substitution 3):
//!
//! * **A3** — like A2, but a taken branch in the weakly-not-taken state 1
//!   jumps directly to strongly-taken state 3.
//! * **A4** — like A2, but both weak states jump to the adjacent strong
//!   state when confirmed: 1 →(taken) 3 and 2 →(not taken) 0.
//!
//! The reproduction target for this choice is behavioral: Figure 5 of the
//! paper shows A2 ≈ A3 ≈ A4, all better than A1, and Last-Time clearly
//! worst — which these definitions reproduce.
//!
//! Finally, [`Automaton::PresetBit`] models the Static Training schemes
//! (GSg/PSg): a single prediction bit preset from profiling that run-time
//! updates never change.

use std::fmt;
use std::str::FromStr;

/// The state of a pattern-history automaton.
///
/// States are small integers; the meaning depends on the automaton. For the
/// counter-like automata (A2/A3/A4), 0 is strongly-not-taken and 3 is
/// strongly-taken. For A1 the two bits are the last two outcomes. For
/// Last-Time and PresetBit the single bit is the prediction itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State(u8);

impl State {
    /// Creates a state from its integer encoding.
    ///
    /// Validity depends on the automaton; use
    /// [`Automaton::is_valid_state`] to check.
    #[must_use]
    pub fn new(value: u8) -> Self {
        State(value)
    }

    /// The integer encoding of the state.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A pattern-history automaton from the paper's Figure 2 (plus the Static
/// Training preset bit).
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
///
/// let a2 = Automaton::A2;
/// let mut s = a2.initial_state(); // strongly taken (3)
/// assert!(a2.predict(s));
/// s = a2.update(s, false); // one not-taken: now weakly taken (2)
/// assert!(a2.predict(s));
/// s = a2.update(s, false); // second not-taken: now weakly not-taken (1)
/// assert!(!a2.predict(s));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Automaton {
    /// One bit recording the last outcome for this pattern.
    LastTime,
    /// Shift register of the last two outcomes; predicts taken unless both
    /// recorded outcomes were not-taken.
    A1,
    /// Two-bit saturating up/down counter; predicts taken when ≥ 2.
    A2,
    /// A2 variant: weakly-not-taken jumps to strongly-taken on a taken
    /// outcome (reconstructed; see module docs).
    A3,
    /// A2 variant: both weak states jump to the adjacent strong state when
    /// confirmed (reconstructed; see module docs).
    A4,
    /// Static Training preset prediction bit: run-time updates are ignored.
    PresetBit,
}

impl Automaton {
    /// All automata usable as pattern-history entry content.
    pub const ALL: [Automaton; 6] = [
        Automaton::LastTime,
        Automaton::A1,
        Automaton::A2,
        Automaton::A3,
        Automaton::A4,
        Automaton::PresetBit,
    ];

    /// The adaptive automata evaluated in the paper's Figure 5.
    pub const FIGURE5: [Automaton; 5] =
        [Automaton::LastTime, Automaton::A1, Automaton::A2, Automaton::A3, Automaton::A4];

    /// Number of pattern history bits `s` an entry of this automaton needs.
    #[must_use]
    pub fn history_bits(self) -> u32 {
        match self {
            Automaton::LastTime | Automaton::PresetBit => 1,
            Automaton::A1 | Automaton::A2 | Automaton::A3 | Automaton::A4 => 2,
        }
    }

    /// Number of states (`2^s`).
    #[must_use]
    pub fn state_count(self) -> u8 {
        1 << self.history_bits()
    }

    /// Whether `state` is a valid encoding for this automaton.
    #[must_use]
    pub fn is_valid_state(self, state: State) -> bool {
        state.value() < self.state_count()
    }

    /// The initial state prescribed by the paper's Section 4.2: "Since
    /// taken branches are more likely ... all entries are initialized to
    /// state 3. For Last-Time, all entries are initialized to state 1 such
    /// that the branches at the beginning of execution will be more likely
    /// to be predicted taken." The preset bit also initializes to taken.
    #[must_use]
    pub fn initial_state(self) -> State {
        match self {
            Automaton::LastTime | Automaton::PresetBit => State(1),
            Automaton::A1 | Automaton::A2 | Automaton::A3 | Automaton::A4 => State(3),
        }
    }

    /// The prediction decision function λ (Equation 1): the direction
    /// predicted when an entry is in `state`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `state` is not valid for this automaton.
    #[must_use]
    pub fn predict(self, state: State) -> bool {
        debug_assert!(self.is_valid_state(state), "invalid state {state} for {self}");
        match self {
            Automaton::LastTime | Automaton::PresetBit => state.value() == 1,
            // Taken unless no taken branch recorded in the last two.
            Automaton::A1 => state.value() != 0,
            Automaton::A2 | Automaton::A3 | Automaton::A4 => state.value() >= 2,
        }
    }

    /// The state transition function δ (Equation 2): the successor state
    /// after observing outcome `taken`.
    ///
    /// For [`Automaton::PresetBit`] this is the identity: Static Training
    /// never changes pattern history at run time.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `state` is not valid for this automaton.
    #[must_use]
    pub fn update(self, state: State, taken: bool) -> State {
        debug_assert!(self.is_valid_state(state), "invalid state {state} for {self}");
        let s = state.value();
        let next = match self {
            Automaton::PresetBit => s,
            Automaton::LastTime => u8::from(taken),
            Automaton::A1 => ((s << 1) | u8::from(taken)) & 0b11,
            Automaton::A2 => saturating_counter(s, taken),
            Automaton::A3 => match (s, taken) {
                (1, true) => 3,
                _ => saturating_counter(s, taken),
            },
            Automaton::A4 => match (s, taken) {
                (1, true) => 3,
                (2, false) => 0,
                _ => saturating_counter(s, taken),
            },
        };
        State(next)
    }

    /// A 256-entry lookup table fusing δ and λ for the bit-packed PHT.
    ///
    /// Index the table with the byte `(state << 1) | taken`; the entry's
    /// low two bits are the successor state and bit 2 is the prediction λ
    /// made from the *pre-update* state — exactly the contract of
    /// [`crate::pht::PatternHistoryTable::predict_update`].
    ///
    /// Only the low bits of the index are meaningful: the stored state is
    /// masked to the automaton's state space before δ/λ are consulted, so
    /// every one of the 256 byte values is a valid index and the replay
    /// loop's `lut[byte as usize]` never needs a bounds check.
    #[must_use]
    pub fn packed_lut(self) -> [u8; 256] {
        let mask = self.state_count() - 1;
        let mut lut = [0u8; 256];
        for (index, entry) in lut.iter_mut().enumerate() {
            let taken = index & 1 != 0;
            let state = State::new(((index >> 1) as u8) & mask);
            let next = self.update(state, taken).value();
            let predicted = u8::from(self.predict(state));
            *entry = next | (predicted << 2);
        }
        lut
    }

    /// The short name used by the paper's Table 3 configuration strings.
    #[must_use]
    pub fn table3_name(self) -> &'static str {
        match self {
            Automaton::LastTime => "LT",
            Automaton::A1 => "A1",
            Automaton::A2 => "A2",
            Automaton::A3 => "A3",
            Automaton::A4 => "A4",
            Automaton::PresetBit => "PB",
        }
    }
}

fn saturating_counter(s: u8, taken: bool) -> u8 {
    if taken {
        (s + 1).min(3)
    } else {
        s.saturating_sub(1)
    }
}

impl fmt::Display for Automaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table3_name())
    }
}

/// Error returned when parsing an automaton name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAutomatonError {
    input: String,
}

impl fmt::Display for ParseAutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown automaton {:?}, expected one of LT, A1, A2, A3, A4, PB", self.input)
    }
}

impl std::error::Error for ParseAutomatonError {}

impl FromStr for Automaton {
    type Err = ParseAutomatonError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "LT" | "Last-Time" | "LastTime" => Ok(Automaton::LastTime),
            "A1" => Ok(Automaton::A1),
            "A2" => Ok(Automaton::A2),
            "A3" => Ok(Automaton::A3),
            "A4" => Ok(Automaton::A4),
            "PB" | "PresetBit" => Ok(Automaton::PresetBit),
            other => Err(ParseAutomatonError { input: other.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_time_tracks_last_outcome() {
        let a = Automaton::LastTime;
        let mut s = a.initial_state();
        assert!(a.predict(s), "initialized to predict taken");
        s = a.update(s, false);
        assert!(!a.predict(s));
        s = a.update(s, true);
        assert!(a.predict(s));
    }

    #[test]
    fn a1_full_transition_table() {
        let a = Automaton::A1;
        // state bits are (previous << 1) | last
        let expect = [
            // (state, taken) -> next
            ((0, false), 0),
            ((0, true), 1),
            ((1, false), 2),
            ((1, true), 3),
            ((2, false), 0),
            ((2, true), 1),
            ((3, false), 2),
            ((3, true), 3),
        ];
        for ((s, taken), next) in expect {
            assert_eq!(a.update(State(s), taken), State(next), "state {s} taken {taken}");
        }
    }

    #[test]
    fn a1_predicts_not_taken_only_from_zero() {
        let a = Automaton::A1;
        assert!(!a.predict(State(0)));
        for s in 1..4 {
            assert!(a.predict(State(s)));
        }
    }

    #[test]
    fn a2_full_transition_table() {
        let a = Automaton::A2;
        let expect = [
            ((0, false), 0),
            ((0, true), 1),
            ((1, false), 0),
            ((1, true), 2),
            ((2, false), 1),
            ((2, true), 3),
            ((3, false), 2),
            ((3, true), 3),
        ];
        for ((s, taken), next) in expect {
            assert_eq!(a.update(State(s), taken), State(next), "state {s} taken {taken}");
        }
    }

    #[test]
    fn a3_differs_from_a2_only_in_weak_not_taken_on_taken() {
        for s in 0..4u8 {
            for taken in [false, true] {
                let a2 = Automaton::A2.update(State(s), taken);
                let a3 = Automaton::A3.update(State(s), taken);
                if s == 1 && taken {
                    assert_eq!(a3, State(3));
                } else {
                    assert_eq!(a3, a2, "state {s} taken {taken}");
                }
            }
        }
    }

    #[test]
    fn a4_differs_from_a2_in_both_weak_states() {
        for s in 0..4u8 {
            for taken in [false, true] {
                let a2 = Automaton::A2.update(State(s), taken);
                let a4 = Automaton::A4.update(State(s), taken);
                match (s, taken) {
                    (1, true) => assert_eq!(a4, State(3)),
                    (2, false) => assert_eq!(a4, State(0)),
                    _ => assert_eq!(a4, a2, "state {s} taken {taken}"),
                }
            }
        }
    }

    #[test]
    fn counter_predictions_threshold_at_two() {
        for a in [Automaton::A2, Automaton::A3, Automaton::A4] {
            assert!(!a.predict(State(0)));
            assert!(!a.predict(State(1)));
            assert!(a.predict(State(2)));
            assert!(a.predict(State(3)));
        }
    }

    #[test]
    fn preset_bit_never_changes() {
        let a = Automaton::PresetBit;
        for s in 0..2u8 {
            for taken in [false, true] {
                assert_eq!(a.update(State(s), taken), State(s));
            }
        }
        assert!(a.predict(State(1)));
        assert!(!a.predict(State(0)));
    }

    #[test]
    fn updates_stay_in_valid_state_space() {
        for a in Automaton::ALL {
            for s in 0..a.state_count() {
                for taken in [false, true] {
                    let next = a.update(State(s), taken);
                    assert!(a.is_valid_state(next), "{a} from {s} taken {taken}");
                }
            }
        }
    }

    #[test]
    fn initial_states_predict_taken() {
        // Section 4.2: initialization biases every automaton toward taken.
        for a in Automaton::ALL {
            assert!(a.predict(a.initial_state()), "{a} initial state must predict taken");
        }
    }

    #[test]
    fn history_bits_match_state_count() {
        for a in Automaton::ALL {
            assert_eq!(1u8 << a.history_bits(), a.state_count());
        }
    }

    #[test]
    fn name_round_trips_through_parse() {
        for a in Automaton::ALL {
            let parsed: Automaton = a.table3_name().parse().unwrap();
            assert_eq!(parsed, a);
        }
        assert!("A9".parse::<Automaton>().is_err());
        let err = "A9".parse::<Automaton>().unwrap_err();
        assert!(err.to_string().contains("A9"));
    }

    #[test]
    fn saturation_under_long_runs() {
        for a in [Automaton::A2, Automaton::A3, Automaton::A4] {
            let mut s = a.initial_state();
            for _ in 0..10 {
                s = a.update(s, true);
            }
            assert_eq!(s, State(3), "{a} must saturate at 3");
            for _ in 0..10 {
                s = a.update(s, false);
            }
            assert_eq!(s, State(0), "{a} must saturate at 0");
        }
    }
}
