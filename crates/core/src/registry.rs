//! A process-wide registry of named predictor builders.
//!
//! The paper's catalog is closed: every Table 3 configuration is a
//! [`SchemeConfig`](crate::config::SchemeConfig) and enjoys the
//! monomorphized fast paths. Research predictors outside the catalog
//! (gshare, speculative-history GAg variants, instrumented schemes) used
//! to be special cases that each experiment driver wired up by hand. The
//! registry gives them a uniform entry point instead: register a builder
//! under a name once, then reference that name from a
//! [`Job`](../../tlabp_sim/plan/struct.Job.html)'s custom predictor spec.
//! Registered predictors run behind `Box<dyn BranchPredictor>` — the only
//! execution path that still pays dynamic dispatch, reserved for exactly
//! this extension seam.
//!
//! Builders must be `Send + Sync` because the execution engine resolves
//! them on the submitting thread and invokes them on worker threads.
//! Registering a name twice replaces the previous builder (last one
//! wins), so idempotent re-registration from repeated driver runs is
//! safe.
//!
//! # Example
//!
//! ```
//! use tlabp_core::automaton::Automaton;
//! use tlabp_core::registry;
//! use tlabp_core::schemes::Gshare;
//!
//! registry::register("gshare(10)", || Box::new(Gshare::new(10, Automaton::A2)));
//! let builder = registry::builder("gshare(10)").expect("just registered");
//! assert!(builder().name().starts_with("gshare("));
//! ```

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::predictor::BranchPredictor;

/// A shared, thread-safe factory for a boxed predictor.
pub type DynBuilder = Arc<dyn Fn() -> Box<dyn BranchPredictor + Send> + Send + Sync>;

fn table() -> &'static RwLock<HashMap<String, DynBuilder>> {
    static TABLE: OnceLock<RwLock<HashMap<String, DynBuilder>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Registers `builder` under `name`, replacing any previous registration.
pub fn register<F>(name: &str, builder: F)
where
    F: Fn() -> Box<dyn BranchPredictor + Send> + Send + Sync + 'static,
{
    table().write().expect("predictor registry lock").insert(name.to_owned(), Arc::new(builder));
}

/// Looks up the builder registered under `name`.
#[must_use]
pub fn builder(name: &str) -> Option<DynBuilder> {
    table().read().expect("predictor registry lock").get(name).cloned()
}

/// Whether `name` has a registered builder.
#[must_use]
pub fn is_registered(name: &str) -> bool {
    table().read().expect("predictor registry lock").contains_key(name)
}

/// Every registered name, sorted.
#[must_use]
pub fn names() -> Vec<String> {
    let mut names: Vec<String> =
        table().read().expect("predictor registry lock").keys().cloned().collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use crate::schemes::Gshare;

    #[test]
    fn register_and_build() {
        register("test-registry-gshare", || Box::new(Gshare::new(8, Automaton::A2)));
        assert!(is_registered("test-registry-gshare"));
        let predictor = builder("test-registry-gshare").expect("registered")();
        assert!(predictor.name().starts_with("gshare("));
        assert!(names().contains(&"test-registry-gshare".to_owned()));
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        assert!(builder("test-registry-no-such-predictor").is_none());
        assert!(!is_registered("test-registry-no-such-predictor"));
    }

    #[test]
    fn re_registration_replaces() {
        register("test-registry-replaced", || Box::new(Gshare::new(6, Automaton::A2)));
        register("test-registry-replaced", || Box::new(Gshare::new(12, Automaton::A2)));
        let predictor = builder("test-registry-replaced").expect("registered")();
        assert!(predictor.name().contains("12-sr"), "last registration wins: {}", predictor.name());
    }
}
