//! A monomorphized sum of every concrete predictor.
//!
//! [`SchemeConfig::build`](crate::config::SchemeConfig::build) returns
//! `Box<dyn BranchPredictor>`, which pays one virtual dispatch per
//! `predict`/`update` — twice per simulated branch on the simulator's hot
//! loop. [`AnyPredictor`] wraps the same schemes in an enum so a generic
//! `simulate<P: BranchPredictor>` instantiation resolves every call
//! statically: the per-branch cost becomes a jump table the optimizer can
//! hoist out of the loop, and the scheme methods inline into the
//! simulation loop body.
//!
//! The two factories on [`SchemeConfig`](crate::config::SchemeConfig)
//! ([`build_any`](crate::config::SchemeConfig::build_any),
//! [`build_any_trained`](crate::config::SchemeConfig::build_any_trained))
//! construct exactly the same predictor state as their boxed
//! counterparts, so the two paths are bit-identical — a differential test
//! in `tlabp-sim` runs every catalog scheme through both and asserts
//! equal results.
//!
//! # Example
//!
//! ```
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_core::predictor::BranchPredictor;
//! use tlabp_trace::BranchRecord;
//!
//! let mut p = SchemeConfig::pag(12).build_any()?;
//! let branch = BranchRecord::conditional(0x40, true, 0x10, 1);
//! let predicted = p.predict(&branch);
//! p.update(&branch);
//! assert!(predicted);
//! # Ok::<(), tlabp_core::config::BuildError>(())
//! ```

use tlabp_trace::BranchRecord;

use crate::bht::{BhtCursor, BhtSignature};
use crate::predictor::BranchPredictor;
use crate::schemes::{AlwaysTaken, Btb, Btfn, Gag, Pag, Pap, Profiling};

/// Every concrete predictor behind one statically dispatched type.
///
/// GSg and PSg do not appear as variants: their training constructors
/// yield a preset [`Gag`] / [`Pag`] (the Static Training schemes are the
/// adaptive structures with frozen pattern tables), so they map onto
/// those variants.
///
/// The [`Dyn`](AnyPredictor::Dyn) variant is the escape hatch for
/// predictors outside the catalog (built through
/// [`registry`](crate::registry) builders): it pays one virtual dispatch
/// per call, which is exactly the cost model the execution engine
/// advertises for externally-registered schemes. Everything else resolves
/// statically.
#[allow(missing_docs)] // variant names mirror the scheme structs
pub enum AnyPredictor {
    Gag(Gag),
    Pag(Pag),
    Pap(Pap),
    Btb(Btb),
    AlwaysTaken(AlwaysTaken),
    Btfn(Btfn),
    Profiling(Profiling),
    /// An externally-registered predictor behind dynamic dispatch.
    Dyn(Box<dyn BranchPredictor + Send>),
}

impl std::fmt::Debug for AnyPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyPredictor::Gag(p) => f.debug_tuple("Gag").field(p).finish(),
            AnyPredictor::Pag(p) => f.debug_tuple("Pag").field(p).finish(),
            AnyPredictor::Pap(p) => f.debug_tuple("Pap").field(p).finish(),
            AnyPredictor::Btb(p) => f.debug_tuple("Btb").field(p).finish(),
            AnyPredictor::AlwaysTaken(p) => f.debug_tuple("AlwaysTaken").field(p).finish(),
            AnyPredictor::Btfn(p) => f.debug_tuple("Btfn").field(p).finish(),
            AnyPredictor::Profiling(p) => f.debug_tuple("Profiling").field(p).finish(),
            AnyPredictor::Dyn(p) => f.debug_tuple("Dyn").field(&p.name()).finish(),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPredictor::Gag($p) => $body,
            AnyPredictor::Pag($p) => $body,
            AnyPredictor::Pap($p) => $body,
            AnyPredictor::Btb($p) => $body,
            AnyPredictor::AlwaysTaken($p) => $body,
            AnyPredictor::Btfn($p) => $body,
            AnyPredictor::Profiling($p) => $body,
            AnyPredictor::Dyn($p) => $body,
        }
    };
}

impl BranchPredictor for AnyPredictor {
    #[inline]
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        delegate!(self, p => p.predict(branch))
    }

    #[inline]
    fn update(&mut self, branch: &BranchRecord) {
        delegate!(self, p => p.update(branch));
    }

    #[inline]
    fn context_switch(&mut self) {
        delegate!(self, p => p.context_switch());
    }

    #[inline]
    fn step(&mut self, branch: &BranchRecord) -> bool {
        delegate!(self, p => p.step(branch))
    }

    #[inline]
    fn step_interned(&mut self, id: u32, branch: &BranchRecord) -> bool {
        delegate!(self, p => p.step_interned(id, branch))
    }

    // Delegating the whole block (not just each step) hoists the variant
    // match out of the per-event loop: each fused chunk pays one dispatch
    // and then runs a fully monomorphized inner loop over the scheme.
    #[inline]
    fn step_interned_block(&mut self, block: &[(u32, BranchRecord)]) -> u64 {
        delegate!(self, p => p.step_interned_block(block))
    }

    fn shared_bht(&self) -> Option<BhtSignature> {
        delegate!(self, p => p.shared_bht())
    }

    #[inline]
    fn step_shared(
        &mut self,
        pattern: usize,
        cursor: BhtCursor,
        id: u32,
        branch: &BranchRecord,
    ) -> bool {
        delegate!(self, p => p.step_shared(pattern, cursor, id, branch))
    }

    #[inline]
    fn step_shared_block(
        &mut self,
        block: &[(u32, BranchRecord)],
        patterns: &[(usize, BhtCursor)],
    ) -> u64 {
        delegate!(self, p => p.step_shared_block(block, patterns))
    }

    fn name(&self) -> String {
        delegate!(self, p => p.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use crate::config::SchemeConfig;

    #[test]
    fn any_matches_boxed_on_a_branch_sequence() {
        let config = SchemeConfig::pag(8);
        let mut boxed = config.build().unwrap();
        let mut any = config.build_any().unwrap();
        for i in 0..2000u64 {
            let pc = 0x1000 + (i % 17) * 4;
            let taken = (i * 7 + i / 13) % 3 != 0;
            let b = BranchRecord::conditional(pc, taken, pc + 8, i + 1);
            assert_eq!(boxed.predict(&b), any.predict(&b), "branch {i}");
            boxed.update(&b);
            any.update(&b);
            if i % 500 == 250 {
                boxed.context_switch();
                any.context_switch();
            }
        }
        assert_eq!(boxed.name(), any.name());
    }

    #[test]
    fn every_kind_builds_a_variant() {
        assert!(matches!(SchemeConfig::gag(6).build_any().unwrap(), AnyPredictor::Gag(_)));
        assert!(matches!(
            SchemeConfig::btb(Automaton::A2).build_any().unwrap(),
            AnyPredictor::Btb(_)
        ));
        assert!(matches!(SchemeConfig::btfn().build_any().unwrap(), AnyPredictor::Btfn(_)));
    }
}
