//! GAg: Global history register, global pattern history table.

use tlabp_trace::BranchRecord;

use crate::automaton::Automaton;
use crate::history::HistoryRegister;
use crate::pht::PatternHistoryTable;
use crate::predictor::BranchPredictor;

/// Global Two-Level Adaptive Branch Prediction using a global pattern
/// history table (GAg).
///
/// "There is only a single global history register (GHR) and a single
/// global pattern history table (GPHT) ... All branch predictions are based
/// on the same global history register and global pattern history table
/// which are updated after each branch is resolved." Predictions for one
/// branch therefore depend on the outcomes of *other* branches — the source
/// of both GAg's interference (bad at short history) and its ability to
/// capture inter-branch correlation.
///
/// On a context switch only the global history register is reinitialized;
/// the paper notes an initialized GHR "can be refilled quickly", which is
/// why GAg suffers least from context switches (Section 5.1.4).
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Gag;
/// use tlabp_trace::BranchRecord;
///
/// let mut gag = Gag::new(12, Automaton::A2);
/// let b = BranchRecord::conditional(0x40, true, 0x10, 1);
/// let _ = gag.predict(&b);
/// gag.update(&b);
/// assert_eq!(gag.name(), "GAg(HR(1,,12-sr),1xPHT(2^12,A2))");
/// ```
#[derive(Debug, Clone)]
pub struct Gag {
    history: HistoryRegister,
    pht: PatternHistoryTable,
    label: String,
}

impl Gag {
    /// Creates a GAg predictor with a `history_bits`-bit global history
    /// register and a `2^history_bits`-entry global PHT of `automaton`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is out of range (see
    /// [`crate::history::MAX_HISTORY_BITS`]).
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton) -> Self {
        let pht = PatternHistoryTable::new(history_bits, automaton);
        let label = format!("GAg(HR(1,,{history_bits}-sr),1xPHT(2^{history_bits},{automaton}))");
        Gag::with_pht(pht, label)
    }

    /// Creates a GAg-structured predictor over an existing pattern table.
    ///
    /// This is how the GSg Static Training scheme is assembled: the same
    /// global-history structure over a *preset* table whose entries never
    /// change at run time.
    #[must_use]
    pub fn with_pht(pht: PatternHistoryTable, label: String) -> Self {
        let history = HistoryRegister::all_ones(pht.history_bits());
        Gag { history, pht, label }
    }

    /// The global history register length `k`.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }

    /// Read-only access to the pattern history table.
    #[must_use]
    pub fn pht(&self) -> &PatternHistoryTable {
        &self.pht
    }

    /// The current global history pattern.
    #[must_use]
    pub fn current_pattern(&self) -> usize {
        self.history.pattern()
    }
}

impl BranchPredictor for Gag {
    fn predict(&mut self, _branch: &BranchRecord) -> bool {
        self.pht.predict(self.history.pattern())
    }

    fn update(&mut self, branch: &BranchRecord) {
        let pattern = self.history.pattern();
        self.pht.update(pattern, branch.taken);
        self.history.shift_in(branch.taken);
    }

    fn context_switch(&mut self) {
        // Reinitialize the global history register; keep the PHT
        // (Section 5.1.4).
        self.history.fill(true);
    }

    #[inline]
    fn step(&mut self, branch: &BranchRecord) -> bool {
        let pattern = self.history.pattern();
        let predicted = self.pht.predict_update(pattern, branch.taken);
        self.history.shift_in(branch.taken);
        predicted
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(taken: bool, n: u64) -> BranchRecord {
        BranchRecord::conditional(0x100, taken, 0x40, n)
    }

    #[test]
    fn learns_repeating_pattern_perfectly() {
        // Pattern 1 1 0 repeating; with k=6 every distinct history maps to
        // a unique pattern, so after warm-up GAg predicts it exactly.
        let mut gag = Gag::new(6, Automaton::A2);
        let pattern = [true, true, false];
        let mut correct = 0;
        let mut total = 0;
        for i in 0..300u64 {
            let b = branch(pattern[(i % 3) as usize], i);
            let predicted = gag.predict(&b);
            gag.update(&b);
            if i >= 100 {
                total += 1;
                correct += u64::from(predicted == b.taken);
            }
        }
        assert_eq!(correct, total, "steady-state predictions must be perfect");
    }

    #[test]
    fn update_uses_pre_shift_pattern() {
        let mut gag = Gag::new(2, Automaton::LastTime);
        // History starts all ones (pattern 0b11).
        let b = branch(false, 1);
        gag.update(&b);
        // The entry for 0b11 must have learned "not taken".
        assert!(!gag.pht().predict(0b11));
        // And history is now 0b10.
        assert_eq!(gag.current_pattern(), 0b10);
    }

    #[test]
    fn different_branches_share_everything() {
        let mut gag = Gag::new(4, Automaton::A2);
        let a = BranchRecord::conditional(0x10, false, 0x4, 1);
        let b = BranchRecord::conditional(0x20, false, 0x8, 2);
        gag.update(&a);
        // b's update sees a history containing a's outcome.
        assert_eq!(gag.current_pattern(), 0b1110);
        gag.update(&b);
        assert_eq!(gag.current_pattern(), 0b1100);
    }

    #[test]
    fn context_switch_reinitializes_history_only() {
        let mut gag = Gag::new(4, Automaton::A2);
        for i in 0..8 {
            gag.update(&branch(false, i));
        }
        let trained_state = gag.pht().state(0);
        gag.context_switch();
        assert_eq!(gag.current_pattern(), 0b1111, "GHR reinitialized to all ones");
        assert_eq!(gag.pht().state(0), trained_state, "PHT must survive context switch");
    }

    #[test]
    fn name_matches_table3_notation() {
        let gag = Gag::new(18, Automaton::A3);
        assert_eq!(gag.name(), "GAg(HR(1,,18-sr),1xPHT(2^18,A3))");
    }
}
