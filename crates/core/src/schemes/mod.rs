//! All branch prediction schemes evaluated in the paper.
//!
//! * The three variations of Two-Level Adaptive Branch Prediction:
//!   [`Gag`], [`Pag`], [`Pap`] (Section 2.2).
//! * The Static Training schemes of Lee & A. Smith: [`Gsg`] and [`Psg`]
//!   constructors over preset pattern tables (Section 4.2).
//! * The branch-target-buffer designs of J. Smith: [`Btb`] with A2 or
//!   Last-Time entry automata.
//! * The static schemes: [`AlwaysTaken`], [`Btfn`], [`Profiling`].
//! * An extension beyond the paper: [`Gshare`], the address-hashed
//!   global-history predictor the field developed to attack the residual
//!   interference misses the paper's conclusion calls out.

mod btb;
mod gag;
mod gshare;
mod pag;
mod pap;
mod static_schemes;
mod static_training;

pub use btb::Btb;
pub use gag::Gag;
pub use gshare::Gshare;
pub use pag::{Pag, PagDiagnostics};
pub use pap::Pap;
pub use static_schemes::{AlwaysTaken, Btfn, Profiling};
pub use static_training::{train_global, train_per_address, Gsg, PresetTable, Psg};
