//! The Static Training schemes of Lee & A. Smith (GSg and PSg).
//!
//! Static Training has the same two-level *structure* as the adaptive
//! schemes "but with the important difference that the prediction for a
//! given pattern is pre-determined by profiling": a training run gathers,
//! for every history pattern, the direction the next branch most often
//! took; the resulting per-pattern prediction bits are loaded into the
//! pattern history table before the testing run and never change.
//!
//! * **GSg** — global history register over a preset global table.
//! * **PSg** — per-address branch history table over a preset global table
//!   (this is the configuration closest to Lee & A. Smith's published
//!   scheme; the paper reports it at 94.4% average accuracy).
//!
//! The paper deliberately does not simulate PSp (per-address preset
//! tables) because of its profiling storage cost; neither do we.

use tlabp_trace::Trace;

use crate::automaton::{Automaton, State};
use crate::bht::BhtConfig;
use crate::history::HistoryRegister;
use crate::pht::PatternHistoryTable;
use crate::schemes::pag::bht_spec;
use crate::schemes::{Gag, Pag};

/// Per-pattern taken/not-taken statistics gathered from a training trace,
/// and the preset prediction bits derived from them.
///
/// # Example
///
/// ```
/// use tlabp_core::schemes::{train_global, Gsg};
/// use tlabp_trace::synth::RepeatingPattern;
///
/// let training = RepeatingPattern::new(&[true, true, false], 100).generate();
/// let preset = train_global(&training, 6);
/// let gsg = Gsg::new(&preset);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresetTable {
    history_bits: u32,
    taken_counts: Vec<u64>,
    total_counts: Vec<u64>,
}

impl PresetTable {
    fn new(history_bits: u32) -> Self {
        let entries = 1usize << history_bits;
        PresetTable { history_bits, taken_counts: vec![0; entries], total_counts: vec![0; entries] }
    }

    fn record(&mut self, pattern: usize, taken: bool) {
        self.taken_counts[pattern] += u64::from(taken);
        self.total_counts[pattern] += 1;
    }

    /// The history-register length `k` this table was trained for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// The preset prediction for `pattern`: the majority direction observed
    /// in training. Unseen patterns and exact ties predict taken (the
    /// direction branches favor overall).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn prediction(&self, pattern: usize) -> bool {
        let total = self.total_counts[pattern];
        if total == 0 {
            return true;
        }
        2 * self.taken_counts[pattern] >= total
    }

    /// Number of patterns that occurred at least once in training.
    #[must_use]
    pub fn patterns_seen(&self) -> usize {
        self.total_counts.iter().filter(|&&c| c > 0).count()
    }

    /// Materializes the preset bits into a [`PatternHistoryTable`] of
    /// [`Automaton::PresetBit`] entries (which run-time updates never
    /// change).
    #[must_use]
    pub fn to_pht(&self) -> PatternHistoryTable {
        let mut pht = PatternHistoryTable::new(self.history_bits, Automaton::PresetBit);
        for pattern in 0..pht.len() {
            pht.set_state(pattern, State::new(u8::from(self.prediction(pattern))));
        }
        pht
    }
}

/// Profiles a training trace through a single global history register,
/// producing the preset table for a GSg predictor.
///
/// # Panics
///
/// Panics if `history_bits` is out of range.
#[must_use]
pub fn train_global(training: &Trace, history_bits: u32) -> PresetTable {
    let mut preset = PresetTable::new(history_bits);
    let mut history = HistoryRegister::all_ones(history_bits);
    for branch in training.conditional_branches() {
        preset.record(history.pattern(), branch.taken);
        history.shift_in(branch.taken);
    }
    preset
}

/// Profiles a training trace through ideal per-address history registers,
/// producing the preset table for a PSg predictor.
///
/// Profiling uses an ideal (unbounded) per-branch history table: the
/// statistics-gathering pass has no reason to model capacity misses.
///
/// # Panics
///
/// Panics if `history_bits` is out of range.
#[must_use]
pub fn train_per_address(training: &Trace, history_bits: u32) -> PresetTable {
    let mut preset = PresetTable::new(history_bits);
    let mut bht = BhtConfig::Ideal.build(history_bits);
    for branch in training.conditional_branches() {
        bht.access(branch.pc);
        let pattern = bht.pattern(branch.pc).expect("just accessed");
        preset.record(pattern, branch.taken);
        bht.record_outcome(branch.pc, branch.taken);
    }
    preset
}

/// Global Static Training using a preset global pattern history table
/// (GSg): the GAg structure over profiled, immutable prediction bits.
///
/// Returned predictor reports its configuration as
/// `GSg(HR(1,,k-sr),1xPHT(2^k,PB))`.
#[derive(Debug, Clone)]
pub struct Gsg;

impl Gsg {
    /// Assembles a GSg predictor from a preset table produced by
    /// [`train_global`].
    #[must_use]
    #[allow(clippy::new_ret_no_self)]
    pub fn new(preset: &PresetTable) -> Gag {
        let k = preset.history_bits();
        Gag::with_pht(preset.to_pht(), format!("GSg(HR(1,,{k}-sr),1xPHT(2^{k},PB))"))
    }
}

/// Per-address Static Training using a preset global pattern history table
/// (PSg) — Lee & A. Smith's scheme as the paper configures it.
#[derive(Debug, Clone)]
pub struct Psg;

impl Psg {
    /// Assembles a PSg predictor from a preset table produced by
    /// [`train_per_address`], using `bht` for the run-time first level.
    #[must_use]
    #[allow(clippy::new_ret_no_self)]
    pub fn new(preset: &PresetTable, bht: BhtConfig) -> Pag {
        let k = preset.history_bits();
        let label = format!("PSg({},1xPHT(2^{k},PB))", bht_spec(bht, k));
        Pag::with_pht(bht, preset.to_pht(), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::BranchPredictor;
    use tlabp_trace::synth::{BiasedCoins, RepeatingPattern};
    use tlabp_trace::BranchRecord;

    #[test]
    fn preset_majority_and_defaults() {
        let mut preset = PresetTable::new(2);
        preset.record(0b01, true);
        preset.record(0b01, true);
        preset.record(0b01, false);
        preset.record(0b10, false);
        assert!(preset.prediction(0b01), "majority taken");
        assert!(!preset.prediction(0b10), "majority not taken");
        assert!(preset.prediction(0b00), "unseen defaults to taken");
        assert_eq!(preset.patterns_seen(), 2);
    }

    #[test]
    fn tie_breaks_toward_taken() {
        let mut preset = PresetTable::new(1);
        preset.record(0, true);
        preset.record(0, false);
        assert!(preset.prediction(0));
    }

    #[test]
    fn gsg_predicts_trained_pattern_exactly() {
        let pattern = [true, true, false];
        let training = RepeatingPattern::new(&pattern, 200).generate();
        let preset = train_global(&training, 6);
        let mut gsg = Gsg::new(&preset);

        // Same-distribution testing data: GSg should be near perfect.
        let testing = RepeatingPattern::new(&pattern, 100).generate();
        let mut wrong = 0;
        for (i, b) in testing.conditional_branches().enumerate() {
            let predicted = gsg.predict(b);
            gsg.update(b);
            if i >= 20 && predicted != b.taken {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 0);
    }

    #[test]
    fn static_training_cannot_adapt_to_shifted_data() {
        // Train on 90%-taken branches, test on 10%-taken: the preset bits
        // are wrong for the new data and Static Training cannot adapt —
        // the paper's core criticism of profiling-based schemes.
        let training = BiasedCoins::uniform(4, 0.9, 500, 11).generate();
        let preset = train_per_address(&training, 4);
        let mut psg = Psg::new(&preset, BhtConfig::PAPER_DEFAULT);
        let mut pag = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);

        let testing = BiasedCoins::uniform(4, 0.1, 500, 13).generate();
        let mut psg_correct = 0u64;
        let mut pag_correct = 0u64;
        let mut total = 0u64;
        for b in testing.conditional_branches() {
            psg_correct += u64::from(psg.process(b));
            pag_correct += u64::from(pag.process(b));
            total += 1;
        }
        assert!(
            pag_correct > psg_correct,
            "adaptive PAg ({pag_correct}/{total}) must beat preset PSg ({psg_correct}/{total}) \
             when the data distribution shifts"
        );
    }

    #[test]
    fn preset_bits_do_not_change_at_run_time() {
        let training = RepeatingPattern::new(&[true], 50).generate();
        let preset = train_global(&training, 3);
        let mut gsg = Gsg::new(&preset);
        // Hammer with not-taken branches; predictions keep following the
        // preset table (which defaults everything to taken here).
        for i in 0..50u64 {
            let b = BranchRecord::conditional(0x40, false, 0x10, i);
            let predicted = gsg.predict(&b);
            gsg.update(&b);
            assert!(predicted, "preset GSg must keep predicting taken at step {i}");
        }
    }

    #[test]
    fn names_follow_table3() {
        let preset = PresetTable::new(6);
        assert_eq!(Gsg::new(&preset).name(), "GSg(HR(1,,6-sr),1xPHT(2^6,PB))");
        assert_eq!(
            Psg::new(&preset, BhtConfig::PAPER_DEFAULT).name(),
            "PSg(BHT(512,4,6-sr),1xPHT(2^6,PB))"
        );
    }

    #[test]
    fn per_address_training_separates_branches() {
        // Branch A always taken, branch B always not taken, alternating.
        // Per-address training sees pattern all-ones→taken (from A) and
        // all-zeros→not-taken (from B); global training would interleave
        // them into mixed patterns.
        let mut trace = Trace::new();
        for i in 0..100u64 {
            trace.push(BranchRecord::conditional(0x100, true, 0x40, 2 * i + 1));
            trace.push(BranchRecord::conditional(0x200, false, 0x40, 2 * i + 2));
        }
        let preset = train_per_address(&trace, 4);
        assert!(preset.prediction(0b1111));
        assert!(!preset.prediction(0b0000));
    }
}
