//! PAg: Per-address branch history table, global pattern history table.

use tlabp_trace::BranchRecord;

use crate::automaton::Automaton;
use crate::bht::{BhtConfig, BhtCursor, BhtSignature, BhtStats, BranchHistoryTable};
use crate::pht::PatternHistoryTable;
use crate::predictor::BranchPredictor;

/// Per-address Two-Level Adaptive Branch Prediction using a global pattern
/// history table (PAg).
///
/// "One history register is associated with each distinct static
/// conditional branch to collect branch history information individually
/// ... Since all branches update the same pattern history table, the
/// pattern history interference still exists." The paper concludes PAg is
/// the most cost-effective variation: 12 bits of per-branch history reach
/// the same ≈97% accuracy that GAg needs 18 bits of global history for,
/// at lower hardware cost than PAp (Figure 8).
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::bht::BhtConfig;
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Pag;
///
/// let pag = Pag::new(12, BhtConfig::PAPER_DEFAULT, Automaton::A2);
/// assert_eq!(pag.name(), "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))");
/// ```
#[derive(Debug, Clone)]
pub struct Pag {
    bht: BranchHistoryTable,
    pht: PatternHistoryTable,
    label: String,
    flush_pht_on_switch: bool,
}

impl Pag {
    /// Creates a PAg predictor with the given history length, BHT
    /// implementation and pattern automaton.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is out of range or the BHT geometry is
    /// invalid.
    #[must_use]
    pub fn new(history_bits: u32, bht: BhtConfig, automaton: Automaton) -> Self {
        let pht = PatternHistoryTable::new(history_bits, automaton);
        let label =
            format!("PAg({},1xPHT(2^{history_bits},{automaton}))", bht_spec(bht, history_bits));
        Pag { bht: bht.build(history_bits), pht, label, flush_pht_on_switch: false }
    }

    /// Creates a PAg-structured predictor over an existing pattern table —
    /// the assembly used by the PSg Static Training scheme.
    #[must_use]
    pub fn with_pht(bht: BhtConfig, pht: PatternHistoryTable, label: String) -> Self {
        Pag { bht: bht.build(pht.history_bits()), pht, label, flush_pht_on_switch: false }
    }

    /// Ablation switch for Section 5.1.4's design decision: when enabled,
    /// a context switch reinitializes the pattern history table too. The
    /// paper deliberately does *not* do this ("the pattern history table
    /// of the saved process is more likely to be similar to the current
    /// process's pattern history table than to a re-initialized" one);
    /// this knob lets the experiment harness quantify that choice.
    pub fn set_flush_pht_on_context_switch(&mut self, enabled: bool) {
        self.flush_pht_on_switch = enabled;
    }

    /// Read-only access to the pattern history table.
    #[must_use]
    pub fn pht(&self) -> &PatternHistoryTable {
        &self.pht
    }

    /// Branch-history-table hit statistics.
    #[must_use]
    pub fn bht_stats(&self) -> BhtStats {
        self.bht.stats()
    }
}

/// Everything the PAg structure knew at prediction time — used by the
/// misprediction-characterization analysis (the paper's concluding
/// remark: "We are examining that 3 percent to try to characterize it").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagDiagnostics {
    /// The direction predicted.
    pub predicted_taken: bool,
    /// Whether the branch's history register was resident in the BHT
    /// (a miss means the prediction came from a fresh all-ones history).
    pub bht_hit: bool,
    /// The pattern used to index the PHT.
    pub pattern: usize,
    /// The PHT entry's automaton state at prediction time.
    pub pattern_state: crate::automaton::State,
}

impl Pag {
    /// Like [`BranchPredictor::predict`], but also reports *why* the
    /// prediction came out the way it did. Call [`BranchPredictor::update`]
    /// afterwards exactly as with `predict`.
    pub fn predict_diagnosed(&mut self, branch: &BranchRecord) -> PagDiagnostics {
        let bht_hit = self.bht.access(branch.pc);
        let pattern = self.bht.pattern(branch.pc).expect("entry was just accessed or allocated");
        PagDiagnostics {
            predicted_taken: self.pht.predict(pattern),
            bht_hit,
            pattern,
            pattern_state: self.pht.state(pattern),
        }
    }
}

pub(crate) fn bht_spec(bht: BhtConfig, history_bits: u32) -> String {
    match bht {
        BhtConfig::Ideal => format!("IBHT(inf,,{history_bits}-sr)"),
        BhtConfig::Cache { entries, ways } => {
            format!("BHT({entries},{ways},{history_bits}-sr)")
        }
    }
}

impl BranchPredictor for Pag {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        self.bht.access(branch.pc);
        let pattern = self.bht.pattern(branch.pc).expect("entry was just accessed or allocated");
        self.pht.predict(pattern)
    }

    fn update(&mut self, branch: &BranchRecord) {
        // Defensive: if update arrives without a preceding predict (or
        // after a flush in between), allocate the entry first.
        if self.bht.pattern(branch.pc).is_none() {
            self.bht.access(branch.pc);
        }
        let pattern = self.bht.pattern(branch.pc).expect("entry present");
        self.pht.update(pattern, branch.taken);
        self.bht.record_outcome(branch.pc, branch.taken);
    }

    fn context_switch(&mut self) {
        // Flush the BHT; the PHT is deliberately retained (Section 5.1.4)
        // unless the ablation knob says otherwise.
        self.bht.flush();
        if self.flush_pht_on_switch {
            self.pht.reinitialize();
        }
    }

    #[inline]
    fn step(&mut self, branch: &BranchRecord) -> bool {
        let (pattern, cursor) = self.bht.access_pattern(branch.pc);
        let predicted = self.pht.predict_update(pattern, branch.taken);
        self.bht.record_outcome_at(cursor, branch.pc, branch.taken);
        predicted
    }

    #[inline]
    fn step_interned(&mut self, id: u32, branch: &BranchRecord) -> bool {
        let (pattern, cursor) = self.bht.access_pattern_interned(id, branch.pc);
        let predicted = self.pht.predict_update(pattern, branch.taken);
        self.bht.record_outcome_at_interned(cursor, id, branch.taken);
        predicted
    }

    fn shared_bht(&self) -> Option<BhtSignature> {
        Some(self.bht.signature())
    }

    // With the first-level walk hoisted out, a PAg step is just the
    // shared pattern table transition.
    #[inline]
    fn step_shared(
        &mut self,
        pattern: usize,
        _cursor: BhtCursor,
        _id: u32,
        branch: &BranchRecord,
    ) -> bool {
        self.pht.predict_update(pattern, branch.taken)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(pc: u64, taken: bool, n: u64) -> BranchRecord {
        BranchRecord::conditional(pc, taken, pc.wrapping_sub(8), n)
    }

    #[test]
    fn per_branch_history_is_isolated() {
        let mut pag = Pag::new(4, BhtConfig::Ideal, Automaton::A2);
        // Branch A always taken, branch B always not taken; their
        // histories must not pollute each other.
        for i in 0..40u64 {
            pag.process_pair(i);
        }
    }

    impl Pag {
        /// Test helper: run one A(taken)/B(not-taken) pair and assert
        /// steady-state correctness after warm-up.
        fn process_pair(&mut self, i: u64) {
            let a = branch(0x100, true, 2 * i);
            let b = branch(0x200, false, 2 * i + 1);
            let pa = self.predict(&a);
            self.update(&a);
            let pb = self.predict(&b);
            self.update(&b);
            if i > 10 {
                assert!(pa, "A must be predicted taken at iteration {i}");
                assert!(!pb, "B must be predicted not taken at iteration {i}");
            }
        }
    }

    #[test]
    fn learns_loop_exit_with_sufficient_history() {
        // A 4-iteration loop: T T T N repeating. k=4 captures the full
        // period, so steady-state prediction is perfect — the paper's core
        // claim about loop branches.
        let mut pag = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let outcomes = [true, true, true, false];
        let mut wrong_late = 0;
        for i in 0..400u64 {
            let b = branch(0x40, outcomes[(i % 4) as usize], i);
            let predicted = pag.predict(&b);
            pag.update(&b);
            if i >= 200 && predicted != b.taken {
                wrong_late += 1;
            }
        }
        assert_eq!(wrong_late, 0);
    }

    #[test]
    fn last_time_cannot_learn_loop_exit() {
        // The same loop under a Last-Time PHT keeps mispredicting the exit
        // and the re-entry (Figure 5's reason A2 beats Last-Time)... unless
        // the pattern repeats exactly, in which case LT *can* learn it.
        // Use a noisy pattern to defeat it: alternate exits.
        let mut pag = Pag::new(2, BhtConfig::PAPER_DEFAULT, Automaton::LastTime);
        let mut wrong = 0;
        let mut total = 0;
        // Outcome depends on history in a way 2 bits cannot capture:
        // period-5 pattern with k=2.
        let outcomes = [true, true, false, true, false];
        for i in 0..500u64 {
            let b = branch(0x40, outcomes[(i % 5) as usize], i);
            let predicted = pag.predict(&b);
            pag.update(&b);
            if i >= 100 {
                total += 1;
                wrong += u64::from(predicted != b.taken);
            }
        }
        assert!(wrong > 0, "expected mispredictions, got {wrong}/{total}");
    }

    #[test]
    fn context_switch_flushes_bht_keeps_pht() {
        let mut pag = Pag::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        for i in 0..20u64 {
            let b = branch(0x40, false, i);
            pag.predict(&b);
            pag.update(&b);
        }
        let state_before = pag.pht().state(0);
        pag.context_switch();
        assert_eq!(pag.pht().state(0), state_before);
        // After the flush the next access misses and reallocates.
        let misses_before = pag.bht_stats().misses;
        let b = branch(0x40, false, 100);
        pag.predict(&b);
        assert_eq!(pag.bht_stats().misses, misses_before + 1);
    }

    #[test]
    fn ideal_name_uses_ibht_notation() {
        let pag = Pag::new(12, BhtConfig::Ideal, Automaton::A2);
        assert_eq!(pag.name(), "PAg(IBHT(inf,,12-sr),1xPHT(2^12,A2))");
    }
}
