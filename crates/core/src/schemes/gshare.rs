//! Gshare: a global-history predictor with address hashing (extension).
//!
//! The paper closes by noting that its 3 percent miss rate "needs
//! improvement. We are examining that 3 percent to try to characterize it
//! and hopefully reduce it." A large share of that residual turned out to
//! be *pattern interference* in the global table — different branches
//! whose identical global histories index the same entry but want
//! different outcomes. The fix the field converged on shortly after
//! (McFarling's *gshare*) indexes the pattern table with the global
//! history **XOR the branch address**, spreading branches with identical
//! histories across the table.
//!
//! This module implements gshare on top of the same building blocks as
//! GAg, as the natural "future work" extension of the paper; the
//! experiment harness compares it against GAg at equal table sizes.

use tlabp_trace::BranchRecord;

use crate::automaton::Automaton;
use crate::history::HistoryRegister;
use crate::pht::PatternHistoryTable;
use crate::predictor::BranchPredictor;

/// The gshare predictor: a single global history register whose content,
/// XORed with the low bits of the branch address, indexes a global
/// pattern history table.
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Gshare;
/// use tlabp_trace::BranchRecord;
///
/// let mut gshare = Gshare::new(12, Automaton::A2);
/// let b = BranchRecord::conditional(0x40, true, 0x10, 1);
/// let _ = gshare.predict(&b);
/// gshare.update(&b);
/// assert_eq!(gshare.name(), "gshare(HR(1,,12-sr),1xPHT(2^12,A2))");
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    history: HistoryRegister,
    pht: PatternHistoryTable,
}

impl Gshare {
    /// Creates a gshare predictor with `history_bits` of global history
    /// and a `2^history_bits`-entry pattern table.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is out of range (see
    /// [`crate::history::MAX_HISTORY_BITS`]).
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton) -> Self {
        Gshare {
            history: HistoryRegister::all_ones(history_bits),
            pht: PatternHistoryTable::new(history_bits, automaton),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = self.pht.len() - 1;
        // Word-granular address bits, like the BHT indexing.
        (self.history.pattern() ^ ((pc >> 2) as usize)) & mask
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        self.pht.predict(self.index(branch.pc))
    }

    fn update(&mut self, branch: &BranchRecord) {
        let index = self.index(branch.pc);
        self.pht.update(index, branch.taken);
        self.history.shift_in(branch.taken);
    }

    fn context_switch(&mut self) {
        self.history.fill(true);
    }

    fn name(&self) -> String {
        let k = self.history.len();
        format!("gshare(HR(1,,{k}-sr),1xPHT(2^{k},{}))", self.pht.automaton())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Gag;

    fn run(predictor: &mut dyn BranchPredictor, records: &[(u64, bool)]) -> u64 {
        let mut correct = 0;
        for (i, &(pc, taken)) in records.iter().enumerate() {
            let record = BranchRecord::conditional(pc, taken, pc + 16, i as u64 + 1);
            let predicted = predictor.predict(&record);
            predictor.update(&record);
            correct += u64::from(predicted == taken);
        }
        correct
    }

    #[test]
    fn learns_a_repeating_pattern_like_gag() {
        let records: Vec<(u64, bool)> = (0..600).map(|i| (0x100, i % 3 != 2)).collect();
        let mut gshare = Gshare::new(8, Automaton::A2);
        let correct = run(&mut gshare, &records);
        assert!(correct > 560, "correct = {correct}");
    }

    #[test]
    fn address_hashing_separates_interfering_branches() {
        // Two branches that always see the same global history pattern
        // (strict alternation of the pair) but want opposite outcomes.
        // GAg's shared entry ping-pongs; gshare's XOR separates them.
        let mut records = Vec::new();
        for _ in 0..400 {
            records.push((0x100u64, true));
            records.push((0x204u64, false));
        }
        let mut gshare = Gshare::new(10, Automaton::A2);
        let mut gag = Gag::new(10, Automaton::A2);
        let gshare_correct = run(&mut gshare, &records);
        let gag_correct = run(&mut gag, &records);
        assert!(gshare_correct >= gag_correct, "gshare {gshare_correct} vs GAg {gag_correct}");
        assert!(gshare_correct > 780, "gshare should be near perfect: {gshare_correct}");
    }

    #[test]
    fn context_switch_reinitializes_history() {
        let mut gshare = Gshare::new(6, Automaton::A2);
        let record = BranchRecord::conditional(0x40, false, 0x10, 1);
        for _ in 0..10 {
            gshare.update(&record);
        }
        gshare.context_switch();
        assert_eq!(gshare.history.pattern(), 0b111111);
    }

    #[test]
    fn index_stays_in_table() {
        let gshare = Gshare::new(6, Automaton::A2);
        for pc in [0u64, 0x3c, 0xffff_ffff, u64::MAX] {
            assert!(gshare.index(pc) < 64);
        }
    }
}
