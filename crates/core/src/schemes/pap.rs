//! PAp: Per-address branch history table, per-address pattern history
//! tables.

use crate::fxhash::FxHashMap;

use tlabp_trace::BranchRecord;

use crate::automaton::Automaton;
use crate::bht::{BhtConfig, BhtCursor, BhtSignature, BhtStats, BranchHistoryTable};
use crate::pht::PatternHistoryTable;
use crate::predictor::BranchPredictor;
use crate::schemes::pag::bht_spec;

/// Per-address Two-Level Adaptive Branch Prediction using per-address
/// pattern history tables (PAp).
///
/// "In order to completely remove the interference in both levels, each
/// static branch has its own pattern history table." With a practical
/// (cache) BHT, each *physical entry slot* owns a pattern history table —
/// that is what the hardware provides (`p = h` in the cost model of
/// Section 3.4) — so a branch that reallocates an evicted slot inherits
/// the previous occupant's pattern history. With the ideal BHT every
/// static branch gets a private table.
///
/// PAp achieves the paper's target ≈97% accuracy with only 6 history bits
/// (Figure 8) but is the most expensive variation because of the `h`
/// pattern history tables.
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::bht::BhtConfig;
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Pap;
///
/// let pap = Pap::new(6, BhtConfig::PAPER_DEFAULT, Automaton::A2);
/// assert_eq!(pap.name(), "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))");
/// ```
#[derive(Debug, Clone)]
pub struct Pap {
    bht: BranchHistoryTable,
    tables: PapTables,
    history_bits: u32,
    automaton: Automaton,
    label: String,
}

#[derive(Debug, Clone)]
enum PapTables {
    /// One PHT per physical BHT slot (practical implementation).
    PerSlot(Vec<PatternHistoryTable>),
    /// One PHT per static branch (ideal implementation). The pc-keyed
    /// map serves the ordinary paths; the dense vector serves
    /// [`BranchPredictor::step_interned`], which indexes by the branch's
    /// interned id instead of hashing the pc. A predictor instance only
    /// ever populates one of the two (the simulation paths never mix
    /// keying modes on one instance).
    PerBranch {
        keyed: FxHashMap<u64, PatternHistoryTable>,
        interned: Vec<Option<PatternHistoryTable>>,
    },
}

impl Pap {
    /// Creates a PAp predictor.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is out of range or the BHT geometry is
    /// invalid.
    #[must_use]
    pub fn new(history_bits: u32, bht: BhtConfig, automaton: Automaton) -> Self {
        let table = bht.build(history_bits);
        let tables = match bht {
            BhtConfig::Ideal => {
                PapTables::PerBranch { keyed: FxHashMap::default(), interned: Vec::new() }
            }
            BhtConfig::Cache { entries, .. } => {
                PapTables::PerSlot(vec![PatternHistoryTable::new(history_bits, automaton); entries])
            }
        };
        let set_size = match bht {
            BhtConfig::Ideal => "inf".to_owned(),
            BhtConfig::Cache { entries, .. } => entries.to_string(),
        };
        let label = format!(
            "PAp({},{set_size}xPHT(2^{history_bits},{automaton}))",
            bht_spec(bht, history_bits)
        );
        Pap { bht: table, tables, history_bits, automaton, label }
    }

    /// Branch-history-table hit statistics.
    #[must_use]
    pub fn bht_stats(&self) -> BhtStats {
        self.bht.stats()
    }

    /// The per-table history-register length `k`.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// The automaton stored in every pattern table entry.
    #[must_use]
    pub fn automaton(&self) -> Automaton {
        self.automaton
    }

    /// Number of pattern history tables currently instantiated.
    #[must_use]
    pub fn pattern_table_count(&self) -> usize {
        match &self.tables {
            PapTables::PerSlot(v) => v.len(),
            PapTables::PerBranch { keyed, interned } => {
                keyed.len() + interned.iter().filter(|t| t.is_some()).count()
            }
        }
    }

    fn table_mut(&mut self, pc: u64) -> &mut PatternHistoryTable {
        let history_bits = self.history_bits;
        let automaton = self.automaton;
        match &mut self.tables {
            PapTables::PerSlot(tables) => {
                let slot = self.bht.slot_of(pc).expect("cache BHT entry resident after access");
                &mut tables[slot]
            }
            PapTables::PerBranch { keyed, .. } => {
                keyed.entry(pc).or_insert_with(|| PatternHistoryTable::new(history_bits, automaton))
            }
        }
    }
}

impl BranchPredictor for Pap {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        self.bht.access(branch.pc);
        let pattern = self.bht.pattern(branch.pc).expect("entry present after access");
        self.table_mut(branch.pc).predict(pattern)
    }

    fn update(&mut self, branch: &BranchRecord) {
        if self.bht.pattern(branch.pc).is_none() {
            self.bht.access(branch.pc);
        }
        let pattern = self.bht.pattern(branch.pc).expect("entry present");
        self.table_mut(branch.pc).update(pattern, branch.taken);
        self.bht.record_outcome(branch.pc, branch.taken);
    }

    fn context_switch(&mut self) {
        // Flush the BHT; all pattern history tables are retained.
        self.bht.flush();
    }

    #[inline]
    fn step(&mut self, branch: &BranchRecord) -> bool {
        let (pattern, cursor) = self.bht.access_pattern(branch.pc);
        let history_bits = self.history_bits;
        let automaton = self.automaton;
        let table = match (&mut self.tables, cursor.slot()) {
            (PapTables::PerSlot(tables), Some(slot)) => &mut tables[slot],
            (PapTables::PerBranch { keyed, .. }, _) => keyed
                .entry(branch.pc)
                .or_insert_with(|| PatternHistoryTable::new(history_bits, automaton)),
            (PapTables::PerSlot(_), None) => {
                unreachable!("cache BHT always yields a slot cursor")
            }
        };
        let predicted = table.predict_update(pattern, branch.taken);
        self.bht.record_outcome_at(cursor, branch.pc, branch.taken);
        predicted
    }

    #[inline]
    fn step_interned(&mut self, id: u32, branch: &BranchRecord) -> bool {
        let (pattern, cursor) = self.bht.access_pattern_interned(id, branch.pc);
        let history_bits = self.history_bits;
        let automaton = self.automaton;
        let table = match (&mut self.tables, cursor.slot()) {
            (PapTables::PerSlot(tables), Some(slot)) => &mut tables[slot],
            (PapTables::PerBranch { interned, .. }, _) => {
                let index = id as usize;
                if index >= interned.len() {
                    interned.resize(index + 1, None);
                }
                interned[index]
                    .get_or_insert_with(|| PatternHistoryTable::new(history_bits, automaton))
            }
            (PapTables::PerSlot(_), None) => {
                unreachable!("cache BHT always yields a slot cursor")
            }
        };
        let predicted = table.predict_update(pattern, branch.taken);
        self.bht.record_outcome_at_interned(cursor, id, branch.taken);
        predicted
    }

    fn shared_bht(&self) -> Option<BhtSignature> {
        Some(self.bht.signature())
    }

    // The externally-walked table has the same signature as this
    // predictor's own, so its cursor resolves the same physical slot (and
    // its allocations pick the same victims) — `tables` stays keyed
    // exactly as in `step_interned`.
    #[inline]
    fn step_shared(
        &mut self,
        pattern: usize,
        cursor: BhtCursor,
        id: u32,
        branch: &BranchRecord,
    ) -> bool {
        let history_bits = self.history_bits;
        let automaton = self.automaton;
        let table = match (&mut self.tables, cursor.slot()) {
            (PapTables::PerSlot(tables), Some(slot)) => &mut tables[slot],
            (PapTables::PerBranch { interned, .. }, _) => {
                let index = id as usize;
                if index >= interned.len() {
                    interned.resize(index + 1, None);
                }
                interned[index]
                    .get_or_insert_with(|| PatternHistoryTable::new(history_bits, automaton))
            }
            (PapTables::PerSlot(_), None) => {
                unreachable!("cache BHT always yields a slot cursor")
            }
        };
        table.predict_update(pattern, branch.taken)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(pc: u64, taken: bool, n: u64) -> BranchRecord {
        BranchRecord::conditional(pc, taken, pc.wrapping_sub(8), n)
    }

    #[test]
    fn pattern_history_is_private_per_branch() {
        // Branch A repeats T,T,N and branch B repeats T,N,N. Their
        // pattern→outcome maps disagree on histories (T,N) and (N,T), so a
        // shared Last-Time PHT ping-pongs on those patterns while PAp's
        // per-address tables predict both branches perfectly (k=2 covers a
        // period-3 sequence's distinguishing histories).
        let a_seq = [true, true, false];
        let b_seq = [true, false, false];

        let mut pap = Pap::new(2, BhtConfig::Ideal, Automaton::LastTime);
        let mut pap_wrong = 0;
        let mut pag = crate::schemes::Pag::new(2, BhtConfig::Ideal, Automaton::LastTime);
        let mut pag_wrong = 0;
        for i in 0..300u64 {
            let a = branch(0x100, a_seq[(i % 3) as usize], 2 * i);
            let b = branch(0x200, b_seq[(i % 3) as usize], 2 * i + 1);
            for rec in [a, b] {
                for (predictor, wrong) in [
                    (&mut pap as &mut dyn BranchPredictor, &mut pap_wrong),
                    (&mut pag as &mut dyn BranchPredictor, &mut pag_wrong),
                ] {
                    let predicted = predictor.predict(&rec);
                    predictor.update(&rec);
                    if i >= 100 && predicted != rec.taken {
                        *wrong += 1;
                    }
                }
            }
        }
        assert_eq!(pap_wrong, 0, "PAp removes pattern interference");
        assert!(pag_wrong > 0, "shared PHT must show interference here");
    }

    #[test]
    fn per_slot_tables_are_allocated_up_front() {
        let pap = Pap::new(6, BhtConfig::Cache { entries: 128, ways: 4 }, Automaton::A2);
        assert_eq!(pap.pattern_table_count(), 128);
    }

    #[test]
    fn per_branch_tables_grow_on_demand() {
        let mut pap = Pap::new(4, BhtConfig::Ideal, Automaton::A2);
        assert_eq!(pap.pattern_table_count(), 0);
        for pc in [0x10u64, 0x20, 0x30] {
            let b = branch(pc, true, pc);
            pap.predict(&b);
            pap.update(&b);
        }
        assert_eq!(pap.pattern_table_count(), 3);
    }

    #[test]
    fn slot_reallocation_inherits_pattern_history() {
        // Direct-mapped 4-entry BHT: two pcs conflict on set 0. The second
        // branch inherits the first's per-slot PHT — the interference the
        // ideal version avoids.
        let mut pap = Pap::new(2, BhtConfig::Cache { entries: 4, ways: 1 }, Automaton::LastTime);
        let a = branch(0, false, 1); // set 0
        let conflicting = branch(4 * 4, true, 2); // also set 0
                                                  // Train pattern 0b11 (fresh all-ones history) to "not taken" via A.
        pap.predict(&a);
        pap.update(&a);
        // B evicts A; fresh history = 0b11 again; its prediction comes from
        // the PHT state A left behind.
        let predicted = pap.predict(&conflicting);
        assert!(!predicted, "slot PHT must carry A's learned not-taken");
    }

    #[test]
    fn context_switch_keeps_pattern_tables() {
        let mut pap = Pap::new(4, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        for i in 0..20u64 {
            let b = branch(0x40, false, i);
            pap.predict(&b);
            pap.update(&b);
        }
        let tables_before = pap.pattern_table_count();
        pap.context_switch();
        assert_eq!(pap.pattern_table_count(), tables_before);
        let b = branch(0x40, false, 100);
        let misses_before = pap.bht_stats().misses;
        pap.predict(&b);
        assert_eq!(pap.bht_stats().misses, misses_before + 1, "BHT was flushed");
    }

    #[test]
    fn name_matches_table3_notation() {
        let pap = Pap::new(6, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        assert_eq!(pap.name(), "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))");
        let ideal = Pap::new(6, BhtConfig::Ideal, Automaton::A2);
        assert_eq!(ideal.name(), "PAp(IBHT(inf,,6-sr),infxPHT(2^6,A2))");
    }
}
