//! The static prediction schemes the paper compares against: Always
//! Taken, Backward-Taken/Forward-Not-Taken, and Profiling.

use crate::fxhash::FxHashMap;

use tlabp_trace::{BranchRecord, Trace};

use crate::predictor::BranchPredictor;

/// Predicts taken for every branch.
///
/// The paper measures this baseline at about 62.5% average accuracy
/// (Figure 11).
///
/// # Example
///
/// ```
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::AlwaysTaken;
/// use tlabp_trace::BranchRecord;
///
/// let mut p = AlwaysTaken::new();
/// assert!(p.predict(&BranchRecord::conditional(0x40, false, 0x10, 1)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl AlwaysTaken {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        AlwaysTaken
    }
}

impl BranchPredictor for AlwaysTaken {
    fn predict(&mut self, _branch: &BranchRecord) -> bool {
        true
    }

    fn update(&mut self, _branch: &BranchRecord) {}

    fn name(&self) -> String {
        "AlwaysTaken".to_owned()
    }
}

/// Backward Taken, Forward Not taken (BTFN): "if the branch is backward,
/// predict taken, if forward, predict not taken."
///
/// Effective for loop-bound programs (one miss per loop execution), poor
/// on irregular code; the paper measures about 68.5% average accuracy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Btfn;

impl Btfn {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        Btfn
    }
}

impl BranchPredictor for Btfn {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        branch.is_backward()
    }

    fn update(&mut self, _branch: &BranchRecord) {}

    fn name(&self) -> String {
        "BTFN".to_owned()
    }
}

/// The profiling scheme: each static branch is statically predicted in the
/// direction it took most frequently during a training run.
///
/// "The profiling information of a program executed with a training data
/// set is used for branch predictions for the program executed with testing
/// data sets." Branches never seen in training predict taken. The paper
/// measures about 91% average accuracy.
///
/// # Example
///
/// ```
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Profiling;
/// use tlabp_trace::synth::BiasedCoins;
///
/// let training = BiasedCoins::uniform(8, 0.8, 200, 1).generate();
/// let mut p = Profiling::train(&training);
/// assert_eq!(p.name(), "Profiling");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profiling {
    predictions: FxHashMap<u64, bool>,
}

impl Profiling {
    /// Builds per-branch majority predictions from a training trace.
    #[must_use]
    pub fn train(training: &Trace) -> Self {
        let mut counts: FxHashMap<u64, (u64, u64)> = FxHashMap::default();
        for branch in training.conditional_branches() {
            let entry = counts.entry(branch.pc).or_insert((0, 0));
            entry.0 += u64::from(branch.taken);
            entry.1 += 1;
        }
        let predictions =
            counts.into_iter().map(|(pc, (taken, total))| (pc, 2 * taken >= total)).collect();
        Profiling { predictions }
    }

    /// Number of static branches with a profiled prediction.
    #[must_use]
    pub fn profiled_branches(&self) -> usize {
        self.predictions.len()
    }
}

impl BranchPredictor for Profiling {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        self.predictions.get(&branch.pc).copied().unwrap_or(true)
    }

    fn update(&mut self, _branch: &BranchRecord) {}

    fn name(&self) -> String {
        "Profiling".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_ignores_everything() {
        let mut p = AlwaysTaken::new();
        let b = BranchRecord::conditional(0x40, false, 0x10, 1);
        assert!(p.predict(&b));
        p.update(&b);
        p.context_switch();
        assert!(p.predict(&b));
    }

    #[test]
    fn btfn_follows_direction() {
        let mut p = Btfn::new();
        let backward = BranchRecord::conditional(0x100, false, 0x80, 1);
        let forward = BranchRecord::conditional(0x100, true, 0x180, 2);
        assert!(p.predict(&backward));
        assert!(!p.predict(&forward));
    }

    #[test]
    fn btfn_one_miss_per_loop_execution() {
        // 20-iteration loop with a backward branch: BTFN predicts taken
        // every time, missing only the single exit.
        let mut p = Btfn::new();
        let mut wrong = 0;
        for i in 0..20u64 {
            let b = BranchRecord::conditional(0x100, i != 19, 0x80, i);
            wrong += u64::from(p.predict(&b) != b.taken);
            p.update(&b);
        }
        assert_eq!(wrong, 1);
    }

    #[test]
    fn profiling_learns_majorities() {
        let mut training = Trace::new();
        for i in 0..10u64 {
            training.push(BranchRecord::conditional(0x100, i < 8, 0x40, 2 * i + 1));
            training.push(BranchRecord::conditional(0x200, i < 2, 0x40, 2 * i + 2));
        }
        let mut p = Profiling::train(&training);
        assert_eq!(p.profiled_branches(), 2);
        assert!(p.predict(&BranchRecord::conditional(0x100, false, 0x40, 1)));
        assert!(!p.predict(&BranchRecord::conditional(0x200, true, 0x40, 2)));
    }

    #[test]
    fn profiling_defaults_unseen_to_taken() {
        let mut p = Profiling::train(&Trace::new());
        assert!(p.predict(&BranchRecord::conditional(0x999, false, 0x40, 1)));
    }

    #[test]
    fn profiling_tie_breaks_taken() {
        let mut training = Trace::new();
        training.push(BranchRecord::conditional(0x100, true, 0x40, 1));
        training.push(BranchRecord::conditional(0x100, false, 0x40, 2));
        let mut p = Profiling::train(&training);
        assert!(p.predict(&BranchRecord::conditional(0x100, false, 0x40, 3)));
    }

    #[test]
    fn names() {
        assert_eq!(AlwaysTaken::new().name(), "AlwaysTaken");
        assert_eq!(Btfn::new().name(), "BTFN");
    }
}
