//! Branch Target Buffer designs (J. Smith), simulated for comparison.

use tlabp_trace::BranchRecord;

use crate::automaton::{Automaton, State};
use crate::predictor::BranchPredictor;

#[derive(Debug, Clone, PartialEq, Eq)]
struct BtbSlot {
    valid: bool,
    tag: u64,
    state: State,
    last_used: u64,
}

/// A branch-target-buffer style predictor: a set-associative table of
/// per-branch prediction automata, with *no* second-level pattern history.
///
/// This is J. Smith's design the paper compares against: "a branch target
/// buffer to store, for each branch, a two-bit saturating up-down counter
/// which collects and subsequently bases its prediction on branch history
/// information about that branch." The paper simulates it with the A2
/// counter (≈93% average accuracy) and with Last-Time (≈89%); see
/// Figure 11.
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::schemes::Btb;
/// use tlabp_trace::BranchRecord;
///
/// let mut btb = Btb::new(512, 4, Automaton::A2);
/// let b = BranchRecord::conditional(0x40, true, 0x10, 1);
/// assert!(btb.predict(&b)); // entries allocate biased taken
/// btb.update(&b);
/// assert_eq!(btb.name(), "BTB(BHT(512,4,A2),)");
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    automaton: Automaton,
    sets: usize,
    ways: usize,
    slots: Vec<BtbSlot>,
    clock: u64,
    /// Per-interned-id memo of `(set base, tag)` — pc-derived, never
    /// flushed; see `CacheBht::access_slot_interned` for the idea.
    id_keys: Vec<Option<(u32, u64)>>,
}

impl Btb {
    /// Creates a BTB predictor with `entries` total slots, `ways`-way
    /// set-associative, each entry holding one `automaton`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `entries` is not a multiple of `ways`, or
    /// the set count is not a power of two.
    #[must_use]
    pub fn new(entries: usize, ways: usize, automaton: Automaton) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(
            entries > 0 && entries.is_multiple_of(ways),
            "entries {entries} must be a positive multiple of ways {ways}"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        let empty =
            BtbSlot { valid: false, tag: 0, state: automaton.initial_state(), last_used: 0 };
        Btb { automaton, sets, ways, slots: vec![empty; entries], clock: 0, id_keys: Vec::new() }
    }

    /// The paper's standard configuration: 4-way, 512 entries.
    #[must_use]
    pub fn paper_default(automaton: Automaton) -> Self {
        Btb::new(512, 4, automaton)
    }

    fn set_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn tag(&self, pc: u64) -> u64 {
        (pc >> 2) / self.sets as u64
    }

    fn find_or_allocate(&mut self, pc: u64) -> usize {
        let base = self.set_index(pc) * self.ways;
        let tag = self.tag(pc);
        self.touch_set(base, tag)
    }

    fn find_or_allocate_interned(&mut self, id: u32, pc: u64) -> usize {
        let index = id as usize;
        if index >= self.id_keys.len() {
            self.id_keys.resize(index + 1, None);
        }
        let (base, tag) = match self.id_keys[index] {
            Some(key) => key,
            None => {
                let key = ((self.set_index(pc) * self.ways) as u32, self.tag(pc));
                self.id_keys[index] = Some(key);
                key
            }
        };
        self.touch_set(base as usize, tag)
    }

    fn touch_set(&mut self, base: usize, tag: u64) -> usize {
        self.clock += 1;
        let hit = self.slots[base..base + self.ways]
            .iter()
            .position(|slot| slot.valid && slot.tag == tag);
        if let Some(way) = hit {
            let i = base + way;
            self.slots[i].last_used = self.clock;
            return i;
        }
        let victim = (base..base + self.ways)
            .min_by_key(|&i| (self.slots[i].valid, self.slots[i].last_used))
            .expect("set has at least one way");
        let slot = &mut self.slots[victim];
        slot.valid = true;
        slot.tag = tag;
        slot.state = self.automaton.initial_state();
        slot.last_used = self.clock;
        victim
    }

    fn step_at(&mut self, i: usize, taken: bool) -> bool {
        let state = self.slots[i].state;
        self.slots[i].state = self.automaton.update(state, taken);
        self.automaton.predict(state)
    }
}

impl BranchPredictor for Btb {
    fn predict(&mut self, branch: &BranchRecord) -> bool {
        let i = self.find_or_allocate(branch.pc);
        self.automaton.predict(self.slots[i].state)
    }

    fn update(&mut self, branch: &BranchRecord) {
        let i = self.find_or_allocate(branch.pc);
        let state = self.slots[i].state;
        self.slots[i].state = self.automaton.update(state, branch.taken);
    }

    fn context_switch(&mut self) {
        for slot in &mut self.slots {
            slot.valid = false;
        }
    }

    // One table access per event instead of predict's + update's
    // separate searches. Bit-identical: update's search after predict
    // always re-hits the slot predict just touched (same pc, no
    // intervening access), and collapsing its second LRU touch preserves
    // the relative `last_used` order every replacement decision is based
    // on (each event still moves exactly its own slot to most-recent).
    #[inline]
    fn step(&mut self, branch: &BranchRecord) -> bool {
        let i = self.find_or_allocate(branch.pc);
        self.step_at(i, branch.taken)
    }

    #[inline]
    fn step_interned(&mut self, id: u32, branch: &BranchRecord) -> bool {
        let i = self.find_or_allocate_interned(id, branch.pc);
        self.step_at(i, branch.taken)
    }

    fn name(&self) -> String {
        format!("BTB(BHT({},{},{}),)", self.slots.len(), self.ways, self.automaton)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(pc: u64, taken: bool, n: u64) -> BranchRecord {
        BranchRecord::conditional(pc, taken, pc + 16, n)
    }

    #[test]
    fn counter_learns_bias() {
        let mut btb = Btb::paper_default(Automaton::A2);
        let b = branch(0x80, false, 1);
        btb.update(&b);
        btb.update(&b);
        assert!(!btb.predict(&b), "two not-takens drop the counter below 2");
    }

    #[test]
    fn loop_branch_mispredicts_once_per_exit_with_a2() {
        // Classic result: a 2-bit counter on a T...TN loop mispredicts only
        // the exit, not the re-entry.
        let mut btb = Btb::paper_default(Automaton::A2);
        let outcomes: Vec<bool> = (0..400).map(|i| i % 8 != 7).collect();
        let mut wrong = 0;
        for (i, &taken) in outcomes.iter().enumerate().skip(16) {
            let b = branch(0x80, taken, i as u64);
            let predicted = btb.predict(&b);
            btb.update(&b);
            wrong += u64::from(predicted != taken);
        }
        // 48 loop exits in positions 16..400 → exactly one miss each.
        assert_eq!(wrong, 48);
    }

    #[test]
    fn last_time_mispredicts_twice_per_exit() {
        let mut btb = Btb::paper_default(Automaton::LastTime);
        let outcomes: Vec<bool> = (0..400).map(|i| i % 8 != 7).collect();
        let mut wrong = 0;
        for (i, &taken) in outcomes.iter().enumerate().skip(16) {
            let b = branch(0x80, taken, i as u64);
            let predicted = btb.predict(&b);
            btb.update(&b);
            wrong += u64::from(predicted != taken);
        }
        // Last-Time misses the exit AND the first iteration after re-entry:
        // 48 exits plus 47 re-entries inside the measured range.
        assert_eq!(wrong, 95);
    }

    #[test]
    fn cannot_learn_alternation_unlike_two_level() {
        let mut btb = Btb::paper_default(Automaton::LastTime);
        let mut wrong = 0;
        for i in 0..200u64 {
            let b = branch(0x80, i % 2 == 0, i);
            let predicted = btb.predict(&b);
            btb.update(&b);
            if i >= 50 {
                wrong += u64::from(predicted != b.taken);
            }
        }
        assert_eq!(wrong, 150, "Last-Time BTB mispredicts every alternating branch");
    }

    #[test]
    fn eviction_resets_state() {
        let mut btb = Btb::new(4, 1, Automaton::A2); // 4 direct-mapped sets
        let a = branch(0, false, 1);
        let conflicting = branch(4 * 4, true, 2);
        btb.update(&a);
        btb.update(&a); // state for a now 1 (not taken)
        btb.update(&conflicting); // evicts a
        assert!(btb.predict(&a), "re-allocated entry starts at initial (taken) state");
    }

    #[test]
    fn context_switch_flushes() {
        let mut btb = Btb::paper_default(Automaton::A2);
        let b = branch(0x80, false, 1);
        btb.update(&b);
        btb.update(&b);
        btb.context_switch();
        assert!(btb.predict(&b), "post-flush allocation uses initial state");
    }

    #[test]
    fn name_matches_table3_notation() {
        assert_eq!(Btb::paper_default(Automaton::LastTime).name(), "BTB(BHT(512,4,LT),)");
    }
}
