//! Pipeline-timing history update policies (Section 3.1).
//!
//! In a deep pipeline, "sometimes the previous branch results may not be
//! ready before the prediction of a subsequent branch takes place. If the
//! obsolete branch history is used for making the prediction, the accuracy
//! is degraded. In such a case, the predictions of the previous branches
//! can be used to update the branch history" — i.e. speculative history
//! update, with repair or reinitialization on a misprediction.
//!
//! [`SpeculativeGag`] models this on the GAg structure (where every branch
//! shares the one history register, so staleness bites hardest). A
//! resolution delay of `d` means the architectural outcomes of the last
//! `d` predicted branches have not yet reached the history register when
//! the next prediction is made:
//!
//! * [`HistoryUpdatePolicy::OnResolve`] — predictions use the stale
//!   resolved-only history.
//! * [`HistoryUpdatePolicy::Speculative`] — predictions use the resolved
//!   history extended with the in-flight *predictions*; when a
//!   misprediction resolves, the history is either repaired (the wrong bit
//!   is corrected as the actual outcome shifts in) or reinitialized
//!   (cheap-hardware option: the whole register resets to all ones).
//!
//! With `delay = 0` every policy reduces to the plain [`Gag`]
//! behavior — a property the tests pin down.
//!
//! [`Gag`]: crate::schemes::Gag

use std::collections::VecDeque;

use tlabp_trace::BranchRecord;

use crate::automaton::Automaton;
use crate::history::HistoryRegister;
use crate::pht::PatternHistoryTable;
use crate::predictor::BranchPredictor;

/// What to do with the global history register when a speculatively
/// shifted prediction turns out wrong (Section 3.1: "the branch history
/// can either be reinitialized or repaired depending on the hardware
/// budget").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MispredictRepair {
    /// Correct the wrong history bit (expensive hardware, no accuracy
    /// loss beyond the misprediction itself).
    Repair,
    /// Reset the history register to all ones (cheap hardware).
    Reinitialize,
}

/// When branch outcomes enter the global history register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryUpdatePolicy {
    /// Outcomes enter the register only at resolution, `delay` branches
    /// after prediction; predictions meanwhile see stale history.
    OnResolve {
        /// Number of in-flight branches whose outcomes the history lacks.
        delay: usize,
    },
    /// Predictions are shifted into the register immediately; on a
    /// misprediction resolving, apply `repair`.
    Speculative {
        /// Pipeline depth in branches.
        delay: usize,
        /// Recovery action on misprediction.
        repair: MispredictRepair,
    },
}

impl HistoryUpdatePolicy {
    fn delay(self) -> usize {
        match self {
            HistoryUpdatePolicy::OnResolve { delay }
            | HistoryUpdatePolicy::Speculative { delay, .. } => delay,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    pattern: usize,
    predicted: bool,
    actual: Option<bool>,
}

/// A GAg predictor with an explicit pipeline-timing model for history
/// updates; see the module documentation.
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::predictor::BranchPredictor;
/// use tlabp_core::speculative::{HistoryUpdatePolicy, MispredictRepair, SpeculativeGag};
/// use tlabp_trace::BranchRecord;
///
/// let policy = HistoryUpdatePolicy::Speculative {
///     delay: 4,
///     repair: MispredictRepair::Repair,
/// };
/// let mut p = SpeculativeGag::new(10, Automaton::A2, policy);
/// let b = BranchRecord::conditional(0x40, true, 0x10, 1);
/// let _ = p.predict(&b);
/// p.update(&b);
/// ```
#[derive(Debug, Clone)]
pub struct SpeculativeGag {
    pht: PatternHistoryTable,
    resolved: HistoryRegister,
    policy: HistoryUpdatePolicy,
    inflight: VecDeque<Inflight>,
}

impl SpeculativeGag {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is out of range.
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton, policy: HistoryUpdatePolicy) -> Self {
        SpeculativeGag {
            pht: PatternHistoryTable::new(history_bits, automaton),
            resolved: HistoryRegister::all_ones(history_bits),
            policy,
            inflight: VecDeque::new(),
        }
    }

    /// The history pattern a prediction made *now* would use.
    #[must_use]
    pub fn effective_pattern(&self) -> usize {
        match self.policy {
            HistoryUpdatePolicy::OnResolve { .. } => self.resolved.pattern(),
            HistoryUpdatePolicy::Speculative { .. } => {
                let mut speculative = self.resolved;
                for entry in &self.inflight {
                    speculative.shift_in(entry.actual.unwrap_or(entry.predicted));
                }
                speculative.pattern()
            }
        }
    }

    fn resolve_oldest(&mut self) {
        let entry = self.inflight.pop_front().expect("resolve called with in-flight work");
        let actual = entry.actual.expect("oldest in-flight branch has resolved");
        self.pht.update(entry.pattern, actual);
        self.resolved.shift_in(actual);
        if let HistoryUpdatePolicy::Speculative { repair, .. } = self.policy {
            // Recovery is only needed when wrong-path speculative bits
            // exist, i.e. when younger branches are still in flight.
            if entry.predicted != actual
                && repair == MispredictRepair::Reinitialize
                && !self.inflight.is_empty()
            {
                self.resolved.fill(true);
                // The in-flight speculation is squashed along with the
                // wrong-path history.
                self.inflight.clear();
            }
            // MispredictRepair::Repair needs no action: the resolved
            // register just received the *actual* outcome, and speculative
            // patterns are always recomputed from it.
        }
    }
}

impl BranchPredictor for SpeculativeGag {
    fn predict(&mut self, _branch: &BranchRecord) -> bool {
        let pattern = self.effective_pattern();
        let predicted = self.pht.predict(pattern);
        self.inflight.push_back(Inflight { pattern, predicted, actual: None });
        predicted
    }

    fn update(&mut self, branch: &BranchRecord) {
        if let Some(entry) = self.inflight.iter_mut().rev().find(|e| e.actual.is_none()) {
            entry.actual = Some(branch.taken);
        } else {
            // update without a matching predict: treat as a zero-delay
            // resolution of a fresh prediction.
            let pattern = self.effective_pattern();
            self.inflight.push_back(Inflight {
                pattern,
                predicted: self.pht.predict(pattern),
                actual: Some(branch.taken),
            });
        }
        while self.inflight.len() > self.policy.delay()
            && self.inflight.front().is_some_and(|e| e.actual.is_some())
        {
            self.resolve_oldest();
        }
    }

    fn context_switch(&mut self) {
        self.resolved.fill(true);
        self.inflight.clear();
    }

    fn name(&self) -> String {
        let k = self.resolved.len();
        let policy = match self.policy {
            HistoryUpdatePolicy::OnResolve { delay } => format!("resolve/{delay}"),
            HistoryUpdatePolicy::Speculative { delay, repair: MispredictRepair::Repair } => {
                format!("spec-repair/{delay}")
            }
            HistoryUpdatePolicy::Speculative { delay, repair: MispredictRepair::Reinitialize } => {
                format!("spec-reinit/{delay}")
            }
        };
        format!("GAg(HR(1,,{k}-sr),1xPHT(2^{k},{}),{policy})", self.pht.automaton())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Gag;
    use tlabp_trace::synth::{BiasedCoins, RepeatingPattern};
    use tlabp_trace::Trace;

    fn accuracy(predictor: &mut dyn BranchPredictor, trace: &Trace, skip: usize) -> f64 {
        let mut correct = 0u64;
        let mut total = 0u64;
        for (i, b) in trace.conditional_branches().enumerate() {
            let predicted = predictor.predict(b);
            predictor.update(b);
            if i >= skip {
                total += 1;
                correct += u64::from(predicted == b.taken);
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn zero_delay_matches_plain_gag() {
        let trace = BiasedCoins::uniform(6, 0.7, 400, 21).generate();
        let policies = [
            HistoryUpdatePolicy::OnResolve { delay: 0 },
            HistoryUpdatePolicy::Speculative { delay: 0, repair: MispredictRepair::Repair },
            HistoryUpdatePolicy::Speculative { delay: 0, repair: MispredictRepair::Reinitialize },
        ];
        let mut reference = Gag::new(8, Automaton::A2);
        let expected = accuracy(&mut reference, &trace, 0);
        for policy in policies {
            let mut p = SpeculativeGag::new(8, Automaton::A2, policy);
            let got = accuracy(&mut p, &trace, 0);
            assert!((got - expected).abs() < 1e-12, "{policy:?}: {got} vs plain {expected}");
        }
    }

    #[test]
    fn speculative_repair_beats_stale_history_on_regular_code() {
        // A perfectly regular pattern: with speculative update the
        // predictions are (after warm-up) always right, so speculative
        // history equals actual history and accuracy stays perfect. With
        // stale history the register lags and the learned mapping is
        // still consistent... unless the delay aliases the period. Use a
        // pattern of period 3 and delay 2 to break it.
        let trace = RepeatingPattern::new(&[true, true, false], 800).generate();
        let mut stale =
            SpeculativeGag::new(4, Automaton::A2, HistoryUpdatePolicy::OnResolve { delay: 2 });
        let mut spec = SpeculativeGag::new(
            4,
            Automaton::A2,
            HistoryUpdatePolicy::Speculative { delay: 2, repair: MispredictRepair::Repair },
        );
        let stale_acc = accuracy(&mut stale, &trace, 400);
        let spec_acc = accuracy(&mut spec, &trace, 400);
        assert!(
            spec_acc >= stale_acc,
            "speculative ({spec_acc}) must be at least as accurate as stale ({stale_acc})"
        );
        assert!((spec_acc - 1.0).abs() < 1e-12, "speculative update stays perfect");
    }

    #[test]
    fn reinitialize_recovers_and_keeps_working() {
        let trace = BiasedCoins::uniform(4, 0.6, 500, 31).generate();
        let mut p = SpeculativeGag::new(
            8,
            Automaton::A2,
            HistoryUpdatePolicy::Speculative { delay: 3, repair: MispredictRepair::Reinitialize },
        );
        // Just exercise it end to end; accuracy must stay above chance on
        // a 60%-taken stream.
        let acc = accuracy(&mut p, &trace, 100);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn effective_pattern_uses_predictions_in_flight() {
        let mut p = SpeculativeGag::new(
            4,
            Automaton::A2,
            HistoryUpdatePolicy::Speculative { delay: 4, repair: MispredictRepair::Repair },
        );
        let b = BranchRecord::conditional(0x40, true, 0x10, 1);
        assert_eq!(p.effective_pattern(), 0b1111);
        let predicted = p.predict(&b); // predicts taken (initial bias)
        assert!(predicted);
        // The prediction is already visible in the speculative history.
        assert_eq!(p.effective_pattern(), 0b1111);
        p.update(&b);
        assert_eq!(p.effective_pattern(), 0b1111);
    }

    #[test]
    fn stale_history_lags_by_delay() {
        let mut p =
            SpeculativeGag::new(4, Automaton::A2, HistoryUpdatePolicy::OnResolve { delay: 2 });
        // Three resolved not-taken branches; with delay 2, only the first
        // has reached the resolved register.
        for i in 0..3u64 {
            let b = BranchRecord::conditional(0x40, false, 0x10, i);
            p.predict(&b);
            p.update(&b);
        }
        assert_eq!(p.effective_pattern(), 0b1110, "only one outcome has landed");
    }

    #[test]
    fn context_switch_clears_pipeline() {
        let mut p = SpeculativeGag::new(
            4,
            Automaton::A2,
            HistoryUpdatePolicy::Speculative { delay: 4, repair: MispredictRepair::Repair },
        );
        let b = BranchRecord::conditional(0x40, false, 0x10, 1);
        p.predict(&b);
        p.context_switch();
        assert_eq!(p.effective_pattern(), 0b1111);
    }

    #[test]
    fn names_encode_policy() {
        let p = SpeculativeGag::new(
            10,
            Automaton::A2,
            HistoryUpdatePolicy::Speculative { delay: 4, repair: MispredictRepair::Repair },
        );
        assert_eq!(p.name(), "GAg(HR(1,,10-sr),1xPHT(2^10,A2),spec-repair/4)");
    }
}
