//! The k-bit branch history (shift) register of the paper's Section 2.1.

use std::fmt;

/// Maximum supported history register length.
///
/// The paper evaluates up to 18 bits (Figure 7); we allow some headroom
/// while keeping pattern indices comfortably inside a `usize`.
pub const MAX_HISTORY_BITS: u32 = 24;

/// A k-bit branch history shift register (HR).
///
/// The register "shifts in bits representing the branch results of the most
/// recent k branches": 1 for taken, 0 for not taken, newest outcome in the
/// least significant bit. Its content, interpreted as an integer, is the
/// *pattern* used to index a pattern history table with `2^k` entries.
///
/// Per Section 4.2 of the paper, a history register allocated on a branch
/// history table miss "is initialized to all 1's"; once the missing branch
/// resolves, "the result bit is extended throughout the history register"
/// ([`HistoryRegister::fill`]).
///
/// # Example
///
/// ```
/// use tlabp_core::history::HistoryRegister;
///
/// let mut hr = HistoryRegister::all_ones(4);
/// assert_eq!(hr.pattern(), 0b1111);
/// hr.shift_in(false);
/// hr.shift_in(true);
/// assert_eq!(hr.pattern(), 0b1101);
/// hr.fill(false);
/// assert_eq!(hr.pattern(), 0b0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryRegister {
    bits: u32,
    len: u32,
}

impl HistoryRegister {
    /// Creates a register of `len` bits, initialized to all zeros.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds [`MAX_HISTORY_BITS`].
    #[must_use]
    pub fn new(len: u32) -> Self {
        assert!(
            (1..=MAX_HISTORY_BITS).contains(&len),
            "history length {len} out of range 1..={MAX_HISTORY_BITS}"
        );
        HistoryRegister { bits: 0, len }
    }

    /// Creates a register of `len` bits initialized to all ones — the
    /// paper's initialization for newly allocated BHT entries.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds [`MAX_HISTORY_BITS`].
    #[must_use]
    pub fn all_ones(len: u32) -> Self {
        let mut hr = HistoryRegister::new(len);
        hr.fill(true);
        hr
    }

    /// Creates a register holding a specific pattern.
    ///
    /// # Panics
    ///
    /// Panics if `len` is out of range or `pattern` does not fit in `len`
    /// bits.
    #[must_use]
    pub fn from_pattern(len: u32, pattern: u32) -> Self {
        let mut hr = HistoryRegister::new(len);
        assert!(pattern <= hr.mask(), "pattern {pattern:#b} wider than {len} bits");
        hr.bits = pattern;
        hr
    }

    fn mask(&self) -> u32 {
        (1u32 << self.len) - 1
    }

    /// The register length `k`.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Always `false`: a history register has at least one bit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current content interpreted as a pattern-table index.
    #[must_use]
    pub fn pattern(&self) -> usize {
        self.bits as usize
    }

    /// Number of distinct patterns this register can hold (`2^k`).
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        1usize << self.len
    }

    /// Shifts the outcome of the newest branch into the least significant
    /// bit, dropping the oldest outcome.
    pub fn shift_in(&mut self, taken: bool) {
        self.bits = ((self.bits << 1) | u32::from(taken)) & self.mask();
    }

    /// Sets every bit to `taken` — used both for all-ones initialization
    /// and for the paper's "result bit is extended throughout the history
    /// register" rule after the first resolution of a missing branch.
    pub fn fill(&mut self, taken: bool) {
        self.bits = if taken { self.mask() } else { 0 };
    }

    /// The outcome recorded `age` branches ago (0 = newest).
    ///
    /// # Panics
    ///
    /// Panics if `age >= len`.
    #[must_use]
    pub fn outcome(&self, age: u32) -> bool {
        assert!(age < self.len, "age {age} out of range for {}-bit register", self.len);
        (self.bits >> age) & 1 == 1
    }

    /// Flips the outcome recorded `age` branches ago — used by the
    /// speculative-history repair policy of Section 3.1.
    ///
    /// # Panics
    ///
    /// Panics if `age >= len`.
    pub fn flip(&mut self, age: u32) {
        assert!(age < self.len, "age {age} out of range for {}-bit register", self.len);
        self.bits ^= 1 << age;
    }
}

impl fmt::Display for HistoryRegister {
    /// Renders the register as a bit string, oldest outcome first — the
    /// same orientation as the paper's example `11100101`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for age in (0..self.len).rev() {
            f.write_str(if self.outcome(age) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_in_drops_oldest() {
        let mut hr = HistoryRegister::new(3);
        hr.shift_in(true); // 001
        hr.shift_in(true); // 011
        hr.shift_in(false); // 110
        hr.shift_in(true); // 101
        assert_eq!(hr.pattern(), 0b101);
    }

    #[test]
    fn all_ones_matches_paper_initialization() {
        let hr = HistoryRegister::all_ones(6);
        assert_eq!(hr.pattern(), 0b111111);
    }

    #[test]
    fn fill_extends_result_bit() {
        let mut hr = HistoryRegister::all_ones(5);
        hr.fill(false);
        assert_eq!(hr.pattern(), 0);
        hr.fill(true);
        assert_eq!(hr.pattern(), 0b11111);
    }

    #[test]
    fn pattern_count_is_two_to_k() {
        assert_eq!(HistoryRegister::new(12).pattern_count(), 4096);
        assert_eq!(HistoryRegister::new(1).pattern_count(), 2);
    }

    #[test]
    fn outcome_by_age() {
        let hr = HistoryRegister::from_pattern(4, 0b1010);
        assert!(!hr.outcome(0)); // newest
        assert!(hr.outcome(1));
        assert!(!hr.outcome(2));
        assert!(hr.outcome(3)); // oldest
    }

    #[test]
    fn flip_repairs_single_bit() {
        let mut hr = HistoryRegister::from_pattern(4, 0b1010);
        hr.flip(1);
        assert_eq!(hr.pattern(), 0b1000);
        hr.flip(1);
        assert_eq!(hr.pattern(), 0b1010);
    }

    #[test]
    fn display_oldest_first() {
        let mut hr = HistoryRegister::new(8);
        // Shift in the paper's example pattern 11100101 oldest-to-newest.
        for bit in [true, true, true, false, false, true, false, true] {
            hr.shift_in(bit);
        }
        assert_eq!(hr.to_string(), "11100101");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_length() {
        let _ = HistoryRegister::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_excessive_length() {
        let _ = HistoryRegister::new(MAX_HISTORY_BITS + 1);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn from_pattern_rejects_wide_pattern() {
        let _ = HistoryRegister::from_pattern(3, 0b1000);
    }

    #[test]
    fn max_length_register_works() {
        let mut hr = HistoryRegister::all_ones(MAX_HISTORY_BITS);
        assert_eq!(hr.pattern(), (1usize << MAX_HISTORY_BITS) - 1);
        hr.shift_in(false);
        assert_eq!(hr.pattern(), (1usize << MAX_HISTORY_BITS) - 2);
    }
}
