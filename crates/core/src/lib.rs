//! # Two-Level Adaptive Branch Prediction — core library
//!
//! A from-scratch implementation of every prediction mechanism studied in
//! Yeh & Patt, *Alternative Implementations of Two-Level Adaptive Branch
//! Prediction*:
//!
//! * the three variations of the proposed predictor — [`schemes::Gag`]
//!   (global history, global pattern table), [`schemes::Pag`] (per-address
//!   history, global pattern table) and [`schemes::Pap`] (per-address
//!   history, per-address pattern tables);
//! * the pattern-history automata of Figure 2 ([`automaton::Automaton`]):
//!   Last-Time, A1, A2, A3, A4, plus the Static Training preset bit;
//! * first-level storage ([`bht`]): ideal and practical (direct-mapped /
//!   set-associative, LRU) branch history tables with the paper's
//!   initialize-to-ones miss policy;
//! * every comparison scheme of Figure 11: Static Training GSg/PSg
//!   ([`schemes::Gsg`], [`schemes::Psg`]), branch target buffers
//!   ([`schemes::Btb`]), Always-Taken, BTFN and Profiling;
//! * the hardware cost model of Section 3.4 ([`cost`], Equations 3–6);
//! * the implementation considerations of Section 3: speculative history
//!   update with repair/reinitialize ([`speculative`]) and target address
//!   caching ([`target_cache`]);
//! * the Table 3 configuration notation ([`config::SchemeConfig`]), which
//!   round-trips through `Display`/`FromStr` and builds any simulated
//!   predictor;
//! * a process-wide [`registry`] of named builders for predictors outside
//!   the catalog (e.g. [`schemes::Gshare`]), so the simulation engine can
//!   execute them through the same job pipeline as Table 3 schemes.
//!
//! # Quick start
//!
//! ```
//! use tlabp_core::config::SchemeConfig;
//! use tlabp_core::predictor::BranchPredictor;
//! use tlabp_trace::synth::LoopNest;
//!
//! // The paper's most cost-effective configuration: PAg with 12-bit
//! // history registers in a 4-way 512-entry BHT.
//! let mut predictor = SchemeConfig::pag(12).build()?;
//!
//! let trace = LoopNest::new(&[100, 10]).generate();
//! let mut correct = 0u64;
//! let mut total = 0u64;
//! for branch in trace.conditional_branches() {
//!     let predicted = predictor.predict(branch);
//!     predictor.update(branch);
//!     correct += u64::from(predicted == branch.taken);
//!     total += 1;
//! }
//! assert!(correct as f64 / total as f64 > 0.9);
//! # Ok::<(), tlabp_core::config::BuildError>(())
//! ```

// `deny`, not `forbid`: the one sanctioned exemption is the `std::arch`
// SSE2/AVX2 bodies of the transposed replay kernel (`pht::x86`), which
// opts back in locally. Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod automaton;
pub mod bht;
pub mod config;
pub mod cost;
pub mod fxhash;
pub mod history;
pub mod pht;
pub mod predictor;
pub mod registry;
pub mod schemes;
pub mod simd;
pub mod speculative;
pub mod target_cache;

pub use any::AnyPredictor;
pub use automaton::Automaton;
pub use bht::BhtConfig;
pub use config::{SchemeConfig, SchemeKind};
pub use cost::CostModel;
pub use predictor::BranchPredictor;
pub use simd::SimdMode;
