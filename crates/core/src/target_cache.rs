//! Target address caching (Section 3.2).
//!
//! "After the direction of a branch is predicted, there is still the
//! possibility of a pipeline bubble due to the time it takes to generate
//! the target address. To eliminate this bubble, we cache the target
//! addresses of branches." The cache is indexed by the fetch address so a
//! prediction (direction + target) can be produced before the instruction
//! block is even decoded; on a miss the sequential path is fetched and a
//! static prediction decides after decode whether to squash.

use tlabp_trace::BranchRecord;

#[derive(Debug, Clone, PartialEq, Eq)]
struct TargetSlot {
    valid: bool,
    tag: u64,
    target: u64,
    last_used: u64,
}

/// What the fetch engine did for one branch, as determined by the target
/// cache and the direction prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Cache hit, branch predicted taken, cached target was correct: the
    /// taken path was fetched with no bubble.
    HitCorrectTarget,
    /// Cache hit and predicted taken, but the branch went elsewhere (or
    /// was not taken): fetched instructions are squashed.
    HitWrongPath,
    /// Cache hit, predicted not taken: fall-through fetched. Correct iff
    /// the branch really was not taken.
    HitFallThrough {
        /// Whether falling through was the right thing to do.
        correct: bool,
    },
    /// Cache miss: sequential fetch continued; after decode, the branch is
    /// discovered and handled by static prediction (one-bubble penalty if
    /// the branch was taken).
    Miss {
        /// Whether the sequential (not-taken) guess was right.
        correct: bool,
    },
}

impl FetchOutcome {
    /// Whether the fetch proceeded down the correct path without squash.
    #[must_use]
    pub fn is_correct_path(self) -> bool {
        matches!(
            self,
            FetchOutcome::HitCorrectTarget
                | FetchOutcome::HitFallThrough { correct: true }
                | FetchOutcome::Miss { correct: true }
        )
    }
}

/// Counters for target-cache behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TargetCacheStats {
    /// Lookups that found an entry for the fetch address.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Taken predictions whose cached target matched the actual target.
    pub correct_targets: u64,
    /// Taken predictions whose cached target was wrong (e.g. an indirect
    /// branch changed destination).
    pub wrong_targets: u64,
}

/// A set-associative cache of branch target addresses.
///
/// # Example
///
/// ```
/// use tlabp_core::target_cache::TargetCache;
/// use tlabp_trace::BranchRecord;
///
/// let mut cache = TargetCache::new(512, 4);
/// let branch = BranchRecord::conditional(0x40, true, 0x100, 1);
/// let outcome = cache.fetch(&branch, true);
/// assert!(!outcome.is_correct_path(), "cold miss on a taken branch");
/// cache.resolve(&branch);
/// let outcome = cache.fetch(&branch, true);
/// assert!(outcome.is_correct_path(), "warm hit supplies the target");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetCache {
    sets: usize,
    ways: usize,
    slots: Vec<TargetSlot>,
    clock: u64,
    stats: TargetCacheStats,
}

impl TargetCache {
    /// Creates a cache with `entries` slots, `ways`-way set-associative.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `entries` is not a multiple of `ways`, or
    /// the set count is not a power of two.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(
            entries > 0 && entries.is_multiple_of(ways),
            "entries {entries} must be a positive multiple of ways {ways}"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        let empty = TargetSlot { valid: false, tag: 0, target: 0, last_used: 0 };
        TargetCache {
            sets,
            ways,
            slots: vec![empty; entries],
            clock: 0,
            stats: TargetCacheStats::default(),
        }
    }

    fn set_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn tag(&self, pc: u64) -> u64 {
        (pc >> 2) / self.sets as u64
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let set = self.set_index(pc);
        let tag = self.tag(pc);
        let base = set * self.ways;
        (base..base + self.ways).find(|&i| self.slots[i].valid && self.slots[i].tag == tag)
    }

    /// The cached target for `pc`, if present (no statistics side
    /// effects).
    #[must_use]
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        self.find(pc).map(|i| self.slots[i].target)
    }

    /// Simulates the fetch decision for `branch` given the direction
    /// predictor's output, updating hit/target statistics.
    pub fn fetch(&mut self, branch: &BranchRecord, predicted_taken: bool) -> FetchOutcome {
        self.clock += 1;
        match self.find(branch.pc) {
            Some(i) => {
                self.slots[i].last_used = self.clock;
                self.stats.hits += 1;
                if predicted_taken {
                    let cached = self.slots[i].target;
                    if branch.taken && cached == branch.target {
                        self.stats.correct_targets += 1;
                        FetchOutcome::HitCorrectTarget
                    } else {
                        self.stats.wrong_targets += 1;
                        FetchOutcome::HitWrongPath
                    }
                } else {
                    FetchOutcome::HitFallThrough { correct: !branch.taken }
                }
            }
            None => {
                self.stats.misses += 1;
                FetchOutcome::Miss { correct: !branch.taken }
            }
        }
    }

    /// Records the resolved branch: inserts or refreshes its target
    /// (LRU replacement within the set).
    pub fn resolve(&mut self, branch: &BranchRecord) {
        self.clock += 1;
        if let Some(i) = self.find(branch.pc) {
            self.slots[i].target = branch.target;
            self.slots[i].last_used = self.clock;
            return;
        }
        let set = self.set_index(branch.pc);
        let base = set * self.ways;
        let victim = (base..base + self.ways)
            .min_by_key(|&i| (self.slots[i].valid, self.slots[i].last_used))
            .expect("set has at least one way");
        let tag = self.tag(branch.pc);
        let slot = &mut self.slots[victim];
        slot.valid = true;
        slot.tag = tag;
        slot.target = branch.target;
        slot.last_used = self.clock;
    }

    /// Invalidates every slot.
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.valid = false;
        }
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> TargetCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taken(pc: u64, target: u64) -> BranchRecord {
        BranchRecord::conditional(pc, true, target, 1)
    }

    fn not_taken(pc: u64) -> BranchRecord {
        BranchRecord::conditional(pc, false, pc + 64, 1)
    }

    #[test]
    fn cold_miss_then_warm_hit() {
        let mut cache = TargetCache::new(64, 4);
        let b = taken(0x40, 0x100);
        assert_eq!(cache.fetch(&b, true), FetchOutcome::Miss { correct: false });
        cache.resolve(&b);
        assert_eq!(cache.fetch(&b, true), FetchOutcome::HitCorrectTarget);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn changed_target_detected() {
        let mut cache = TargetCache::new(64, 4);
        let original = taken(0x40, 0x100);
        cache.resolve(&original);
        let moved = taken(0x40, 0x200);
        assert_eq!(cache.fetch(&moved, true), FetchOutcome::HitWrongPath);
        cache.resolve(&moved);
        assert_eq!(cache.fetch(&moved, true), FetchOutcome::HitCorrectTarget);
    }

    #[test]
    fn fall_through_correctness() {
        let mut cache = TargetCache::new(64, 4);
        let b = not_taken(0x40);
        cache.resolve(&b);
        assert_eq!(cache.fetch(&b, false), FetchOutcome::HitFallThrough { correct: true });
        let b_taken = taken(0x40, 0x100);
        assert_eq!(cache.fetch(&b_taken, false), FetchOutcome::HitFallThrough { correct: false });
    }

    #[test]
    fn miss_on_not_taken_costs_nothing() {
        let mut cache = TargetCache::new(64, 4);
        let b = not_taken(0x40);
        let outcome = cache.fetch(&b, false);
        assert_eq!(outcome, FetchOutcome::Miss { correct: true });
        assert!(outcome.is_correct_path());
    }

    #[test]
    fn lru_eviction() {
        let mut cache = TargetCache::new(2, 2); // one set, two ways
        cache.resolve(&taken(0x10, 0x100));
        cache.resolve(&taken(0x20, 0x200));
        cache.resolve(&taken(0x10, 0x100)); // refresh 0x10
        cache.resolve(&taken(0x30, 0x300)); // evicts 0x20
        assert!(cache.lookup(0x10).is_some());
        assert!(cache.lookup(0x20).is_none());
        assert!(cache.lookup(0x30).is_some());
    }

    #[test]
    fn flush_empties_cache() {
        let mut cache = TargetCache::new(64, 4);
        cache.resolve(&taken(0x40, 0x100));
        cache.flush();
        assert_eq!(cache.lookup(0x40), None);
    }

    #[test]
    fn correct_path_classification() {
        assert!(FetchOutcome::HitCorrectTarget.is_correct_path());
        assert!(!FetchOutcome::HitWrongPath.is_correct_path());
        assert!(FetchOutcome::HitFallThrough { correct: true }.is_correct_path());
        assert!(!FetchOutcome::Miss { correct: false }.is_correct_path());
    }
}
