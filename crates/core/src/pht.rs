//! The pattern history table (PHT) of the paper's Section 2.1.

use crate::automaton::{Automaton, State};
use crate::simd::{Kernel, SimdMode};

/// A pattern history table: `2^k` automaton states indexed by the content
/// of a k-bit history register.
///
/// "For each of these 2^k patterns, there is a corresponding entry in the
/// pattern history table which contains branch results for the last s times
/// the preceding k branches were represented by that specific content of
/// the history register."
///
/// All entries are initialized per Section 4.2 (strongly-taken for the
/// four-state automata, taken for Last-Time); the paper notes the PHT is
/// *not* reinitialized on context switches.
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::pht::PatternHistoryTable;
///
/// let mut pht = PatternHistoryTable::new(4, Automaton::A2);
/// assert_eq!(pht.len(), 16);
/// assert!(pht.predict(0b1010)); // initialized strongly taken
/// pht.update(0b1010, false);
/// pht.update(0b1010, false);
/// assert!(!pht.predict(0b1010)); // learned not-taken for this pattern
/// assert!(pht.predict(0b0101)); // other patterns unaffected
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHistoryTable {
    automaton: Automaton,
    history_bits: u32,
    states: Vec<State>,
}

impl PatternHistoryTable {
    /// Creates a table for `history_bits`-bit patterns (so `2^history_bits`
    /// entries), every entry at the automaton's initial state.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or exceeds
    /// [`crate::history::MAX_HISTORY_BITS`].
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton) -> Self {
        assert!(
            (1..=crate::history::MAX_HISTORY_BITS).contains(&history_bits),
            "history bits {history_bits} out of range"
        );
        let entries = 1usize << history_bits;
        PatternHistoryTable {
            automaton,
            history_bits,
            states: vec![automaton.initial_state(); entries],
        }
    }

    /// The automaton stored in each entry.
    #[must_use]
    pub fn automaton(&self) -> Automaton {
        self.automaton
    }

    /// Number of entries (`2^k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`; a table has at least two entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The history-register length `k` this table is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Predicts the branch direction for `pattern` (Equation 1).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn predict(&self, pattern: usize) -> bool {
        self.automaton.predict(self.states[pattern])
    }

    /// Applies the transition function δ to the entry for `pattern`
    /// (Equation 2).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    pub fn update(&mut self, pattern: usize, taken: bool) {
        let state = self.states[pattern];
        self.states[pattern] = self.automaton.update(state, taken);
    }

    /// Fused [`PatternHistoryTable::predict`] +
    /// [`PatternHistoryTable::update`]: one table access instead of two.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[inline]
    pub fn predict_update(&mut self, pattern: usize, taken: bool) -> bool {
        let state = self.states[pattern];
        self.states[pattern] = self.automaton.update(state, taken);
        self.automaton.predict(state)
    }

    /// The current state of the entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn state(&self, pattern: usize) -> State {
        self.states[pattern]
    }

    /// Overwrites the state of the entry for `pattern` — used by the
    /// Static Training schemes to preset prediction bits from profiling.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range or `state` is invalid for the
    /// table's automaton.
    pub fn set_state(&mut self, pattern: usize, state: State) {
        assert!(
            self.automaton.is_valid_state(state),
            "state {state} invalid for {}",
            self.automaton
        );
        self.states[pattern] = state;
    }

    /// Resets every entry to the automaton's initial state.
    ///
    /// The paper's context-switch model deliberately does *not* do this
    /// ("the pattern history table of the saved process is more likely to
    /// be similar to the current process's"); it exists for experiment
    /// ablations and for starting fresh runs.
    pub fn reinitialize(&mut self) {
        self.states.fill(self.automaton.initial_state());
    }
}

/// A bit-packed pattern history table for the replay path: 2-bit automaton
/// states, 32 per `u64` word, stepped through a per-automaton 256-entry
/// lookup table fusing δ and λ ([`Automaton::packed_lut`]).
///
/// Behaviorally identical to [`PatternHistoryTable`] (pinned by the
/// round-trip tests below and by `tests/differential.rs`), but the whole
/// transition is branchless: read two bits, index the LUT with
/// `(state << 1) | taken`, write two bits back, report bit 2. A `2^12`
/// table is 1 KiB of words — L1-resident for the entire replay.
#[derive(Debug, Clone)]
pub struct PackedPht {
    automaton: Automaton,
    history_bits: u32,
    lut: [u8; 256],
    words: Vec<u64>,
}

impl PackedPht {
    /// Creates a packed table equivalent to
    /// [`PatternHistoryTable::new`]: every entry at the automaton's
    /// initial state.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or exceeds
    /// [`crate::history::MAX_HISTORY_BITS`].
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton) -> Self {
        assert!(
            (1..=crate::history::MAX_HISTORY_BITS).contains(&history_bits),
            "history bits {history_bits} out of range"
        );
        let entries = 1usize << history_bits;
        let initial = u64::from(automaton.initial_state().value());
        let mut word = 0u64;
        for slot in 0..32 {
            word |= initial << (slot * 2);
        }
        PackedPht {
            automaton,
            history_bits,
            lut: automaton.packed_lut(),
            words: vec![word; entries.div_ceil(32)],
        }
    }

    /// Packs an existing table, preserving every entry's current state —
    /// the path by which the Static Training preset tables (GSg/PSg) and
    /// any pre-warmed table enter the replay loop.
    #[must_use]
    pub fn from_table(table: &PatternHistoryTable) -> Self {
        let mut packed = PackedPht::new(table.history_bits(), table.automaton());
        for pattern in 0..table.len() {
            packed.set_state(pattern, table.state(pattern));
        }
        packed
    }

    /// The automaton stored in each entry.
    #[must_use]
    pub fn automaton(&self) -> Automaton {
        self.automaton
    }

    /// The history-register length `k` this table is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of entries (`2^k`).
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.history_bits
    }

    /// Always `false`; a table has at least two entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current state of the entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn state(&self, pattern: usize) -> State {
        assert!(pattern < self.len(), "pattern {pattern} out of range");
        let shift = (pattern & 31) * 2;
        State::new(((self.words[pattern >> 5] >> shift) & 0b11) as u8)
    }

    /// Overwrites the state of the entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range or `state` is invalid for the
    /// table's automaton.
    pub fn set_state(&mut self, pattern: usize, state: State) {
        assert!(pattern < self.len(), "pattern {pattern} out of range");
        assert!(
            self.automaton.is_valid_state(state),
            "state {state} invalid for {}",
            self.automaton
        );
        let shift = (pattern & 31) * 2;
        let word = &mut self.words[pattern >> 5];
        *word = (*word & !(0b11 << shift)) | (u64::from(state.value()) << shift);
    }

    /// Fused predict + update, identical in contract to
    /// [`PatternHistoryTable::predict_update`]: the returned prediction is
    /// λ of the entry's state *before* the transition.
    ///
    /// This is the replay inner loop, so the word index is wrapped by
    /// masking rather than bounds-checked — `x & (len - 1)` is always in
    /// range, which lets the check compile away. In-range patterns (the
    /// only ones a stream derived at this table's width can carry, and
    /// debug-asserted here) are unaffected.
    #[inline]
    pub fn predict_update(&mut self, pattern: usize, taken: bool) -> bool {
        debug_assert!(pattern < self.len(), "pattern {pattern} out of range");
        let shift = (pattern & 31) * 2;
        let index = (pattern >> 5) & (self.words.len() - 1);
        let word = &mut self.words[index];
        let state = ((*word >> shift) & 0b11) as u8;
        let entry = self.lut[usize::from((state << 1) | u8::from(taken))];
        *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
        entry & 0b100 != 0
    }
}

/// A bank of equally-sized [`PackedPht`]s interleaved into one
/// allocation: word `w` of member `m` lives at index `w * members + m`,
/// so every member's entry for one pattern sits on the same (or the
/// next) cache line.
///
/// This is how a replay batch walks many second levels over one shared
/// pattern stream. Separately-allocated tables make the batched walk
/// hostage to the allocator: members hit identical offsets in distinct
/// buffers back to back, and buffers landing 4 KiB-congruent (common
/// once the heap has churned) turn every member's load into a false
/// store-forwarding conflict with the previous member's store.
/// Interleaving makes the batch's per-event traffic contiguous instead.
///
/// Each member keeps its own automaton transition word, so a bank can
/// mix automata — the automaton-ablation sweep is exactly that. The
/// transition word compresses the member's [`Automaton::packed_lut`]
/// into a `u32` (8 live `(state, taken)` inputs × 4-bit entries), so
/// stepping a member shifts a register instead of loading from a
/// 256-byte table — one dependent load per member-step instead of two.
/// Final member states stay in the bank (replay only needs the
/// prediction counts), so there is no write-back to the source tables.
#[derive(Debug, Clone)]
pub struct PackedPhtBank {
    history_bits: u32,
    members: usize,
    word_mask: usize,
    luts: Vec<u32>,
    words: Vec<u64>,
}

impl PackedPhtBank {
    /// Interleaves `tables` into a bank.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or its members disagree on
    /// `history_bits`.
    #[must_use]
    pub fn new(tables: &[PackedPht]) -> Self {
        let first = tables.first().expect("a bank needs at least one member");
        assert!(
            tables.iter().all(|t| t.history_bits == first.history_bits),
            "bank members must share one table geometry"
        );
        let members = tables.len();
        let word_count = first.words.len();
        let mut words = vec![0u64; word_count * members];
        for (member, table) in tables.iter().enumerate() {
            for (index, &word) in table.words.iter().enumerate() {
                words[index * members + member] = word;
            }
        }
        let luts = tables
            .iter()
            .map(|table| {
                (0..8).fold(0u32, |flags, index| flags | u32::from(table.lut[index]) << (index * 4))
            })
            .collect();
        PackedPhtBank {
            history_bits: first.history_bits,
            members,
            word_mask: word_count - 1,
            luts,
            words,
        }
    }

    /// The history-register length `k` every member is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of member tables.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// [`PackedPht::predict_update`] on every member's entry for
    /// `pattern`, calling `sink(member, predicted)` in member order.
    #[inline]
    pub fn predict_update_each(
        &mut self,
        pattern: usize,
        taken: bool,
        mut sink: impl FnMut(usize, bool),
    ) {
        debug_assert!(pattern >> 5 <= self.word_mask, "pattern {pattern} out of range");
        let shift = (pattern & 31) * 2;
        let base = ((pattern >> 5) & self.word_mask) * self.members;
        let row = &mut self.words[base..base + self.members];
        for (member, (word, &flags)) in row.iter_mut().zip(&self.luts).enumerate() {
            let state = ((*word >> shift) & 0b11) as u32;
            let entry = (flags >> (((state << 1) | u32::from(taken)) * 4)) & 0b111;
            *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
            sink(member, entry & 0b100 != 0);
        }
    }

    /// [`PackedPhtBank::predict_update_each`] specialized for counting:
    /// adds 1 to `corrects[member]` for every member whose prediction
    /// matches `taken`. The replay inner loop — everything (row, LUTs,
    /// counters) advances in one zip with no per-member indexing.
    ///
    /// # Panics
    ///
    /// Panics if `corrects` is shorter than [`PackedPhtBank::members`].
    #[inline]
    pub fn predict_update_count(&mut self, pattern: usize, taken: bool, corrects: &mut [u64]) {
        debug_assert!(pattern >> 5 <= self.word_mask, "pattern {pattern} out of range");
        assert!(corrects.len() >= self.members, "one counter per member");
        let shift = (pattern & 31) * 2;
        let base = ((pattern >> 5) & self.word_mask) * self.members;
        let row = &mut self.words[base..base + self.members];
        for ((word, &flags), correct) in row.iter_mut().zip(&self.luts).zip(corrects) {
            let state = ((*word >> shift) & 0b11) as u32;
            let entry = (flags >> (((state << 1) | u32::from(taken)) * 4)) & 0b111;
            *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
            *correct += u64::from((entry & 0b100 != 0) == taken);
        }
    }

    /// [`PackedPhtBank::predict_update_count`] with the member count as a
    /// compile-time constant: the member loop fully unrolls and the
    /// counters live in a fixed array the optimizer can keep in
    /// registers. Callers dispatch on [`PackedPhtBank::members`] and fall
    /// back to the dynamic variant for sizes they didn't specialize.
    ///
    /// # Panics
    ///
    /// Panics if `N` differs from [`PackedPhtBank::members`].
    #[inline]
    pub fn predict_update_count_fixed<const N: usize>(
        &mut self,
        pattern: usize,
        taken: bool,
        corrects: &mut [u64; N],
    ) {
        debug_assert!(pattern >> 5 <= self.word_mask, "pattern {pattern} out of range");
        assert_eq!(N, self.members, "bank walked at the wrong width");
        let shift = (pattern & 31) * 2;
        let base = ((pattern >> 5) & self.word_mask) * N;
        let row: &mut [u64; N] =
            (&mut self.words[base..base + N]).try_into().expect("row is N words");
        let luts: &[u32; N] = self.luts[..N].try_into().expect("one lut per member");
        for member in 0..N {
            let word = &mut row[member];
            let state = ((*word >> shift) & 0b11) as u32;
            let entry = (luts[member] >> (((state << 1) | u32::from(taken)) * 4)) & 0b111;
            *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
            corrects[member] += u64::from((entry & 0b100 != 0) == taken);
        }
    }
}

/// Bit 0 of every nibble lane.
const NIBBLE_LO: u64 = 0x1111_1111_1111_1111;
/// Bits 0–1 (the stored 2-bit state) of every nibble lane.
const NIBBLE_STATE: u64 = 0x3333_3333_3333_3333;
/// Member nibbles per transposed word — public because the engine's
/// intra-batch split granule is one word: sub-batches never cut a width
/// group below this many members.
pub const LANES_PER_WORD: usize = 16;
/// Events between accumulator flushes: each nibble of the per-column
/// accumulator gains at most one per event and holds up to 15.
const ACC_FLUSH_EVENTS: usize = 15;

/// Per-bank data of the transposed SWAR kernel, shared by the
/// single-table and per-lane banks.
///
/// Every member's fused transition `f(s1, s0) = lut[(s << 1) | taken]`
/// (3 output bits: next state low/high, prediction) is expanded in the
/// AND–XOR (Reed–Muller) basis
///
/// ```text
/// f(s1, s0) = c0 ^ (c1 & s0) ^ (c2 & s1) ^ (c3 & s1 & s0)
/// ```
///
/// which is exact for *any* boolean function of the two state bits — so a
/// bank freely mixes automata per lane. The four coefficients are stored
/// as nibble-lane masks (3 live bits per member nibble), one set per
/// resolved direction, letting one `u64` op advance 16 members at once.
struct BankKernel {
    members: usize,
    /// Transposed words per table row (`ceil(members / 16)`).
    cols: usize,
    /// Coefficient masks, direction-major then coefficient-major:
    /// `coeff[((taken * 4) + k) * cols + col]` — so each direction's four
    /// column vectors are contiguous for the vector bodies.
    coeff: Vec<u64>,
    /// Nibble bit 2 set for every occupied member lane, per column: masks
    /// the kernel's prediction bits and (xored in when the branch was not
    /// taken) converts them to correctness bits.
    pred_occ: Vec<u64>,
    /// Per-member compressed LUTs ([`PackedPhtBank`]-style `u32`s) for
    /// the scalar reference body.
    luts: Vec<u32>,
}

impl BankKernel {
    fn new(tables: &[PackedPht]) -> BankKernel {
        let members = tables.len();
        let cols = members.div_ceil(LANES_PER_WORD);
        let mut coeff = vec![0u64; 2 * 4 * cols];
        let mut pred_occ = vec![0u64; cols];
        let mut luts = Vec::with_capacity(members);
        for (member, table) in tables.iter().enumerate() {
            let col = member / LANES_PER_WORD;
            let shift = (member % LANES_PER_WORD) * 4;
            for taken in 0..2usize {
                let f = |state: usize| table.lut[(state << 1) | taken] & 0b111;
                let (f0, f1, f2, f3) = (f(0), f(1), f(2), f(3));
                for (k, bits) in [f0, f0 ^ f1, f0 ^ f2, f0 ^ f1 ^ f2 ^ f3].into_iter().enumerate() {
                    coeff[((taken * 4) + k) * cols + col] |= u64::from(bits) << shift;
                }
            }
            pred_occ[col] |= 0b100u64 << shift;
            luts.push(
                (0..8)
                    .fold(0u32, |flags, index| flags | u32::from(table.lut[index]) << (index * 4)),
            );
        }
        BankKernel { members, cols, coeff, pred_occ, luts }
    }
}

/// Lane-transposes the members' current states: row `pattern`, column
/// `member / 16`, nibble `member % 16`.
fn transpose_states(tables: &[PackedPht], rows: usize, cols: usize) -> Vec<u64> {
    let mut words = vec![0u64; rows * cols];
    for (member, table) in tables.iter().enumerate() {
        let col = member / LANES_PER_WORD;
        let shift = (member % LANES_PER_WORD) * 4;
        for (pattern, row) in words.chunks_exact_mut(cols).enumerate() {
            row[col] |= u64::from(table.state(pattern).value()) << shift;
        }
    }
    words
}

/// One column of the portable SWAR body: advance 16 member nibbles and
/// accumulate their correctness bits.
#[inline(always)]
fn step_col_swar(
    row: &mut [u64],
    ct: &[u64],
    pred_occ: &[u64],
    not_taken: u64,
    acc: &mut [u64],
    cols: usize,
    col: usize,
) {
    let w = row[col];
    let lo = w & NIBBLE_LO;
    let hi = (w >> 1) & NIBBLE_LO;
    let hl = hi & lo;
    // `x * 7` spreads each nibble's bit 0 across bits 0–2 (no nibble
    // carries: 7 < 16), broadcasting a state bit to all three coefficient
    // bit positions.
    let out = ct[col]
        ^ (ct[cols + col] & lo.wrapping_mul(7))
        ^ (ct[2 * cols + col] & hi.wrapping_mul(7))
        ^ (ct[3 * cols + col] & hl.wrapping_mul(7));
    row[col] = out & NIBBLE_STATE;
    let occ = pred_occ[col];
    // Bit 2 of each occupied nibble is the member's prediction; xoring in
    // the occupancy mask on a not-taken branch flips it to "was correct".
    acc[col] += ((out & occ) ^ (occ & not_taken)) >> 2;
}

/// The portable `u64` SWAR body over a whole row.
#[inline(always)]
fn step_row_swar(row: &mut [u64], ct: &[u64], pred_occ: &[u64], not_taken: u64, acc: &mut [u64]) {
    let cols = row.len();
    for col in 0..cols {
        step_col_swar(row, ct, pred_occ, not_taken, acc, cols, col);
    }
}

/// The scalar reference body: per-member LUT steps in the same
/// transposed layout, counting directly (no bit-sliced accumulator).
#[inline(always)]
fn step_row_scalar(row: &mut [u64], luts: &[u32], taken: bool, counts: &mut [u64]) {
    for (member, (&flags, count)) in luts.iter().zip(counts.iter_mut()).enumerate() {
        let col = member / LANES_PER_WORD;
        let shift = (member % LANES_PER_WORD) * 4;
        let state = ((row[col] >> shift) & 0b11) as u32;
        let entry = (flags >> (((state << 1) | u32::from(taken)) * 4)) & 0b111;
        row[col] = (row[col] & !(0xFu64 << shift)) | (u64::from(entry & 0b11) << shift);
        *count += u64::from((entry & 0b100 != 0) == taken);
    }
}

/// `std::arch` widenings of the SWAR body — the crate's sole sanctioned
/// `unsafe` (see the crate-root lint note). The bodies compute exactly
/// the portable algebra on 2 (`SSE2`), 4 (`AVX2`) or 8 (`AVX-512`)
/// columns per vector op, with narrower steps cascading down to a
/// portable tail; all pointer arithmetic derives from slices whose
/// lengths are asserted up front.
#[cfg(target_arch = "x86_64")]
mod x86 {
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m128i, __m256i, __m512i, _mm256_add_epi64, _mm256_and_si256, _mm256_loadu_si256,
        _mm256_set1_epi64x, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_sub_epi64, _mm256_xor_si256, _mm512_add_epi64, _mm512_and_si512, _mm512_loadu_si512,
        _mm512_set1_epi64, _mm512_slli_epi64, _mm512_srli_epi64, _mm512_storeu_si512,
        _mm512_sub_epi64, _mm512_xor_si512, _mm_add_epi64, _mm_and_si128, _mm_loadu_si128,
        _mm_set1_epi64x, _mm_slli_epi64, _mm_srli_epi64, _mm_storeu_si128, _mm_sub_epi64,
        _mm_xor_si128,
    };

    use super::{step_col_swar, NIBBLE_LO, NIBBLE_STATE};

    /// Safe wrapper: SSE2 is part of the x86_64 baseline, so the
    /// `target_feature` body is always callable here.
    pub(super) fn step_row_sse2_dyn(
        row: &mut [u64],
        ct: &[u64],
        pred_occ: &[u64],
        not_taken: u64,
        acc: &mut [u64],
    ) {
        unsafe { step_row_sse2(row, ct, pred_occ, not_taken, acc) }
    }

    /// Safe wrapper with defense-in-depth feature re-check (a cached
    /// atomic load): kernel resolution already verified AVX2, but a
    /// mis-routed call degrades to the portable body instead of UB.
    pub(super) fn step_row_avx2_dyn(
        row: &mut [u64],
        ct: &[u64],
        pred_occ: &[u64],
        not_taken: u64,
        acc: &mut [u64],
    ) {
        if std::arch::is_x86_feature_detected!("avx2") {
            unsafe { step_row_avx2(row, ct, pred_occ, not_taken, acc) }
        } else {
            super::step_row_swar(row, ct, pred_occ, not_taken, acc);
        }
    }

    /// Safe wrapper with defense-in-depth feature re-check. The body's
    /// 512-bit loop needs `avx512f`; its 4-column mid step reuses the
    /// AVX2 algebra, so that feature is re-verified too (every AVX-512
    /// part ships AVX2, but the check is a cached atomic load and keeps
    /// the safety argument local). `avx512bw` rides along because the
    /// tier contract in `core::simd` requires the full F+BW pair.
    pub(super) fn step_row_avx512_dyn(
        row: &mut [u64],
        ct: &[u64],
        pred_occ: &[u64],
        not_taken: u64,
        acc: &mut [u64],
    ) {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            unsafe { step_row_avx512(row, ct, pred_occ, not_taken, acc) }
        } else {
            super::step_row_swar(row, ct, pred_occ, not_taken, acc);
        }
    }

    #[inline]
    fn load2(slice: &[u64], at: usize) -> __m128i {
        let pair: &[u64] = &slice[at..at + 2];
        // SAFETY: `pair` is a live, bounds-checked &[u64] of length 2 —
        // 16 readable bytes; `loadu` has no alignment requirement.
        unsafe { _mm_loadu_si128(pair.as_ptr().cast()) }
    }

    #[inline]
    fn store2(slice: &mut [u64], at: usize, value: __m128i) {
        let pair: &mut [u64] = &mut slice[at..at + 2];
        // SAFETY: as `load2`, writable.
        unsafe { _mm_storeu_si128(pair.as_mut_ptr().cast(), value) }
    }

    #[inline]
    fn load4(slice: &[u64], at: usize) -> __m256i {
        let quad: &[u64] = &slice[at..at + 4];
        // SAFETY: bounds-checked 32 readable bytes, unaligned load.
        unsafe { _mm256_loadu_si256(quad.as_ptr().cast()) }
    }

    #[inline]
    fn store4(slice: &mut [u64], at: usize, value: __m256i) {
        let quad: &mut [u64] = &mut slice[at..at + 4];
        // SAFETY: as `load4`, writable.
        unsafe { _mm256_storeu_si256(quad.as_mut_ptr().cast(), value) }
    }

    #[inline]
    fn load8(slice: &[u64], at: usize) -> __m512i {
        let oct: &[u64] = &slice[at..at + 8];
        // SAFETY: bounds-checked 64 readable bytes, unaligned load.
        unsafe { _mm512_loadu_si512(oct.as_ptr().cast()) }
    }

    #[inline]
    fn store8(slice: &mut [u64], at: usize, value: __m512i) {
        let oct: &mut [u64] = &mut slice[at..at + 8];
        // SAFETY: as `load8`, writable.
        unsafe { _mm512_storeu_si512(oct.as_mut_ptr().cast(), value) }
    }

    /// # Safety
    ///
    /// Requires SSE2 (always present on x86_64).
    #[target_feature(enable = "sse2")]
    unsafe fn step_row_sse2(
        row: &mut [u64],
        ct: &[u64],
        pred_occ: &[u64],
        not_taken: u64,
        acc: &mut [u64],
    ) {
        let cols = row.len();
        assert_eq!(ct.len(), 4 * cols, "coefficients per column");
        assert_eq!(pred_occ.len(), cols, "occupancy per column");
        assert_eq!(acc.len(), cols, "accumulator per column");
        let lane = _mm_set1_epi64x(NIBBLE_LO as i64);
        let state_mask = _mm_set1_epi64x(NIBBLE_STATE as i64);
        let nt = _mm_set1_epi64x(not_taken as i64);
        let mut col = 0;
        while col + 2 <= cols {
            let w = load2(row, col);
            let lo = _mm_and_si128(w, lane);
            let hi = _mm_and_si128(_mm_srli_epi64(w, 1), lane);
            let hl = _mm_and_si128(hi, lo);
            // x * 7 == (x << 3) - x, dodging the missing 64-bit multiply.
            let sp_lo = _mm_sub_epi64(_mm_slli_epi64(lo, 3), lo);
            let sp_hi = _mm_sub_epi64(_mm_slli_epi64(hi, 3), hi);
            let sp_hl = _mm_sub_epi64(_mm_slli_epi64(hl, 3), hl);
            let out = _mm_xor_si128(
                _mm_xor_si128(load2(ct, col), _mm_and_si128(load2(ct, cols + col), sp_lo)),
                _mm_xor_si128(
                    _mm_and_si128(load2(ct, 2 * cols + col), sp_hi),
                    _mm_and_si128(load2(ct, 3 * cols + col), sp_hl),
                ),
            );
            store2(row, col, _mm_and_si128(out, state_mask));
            let occ = load2(pred_occ, col);
            let correct =
                _mm_srli_epi64(_mm_xor_si128(_mm_and_si128(out, occ), _mm_and_si128(occ, nt)), 2);
            store2(acc, col, _mm_add_epi64(load2(acc, col), correct));
            col += 2;
        }
        while col < cols {
            step_col_swar(row, ct, pred_occ, not_taken, acc, cols, col);
            col += 1;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (checked by the caller).
    #[target_feature(enable = "avx2")]
    unsafe fn step_row_avx2(
        row: &mut [u64],
        ct: &[u64],
        pred_occ: &[u64],
        not_taken: u64,
        acc: &mut [u64],
    ) {
        let cols = row.len();
        assert_eq!(ct.len(), 4 * cols, "coefficients per column");
        assert_eq!(pred_occ.len(), cols, "occupancy per column");
        assert_eq!(acc.len(), cols, "accumulator per column");
        let lane = _mm256_set1_epi64x(NIBBLE_LO as i64);
        let state_mask = _mm256_set1_epi64x(NIBBLE_STATE as i64);
        let nt = _mm256_set1_epi64x(not_taken as i64);
        let mut col = 0;
        while col + 4 <= cols {
            let w = load4(row, col);
            let lo = _mm256_and_si256(w, lane);
            let hi = _mm256_and_si256(_mm256_srli_epi64(w, 1), lane);
            let hl = _mm256_and_si256(hi, lo);
            let sp_lo = _mm256_sub_epi64(_mm256_slli_epi64(lo, 3), lo);
            let sp_hi = _mm256_sub_epi64(_mm256_slli_epi64(hi, 3), hi);
            let sp_hl = _mm256_sub_epi64(_mm256_slli_epi64(hl, 3), hl);
            let out = _mm256_xor_si256(
                _mm256_xor_si256(load4(ct, col), _mm256_and_si256(load4(ct, cols + col), sp_lo)),
                _mm256_xor_si256(
                    _mm256_and_si256(load4(ct, 2 * cols + col), sp_hi),
                    _mm256_and_si256(load4(ct, 3 * cols + col), sp_hl),
                ),
            );
            store4(row, col, _mm256_and_si256(out, state_mask));
            let occ = load4(pred_occ, col);
            let correct = _mm256_srli_epi64(
                _mm256_xor_si256(_mm256_and_si256(out, occ), _mm256_and_si256(occ, nt)),
                2,
            );
            store4(acc, col, _mm256_add_epi64(load4(acc, col), correct));
            col += 4;
        }
        while col < cols {
            step_col_swar(row, ct, pred_occ, not_taken, acc, cols, col);
            col += 1;
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512F (512-bit loop) and AVX2 (4-column mid step);
    /// both are checked by the caller.
    ///
    /// The cascade matters: a row narrower than 8 columns must not fall
    /// straight to the scalar tail, or the forced `avx512` tier would be
    /// *slower* than `avx2` on the common ≤ 4-column banks — so leftover
    /// columns take one AVX2 quad step before the portable tail.
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    unsafe fn step_row_avx512(
        row: &mut [u64],
        ct: &[u64],
        pred_occ: &[u64],
        not_taken: u64,
        acc: &mut [u64],
    ) {
        let cols = row.len();
        assert_eq!(ct.len(), 4 * cols, "coefficients per column");
        assert_eq!(pred_occ.len(), cols, "occupancy per column");
        assert_eq!(acc.len(), cols, "accumulator per column");
        let lane = _mm512_set1_epi64(NIBBLE_LO as i64);
        let state_mask = _mm512_set1_epi64(NIBBLE_STATE as i64);
        let nt = _mm512_set1_epi64(not_taken as i64);
        let mut col = 0;
        while col + 8 <= cols {
            let w = load8(row, col);
            let lo = _mm512_and_si512(w, lane);
            let hi = _mm512_and_si512(_mm512_srli_epi64(w, 1), lane);
            let hl = _mm512_and_si512(hi, lo);
            // x * 7 == (x << 3) - x, as in the narrower bodies.
            let sp_lo = _mm512_sub_epi64(_mm512_slli_epi64(lo, 3), lo);
            let sp_hi = _mm512_sub_epi64(_mm512_slli_epi64(hi, 3), hi);
            let sp_hl = _mm512_sub_epi64(_mm512_slli_epi64(hl, 3), hl);
            let out = _mm512_xor_si512(
                _mm512_xor_si512(load8(ct, col), _mm512_and_si512(load8(ct, cols + col), sp_lo)),
                _mm512_xor_si512(
                    _mm512_and_si512(load8(ct, 2 * cols + col), sp_hi),
                    _mm512_and_si512(load8(ct, 3 * cols + col), sp_hl),
                ),
            );
            store8(row, col, _mm512_and_si512(out, state_mask));
            let occ = load8(pred_occ, col);
            let correct = _mm512_srli_epi64(
                _mm512_xor_si512(_mm512_and_si512(out, occ), _mm512_and_si512(occ, nt)),
                2,
            );
            store8(acc, col, _mm512_add_epi64(load8(acc, col), correct));
            col += 8;
        }
        if col + 4 <= cols {
            let lane4 = _mm256_set1_epi64x(NIBBLE_LO as i64);
            let state_mask4 = _mm256_set1_epi64x(NIBBLE_STATE as i64);
            let nt4 = _mm256_set1_epi64x(not_taken as i64);
            let w = load4(row, col);
            let lo = _mm256_and_si256(w, lane4);
            let hi = _mm256_and_si256(_mm256_srli_epi64(w, 1), lane4);
            let hl = _mm256_and_si256(hi, lo);
            let sp_lo = _mm256_sub_epi64(_mm256_slli_epi64(lo, 3), lo);
            let sp_hi = _mm256_sub_epi64(_mm256_slli_epi64(hi, 3), hi);
            let sp_hl = _mm256_sub_epi64(_mm256_slli_epi64(hl, 3), hl);
            let out = _mm256_xor_si256(
                _mm256_xor_si256(load4(ct, col), _mm256_and_si256(load4(ct, cols + col), sp_lo)),
                _mm256_xor_si256(
                    _mm256_and_si256(load4(ct, 2 * cols + col), sp_hi),
                    _mm256_and_si256(load4(ct, 3 * cols + col), sp_hl),
                ),
            );
            store4(row, col, _mm256_and_si256(out, state_mask4));
            let occ = load4(pred_occ, col);
            let correct = _mm256_srli_epi64(
                _mm256_xor_si256(_mm256_and_si256(out, occ), _mm256_and_si256(occ, nt4)),
                2,
            );
            store4(acc, col, _mm256_add_epi64(load4(acc, col), correct));
            col += 4;
        }
        while col < cols {
            step_col_swar(row, ct, pred_occ, not_taken, acc, cols, col);
            col += 1;
        }
    }
}

/// A lane-transposed bank of equally-sized [`PackedPht`]s for the SWAR
/// replay kernel: 4-bit lanes, 16 members per `u64`, one (or a few)
/// words per table *row* — the dual of [`PackedPhtBank`]'s member-major
/// interleave. A replayed event touches `ceil(members / 16)` words
/// instead of one word per member, and one round of bit-sliced logic
/// steps all 16 lanes of a word at once.
///
/// Patterns index rows *masked to the bank's width*
/// (`pattern & (2^k - 1)`). Because a k-bit history register's content
/// is exactly the low k bits of any wider register fed the same
/// outcomes, a stream derived at width `K >= k` replays a width-k bank
/// bit-identically — the width-fold contract the engine's transposed
/// sweep lowering builds on (pinned by `tests/differential.rs`).
///
/// Prediction *counting* is bit-sliced too: bit 2 of each advanced
/// nibble (λ of the pre-update state, xored with the event's direction)
/// lands in a per-column nibble accumulator, flushed to 64-bit
/// per-member counters every [`ACC_FLUSH_EVENTS`] events.
#[derive(Debug)]
pub struct TransposedPhtBank {
    history_bits: u32,
    row_mask: usize,
    kernel: BankKernel,
    words: Vec<u64>,
    acc: Vec<u64>,
    counts: Vec<u64>,
}

impl std::fmt::Debug for BankKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankKernel")
            .field("members", &self.members)
            .field("cols", &self.cols)
            .finish_non_exhaustive()
    }
}

impl TransposedPhtBank {
    /// Transposes `tables` into a bank, preserving every member's
    /// current per-entry state (preset GSg/PSg assemblies included).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or its members disagree on
    /// `history_bits`.
    #[must_use]
    pub fn new(tables: &[PackedPht]) -> Self {
        let first = tables.first().expect("a bank needs at least one member");
        assert!(
            tables.iter().all(|t| t.history_bits == first.history_bits),
            "bank members must share one table geometry"
        );
        let rows = 1usize << first.history_bits;
        let kernel = BankKernel::new(tables);
        let words = transpose_states(tables, rows, kernel.cols);
        let acc = vec![0u64; kernel.cols];
        let counts = vec![0u64; kernel.members];
        TransposedPhtBank {
            history_bits: first.history_bits,
            row_mask: rows - 1,
            kernel,
            words,
            acc,
            counts,
        }
    }

    /// The history-register length `k` every member is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of member tables.
    #[must_use]
    pub fn members(&self) -> usize {
        self.kernel.members
    }

    /// Replays a block of packed `pattern << 1 | taken` events (patterns
    /// masked to the bank's width, see the type docs) through every
    /// member, adding each member's correct predictions to its
    /// [`TransposedPhtBank::counts`] slot. `mode` picks the kernel body;
    /// every body is bit-identical.
    pub fn replay(&mut self, events: &[u32], mode: SimdMode) {
        match mode.kernel() {
            Kernel::Scalar => self.replay_scalar(events),
            _ if self.kernel.cols == 1 => self.replay_swar1(events),
            Kernel::Swar => self.replay_bitsliced(events, step_row_swar),
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => self.replay_bitsliced(events, x86::step_row_sse2_dyn),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => self.replay_bitsliced(events, x86::step_row_avx2_dyn),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => self.replay_bitsliced(events, x86::step_row_avx512_dyn),
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Sse2 | Kernel::Avx2 | Kernel::Avx512 => {
                self.replay_bitsliced(events, step_row_swar)
            }
        }
    }

    /// Per-member correct-prediction counts accumulated by
    /// [`TransposedPhtBank::replay`] so far, in member order.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The current state of `member`'s entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` or `member` is out of range.
    #[must_use]
    pub fn state(&self, pattern: usize, member: usize) -> State {
        assert!(pattern <= self.row_mask, "pattern {pattern} out of range");
        assert!(member < self.kernel.members, "member {member} out of range");
        let word = self.words[pattern * self.kernel.cols + member / LANES_PER_WORD];
        State::new(((word >> ((member % LANES_PER_WORD) * 4)) & 0b11) as u8)
    }

    /// The hot shape — every real batch has ≤ 16 same-width members, so
    /// the whole bank is one word per row and the column loop, slicing
    /// and per-column accumulator indexing all collapse.
    fn replay_swar1(&mut self, events: &[u32]) {
        debug_assert_eq!(self.kernel.cols, 1);
        let occ = self.kernel.pred_occ[0];
        let coeff: [u64; 8] = self.kernel.coeff[..8].try_into().expect("2 directions × 4");
        for chunk in events.chunks(ACC_FLUSH_EVENTS) {
            let mut acc = 0u64;
            for &event in chunk {
                let pattern = (event >> 1) as usize & self.row_mask;
                let not_taken = u64::from(event & 1).wrapping_sub(1);
                let ct = (event as usize & 1) * 4;
                let w = self.words[pattern];
                let lo = w & NIBBLE_LO;
                let hi = (w >> 1) & NIBBLE_LO;
                let hl = hi & lo;
                let out = coeff[ct]
                    ^ (coeff[ct + 1] & lo.wrapping_mul(7))
                    ^ (coeff[ct + 2] & hi.wrapping_mul(7))
                    ^ (coeff[ct + 3] & hl.wrapping_mul(7));
                self.words[pattern] = out & NIBBLE_STATE;
                acc += ((out & occ) ^ (occ & not_taken)) >> 2;
            }
            self.acc[0] = acc;
            self.flush_acc();
        }
    }

    /// The general multi-column bit-sliced walk, parameterized over a
    /// row-step body (portable / SSE2 / AVX2).
    fn replay_bitsliced(
        &mut self,
        events: &[u32],
        step: impl Fn(&mut [u64], &[u64], &[u64], u64, &mut [u64]),
    ) {
        let cols = self.kernel.cols;
        for chunk in events.chunks(ACC_FLUSH_EVENTS) {
            for &event in chunk {
                let pattern = (event >> 1) as usize & self.row_mask;
                let not_taken = u64::from(event & 1).wrapping_sub(1);
                let base = pattern * cols;
                let ct = &self.kernel.coeff[(event as usize & 1) * 4 * cols..][..4 * cols];
                step(
                    &mut self.words[base..base + cols],
                    ct,
                    &self.kernel.pred_occ,
                    not_taken,
                    &mut self.acc,
                );
            }
            self.flush_acc();
        }
    }

    fn replay_scalar(&mut self, events: &[u32]) {
        let cols = self.kernel.cols;
        for &event in events {
            let pattern = (event >> 1) as usize & self.row_mask;
            let base = pattern * cols;
            step_row_scalar(
                &mut self.words[base..base + cols],
                &self.kernel.luts,
                event & 1 != 0,
                &mut self.counts,
            );
        }
    }

    fn flush_acc(&mut self) {
        for (member, count) in self.counts.iter_mut().enumerate() {
            *count += (self.acc[member / LANES_PER_WORD] >> ((member % LANES_PER_WORD) * 4)) & 0xF;
        }
        self.acc.fill(0);
    }
}

/// [`TransposedPhtBank`] for per-address second levels (PAp): one
/// transposed table per stream *lane*, materialized from the members'
/// template states on a lane's first event — behaviorally identical to
/// per-lane [`PackedPht`] clones, sharing one kernel, one accumulator
/// and one counter set across lanes.
#[derive(Debug)]
pub struct TransposedLanePhtBank {
    history_bits: u32,
    row_mask: usize,
    kernel: BankKernel,
    template: Vec<u64>,
    lanes: Vec<Vec<u64>>,
    acc: Vec<u64>,
    counts: Vec<u64>,
}

impl TransposedLanePhtBank {
    /// Builds a lane bank whose per-lane tables start from the members'
    /// current states in `templates`.
    ///
    /// # Panics
    ///
    /// Panics if `templates` is empty or its members disagree on
    /// `history_bits`.
    #[must_use]
    pub fn new(templates: &[PackedPht]) -> Self {
        let first = templates.first().expect("a bank needs at least one member");
        assert!(
            templates.iter().all(|t| t.history_bits == first.history_bits),
            "bank members must share one table geometry"
        );
        let rows = 1usize << first.history_bits;
        let kernel = BankKernel::new(templates);
        let template = transpose_states(templates, rows, kernel.cols);
        let acc = vec![0u64; kernel.cols];
        let counts = vec![0u64; kernel.members];
        TransposedLanePhtBank {
            history_bits: first.history_bits,
            row_mask: rows - 1,
            kernel,
            template,
            lanes: Vec::new(),
            acc,
            counts,
        }
    }

    /// The history-register length `k` every member is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of member tables (per lane).
    #[must_use]
    pub fn members(&self) -> usize {
        self.kernel.members
    }

    /// Replays a block of events with their per-event lane selectors
    /// (patterns masked to the bank's width, as in
    /// [`TransposedPhtBank::replay`]).
    ///
    /// # Panics
    ///
    /// Panics if `events` and `lanes` differ in length.
    pub fn replay(&mut self, events: &[u32], lanes: &[u32], mode: SimdMode) {
        assert_eq!(events.len(), lanes.len(), "one lane selector per event");
        match mode.kernel() {
            Kernel::Scalar => self.replay_scalar(events, lanes),
            _ if self.kernel.cols == 1 => self.replay_swar1(events, lanes),
            Kernel::Swar => self.replay_bitsliced(events, lanes, step_row_swar),
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => self.replay_bitsliced(events, lanes, x86::step_row_sse2_dyn),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => self.replay_bitsliced(events, lanes, x86::step_row_avx2_dyn),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => self.replay_bitsliced(events, lanes, x86::step_row_avx512_dyn),
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Sse2 | Kernel::Avx2 | Kernel::Avx512 => {
                self.replay_bitsliced(events, lanes, step_row_swar)
            }
        }
    }

    /// Per-member correct-prediction counts accumulated so far.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Ensures `lane`'s table exists (cloned from the template on first
    /// touch).
    #[inline]
    fn lane_table(&mut self, lane: usize) {
        if lane >= self.lanes.len() {
            self.lanes.resize_with(lane + 1, Vec::new);
        }
        let table = &mut self.lanes[lane];
        if table.is_empty() {
            table.extend_from_slice(&self.template);
        }
    }

    fn replay_swar1(&mut self, events: &[u32], lanes: &[u32]) {
        debug_assert_eq!(self.kernel.cols, 1);
        let occ = self.kernel.pred_occ[0];
        let coeff: [u64; 8] = self.kernel.coeff[..8].try_into().expect("2 directions × 4");
        for (echunk, lchunk) in events.chunks(ACC_FLUSH_EVENTS).zip(lanes.chunks(ACC_FLUSH_EVENTS))
        {
            let mut acc = 0u64;
            for (&event, &lane) in echunk.iter().zip(lchunk) {
                let pattern = (event >> 1) as usize & self.row_mask;
                let not_taken = u64::from(event & 1).wrapping_sub(1);
                let ct = (event as usize & 1) * 4;
                self.lane_table(lane as usize);
                let table = &mut self.lanes[lane as usize];
                let w = table[pattern];
                let lo = w & NIBBLE_LO;
                let hi = (w >> 1) & NIBBLE_LO;
                let hl = hi & lo;
                let out = coeff[ct]
                    ^ (coeff[ct + 1] & lo.wrapping_mul(7))
                    ^ (coeff[ct + 2] & hi.wrapping_mul(7))
                    ^ (coeff[ct + 3] & hl.wrapping_mul(7));
                table[pattern] = out & NIBBLE_STATE;
                acc += ((out & occ) ^ (occ & not_taken)) >> 2;
            }
            self.acc[0] = acc;
            self.flush_acc();
        }
    }

    fn replay_bitsliced(
        &mut self,
        events: &[u32],
        lanes: &[u32],
        step: impl Fn(&mut [u64], &[u64], &[u64], u64, &mut [u64]),
    ) {
        let cols = self.kernel.cols;
        for (echunk, lchunk) in events.chunks(ACC_FLUSH_EVENTS).zip(lanes.chunks(ACC_FLUSH_EVENTS))
        {
            for (&event, &lane) in echunk.iter().zip(lchunk) {
                let pattern = (event >> 1) as usize & self.row_mask;
                let not_taken = u64::from(event & 1).wrapping_sub(1);
                let base = pattern * cols;
                let direction = event as usize & 1;
                self.lane_table(lane as usize);
                let table = &mut self.lanes[lane as usize];
                let ct = &self.kernel.coeff[direction * 4 * cols..][..4 * cols];
                step(
                    &mut table[base..base + cols],
                    ct,
                    &self.kernel.pred_occ,
                    not_taken,
                    &mut self.acc,
                );
            }
            self.flush_acc();
        }
    }

    fn replay_scalar(&mut self, events: &[u32], lanes: &[u32]) {
        let cols = self.kernel.cols;
        for (&event, &lane) in events.iter().zip(lanes) {
            let pattern = (event >> 1) as usize & self.row_mask;
            let taken = event & 1 != 0;
            let base = pattern * cols;
            self.lane_table(lane as usize);
            let table = &mut self.lanes[lane as usize];
            step_row_scalar(
                &mut table[base..base + cols],
                &self.kernel.luts,
                taken,
                &mut self.counts,
            );
        }
    }

    fn flush_acc(&mut self) {
        for (member, count) in self.counts.iter_mut().enumerate() {
            *count += (self.acc[member / LANES_PER_WORD] >> ((member % LANES_PER_WORD) * 4)) & 0xF;
        }
        self.acc.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_to_biased_taken() {
        for automaton in Automaton::ALL {
            let pht = PatternHistoryTable::new(3, automaton);
            for pattern in 0..pht.len() {
                assert!(pht.predict(pattern), "{automaton} pattern {pattern}");
            }
        }
    }

    #[test]
    fn entries_are_independent() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.update(0b01, false);
        assert!(!pht.predict(0b01));
        assert!(pht.predict(0b00));
        assert!(pht.predict(0b10));
        assert!(pht.predict(0b11));
    }

    #[test]
    fn len_is_power_of_two() {
        assert_eq!(PatternHistoryTable::new(6, Automaton::A2).len(), 64);
        assert_eq!(PatternHistoryTable::new(18, Automaton::A2).len(), 262_144);
    }

    #[test]
    fn update_follows_automaton() {
        let mut pht = PatternHistoryTable::new(2, Automaton::A2);
        pht.update(1, false);
        assert_eq!(pht.state(1), State::new(2));
        pht.update(1, false);
        assert_eq!(pht.state(1), State::new(1));
        assert!(!pht.predict(1));
    }

    #[test]
    fn set_state_validates() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.set_state(0, State::new(0));
        assert!(!pht.predict(0));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn set_state_rejects_out_of_range_state() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.set_state(0, State::new(2));
    }

    #[test]
    fn reinitialize_restores_initial() {
        let mut pht = PatternHistoryTable::new(3, Automaton::A2);
        for pattern in 0..pht.len() {
            pht.update(pattern, false);
            pht.update(pattern, false);
            pht.update(pattern, false);
        }
        assert!(!pht.predict(0));
        pht.reinitialize();
        for pattern in 0..pht.len() {
            assert!(pht.predict(pattern));
            assert_eq!(pht.state(pattern), Automaton::A2.initial_state());
        }
    }

    #[test]
    fn preset_table_ignores_updates() {
        let mut pht = PatternHistoryTable::new(2, Automaton::PresetBit);
        pht.set_state(2, State::new(0));
        pht.update(2, true);
        pht.update(2, true);
        assert!(!pht.predict(2), "preset bit must not learn");
    }

    #[test]
    fn packed_pht_matches_unpacked_on_random_walks() {
        let mut rng = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for automaton in Automaton::ALL {
            let mut pht = PatternHistoryTable::new(6, automaton);
            let mut packed = PackedPht::from_table(&pht);
            assert_eq!(packed.len(), pht.len());
            for _ in 0..4000 {
                let r = next();
                let pattern = (r as usize >> 8) & (pht.len() - 1);
                let taken = r & 1 != 0;
                assert_eq!(
                    packed.predict_update(pattern, taken),
                    pht.predict_update(pattern, taken),
                    "{automaton} pattern {pattern} taken {taken}"
                );
            }
            for pattern in 0..pht.len() {
                assert_eq!(packed.state(pattern), pht.state(pattern), "{automaton} {pattern}");
            }
        }
    }

    #[test]
    fn bank_matches_individual_packed_tables() {
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        // A mixed-automata bank, as the ablation sweeps build.
        let mut tables: Vec<PackedPht> =
            Automaton::ALL.iter().map(|&automaton| PackedPht::new(7, automaton)).collect();
        let mut bank = PackedPhtBank::new(&tables);
        assert_eq!(bank.members(), tables.len());
        assert_eq!(bank.history_bits(), 7);
        for _ in 0..4000 {
            let r = next();
            let pattern = (r as usize >> 8) & (tables[0].len() - 1);
            let taken = r & 1 != 0;
            let mut banked = Vec::new();
            bank.predict_update_each(pattern, taken, |member, predicted| {
                banked.push((member, predicted));
            });
            for (member, table) in tables.iter_mut().enumerate() {
                assert_eq!(
                    banked[member],
                    (member, table.predict_update(pattern, taken)),
                    "member {member} diverged at pattern {pattern}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "share one table geometry")]
    fn bank_rejects_mixed_geometries() {
        let _ = PackedPhtBank::new(&[
            PackedPht::new(6, Automaton::A2),
            PackedPht::new(8, Automaton::A2),
        ]);
    }

    #[test]
    fn packed_pht_round_trips_preset_states() {
        // A PSg-style preset table: mixed 0/1 states under PresetBit.
        let mut pht = PatternHistoryTable::new(4, Automaton::PresetBit);
        for pattern in 0..pht.len() {
            pht.set_state(pattern, State::new(u8::from(pattern % 3 == 0)));
        }
        let mut packed = PackedPht::from_table(&pht);
        for pattern in 0..pht.len() {
            assert_eq!(packed.state(pattern), pht.state(pattern));
            // Updates never move a preset bit.
            assert_eq!(packed.predict_update(pattern, true), pht.predict_update(pattern, true));
            assert_eq!(packed.state(pattern), pht.state(pattern));
        }
    }

    #[test]
    fn packed_pht_word_boundaries() {
        // Entries 31/32/33 straddle the first word boundary.
        let mut packed = PackedPht::new(6, Automaton::A2);
        packed.predict_update(31, false);
        packed.predict_update(32, false);
        assert_eq!(packed.state(31), State::new(2));
        assert_eq!(packed.state(32), State::new(2));
        assert_eq!(packed.state(33), State::new(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_pht_state_rejects_out_of_range_pattern() {
        let packed = PackedPht::new(2, Automaton::A2);
        let _ = packed.state(4);
    }

    const EVERY_MODE: [SimdMode; 6] = [
        SimdMode::Auto,
        SimdMode::Swar,
        SimdMode::Scalar,
        SimdMode::Sse2,
        SimdMode::Avx2,
        SimdMode::Avx512,
    ];

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut rng = seed;
        move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        }
    }

    /// Random packed events whose patterns span `pattern_bits` (possibly
    /// wider than the bank under test, exercising the width fold).
    fn random_events(pattern_bits: u32, count: usize, seed: u64) -> Vec<u32> {
        let mut next = xorshift(seed);
        (0..count)
            .map(|_| {
                let r = next();
                ((r as u32 >> 8) & ((1 << pattern_bits) - 1)) << 1 | (r as u32 & 1)
            })
            .collect()
    }

    #[test]
    fn transposed_bank_matches_packed_tables_on_random_walks() {
        // Mixed automata, width 6; events carry width-8 patterns so the
        // walk also exercises the bank's width fold (mask to 6 bits).
        let mut tables: Vec<PackedPht> =
            Automaton::ALL.iter().map(|&automaton| PackedPht::new(6, automaton)).collect();
        let events = random_events(8, 5000, 0x2545_f491_4f6c_dd1d);
        for mode in EVERY_MODE {
            let mut bank = TransposedPhtBank::new(&tables);
            assert_eq!(bank.members(), tables.len());
            assert_eq!(bank.history_bits(), 6);
            bank.replay(&events, mode);
            let mut reference = vec![0u64; tables.len()];
            let mut shadow: Vec<PackedPht> = tables.clone();
            for &event in &events {
                let pattern = (event >> 1) as usize & 0b11_1111;
                let taken = event & 1 != 0;
                for (member, table) in shadow.iter_mut().enumerate() {
                    reference[member] += u64::from(table.predict_update(pattern, taken) == taken);
                }
            }
            assert_eq!(bank.counts(), &reference[..], "{mode:?} counts diverged");
            for (member, table) in shadow.iter().enumerate() {
                for pattern in 0..table.len() {
                    assert_eq!(
                        bank.state(pattern, member),
                        table.state(pattern),
                        "{mode:?} member {member} pattern {pattern}"
                    );
                }
            }
        }
        // Presets survive transposition: rebuild member 0 as a preset
        // table and confirm the initial states round-trip.
        let mut preset = PatternHistoryTable::new(6, Automaton::PresetBit);
        for pattern in 0..preset.len() {
            preset.set_state(pattern, State::new(u8::from(pattern % 3 == 0)));
        }
        tables[0] = PackedPht::from_table(&preset);
        let bank = TransposedPhtBank::new(&tables);
        for pattern in 0..preset.len() {
            assert_eq!(bank.state(pattern, 0), preset.state(pattern));
        }
    }

    #[test]
    fn transposed_bank_exhaustive_transitions_match_the_automata() {
        // Every (automaton, valid state, direction) transition input,
        // stepped one event at a time through a one-member bank under
        // every kernel body.
        for automaton in Automaton::ALL {
            for state in 0..automaton.state_count() {
                let state = State::new(state);
                if !automaton.is_valid_state(state) {
                    continue;
                }
                for taken in [false, true] {
                    for mode in EVERY_MODE {
                        let mut table = PackedPht::new(1, automaton);
                        table.set_state(0, state);
                        table.set_state(1, state);
                        let mut bank = TransposedPhtBank::new(&[table.clone()]);
                        let event = u32::from(taken);
                        bank.replay(&[event], mode);
                        let predicted = table.predict_update(0, taken);
                        assert_eq!(
                            bank.state(0, 0),
                            table.state(0),
                            "{automaton} {state} taken={taken} {mode:?}: next state"
                        );
                        assert_eq!(
                            bank.counts()[0],
                            u64::from(predicted == taken),
                            "{automaton} {state} taken={taken} {mode:?}: correctness"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn transposed_bank_wide_membership_spans_words() {
        // 40 members = 3 columns: the SSE2 pair loop, the AVX2 quad loop
        // and the portable tails all run (AVX-512's own quad mid step
        // included — its 512-bit loop needs 8 columns, covered below).
        let tables: Vec<PackedPht> =
            (0..40).map(|i| PackedPht::new(5, Automaton::ALL[i % Automaton::ALL.len()])).collect();
        let events = random_events(5, 3000, 0x9e37_79b9_7f4a_7c15);
        let reference = {
            let mut bank = TransposedPhtBank::new(&tables);
            bank.replay(&events, SimdMode::Scalar);
            bank.counts().to_vec()
        };
        assert!(reference.iter().all(|&c| c > 0), "walk long enough to count");
        for mode in EVERY_MODE {
            let mut bank = TransposedPhtBank::new(&tables);
            bank.replay(&events, mode);
            assert_eq!(bank.counts(), &reference[..], "{mode:?} diverged on a 3-column bank");
        }
    }

    #[test]
    fn transposed_bank_512bit_rows_agree_across_kernels() {
        // 135 members = 9 columns: the AVX-512 8-column loop runs for
        // real (plus its scalar tail), under every kernel body.
        let tables: Vec<PackedPht> =
            (0..135).map(|i| PackedPht::new(4, Automaton::ALL[i % Automaton::ALL.len()])).collect();
        let events = random_events(4, 2000, 0x0bad_5eed_0bad_5eed);
        let reference = {
            let mut bank = TransposedPhtBank::new(&tables);
            bank.replay(&events, SimdMode::Scalar);
            bank.counts().to_vec()
        };
        assert!(reference.iter().all(|&c| c > 0), "walk long enough to count");
        for mode in EVERY_MODE {
            let mut bank = TransposedPhtBank::new(&tables);
            bank.replay(&events, mode);
            assert_eq!(bank.counts(), &reference[..], "{mode:?} diverged on a 9-column bank");
        }
    }

    #[test]
    fn avx512_agrees_with_scalar_on_all_256_lane_inputs() {
        // Per automaton, drive the real 512-bit body (8-column bank =
        // 128 members) from every one of the 256 initial 4-lane state
        // bytes — each byte's four 2-bit fields seed adjacent lanes, so
        // every adjacent-state combination crosses every nibble boundary
        // — and require bit-identity with the scalar reference. Skips
        // (trivially passes) where the host lacks AVX-512: the forced
        // mode then resolves to SWAR, which the other tests pin.
        if SimdMode::Avx512.resolved_name() != "avx512" {
            eprintln!("skipping: host lacks avx512f/avx512bw");
            return;
        }
        for automaton in Automaton::ALL {
            for input in 0..=255u8 {
                let tables: Vec<PackedPht> = (0..128)
                    .map(|member: usize| {
                        let mut table = PackedPht::new(2, automaton);
                        let field = State::new((input >> ((member % 4) * 2)) & 0b11);
                        let state = if automaton.is_valid_state(field) {
                            field
                        } else {
                            State::new(field.value() & 1)
                        };
                        for pattern in 0..table.len() {
                            table.set_state(pattern, state);
                        }
                        table
                    })
                    .collect();
                // Two events per pattern/direction pair: every seeded
                // state sees both directions and one follow-up step.
                let events: Vec<u32> =
                    (0..16u32).map(|e| ((e >> 1) & 0b11) << 1 | (e & 1)).collect();
                let mut vector = TransposedPhtBank::new(&tables);
                vector.replay(&events, SimdMode::Avx512);
                let mut scalar = TransposedPhtBank::new(&tables);
                scalar.replay(&events, SimdMode::Scalar);
                assert_eq!(
                    vector.counts(),
                    scalar.counts(),
                    "{automaton} input {input:#04x}: counts diverged"
                );
                for member in 0..tables.len() {
                    for pattern in 0..4 {
                        assert_eq!(
                            vector.state(pattern, member),
                            scalar.state(pattern, member),
                            "{automaton} input {input:#04x} member {member} pattern {pattern}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn transposed_lane_bank_matches_per_lane_packed_tables() {
        let templates: Vec<PackedPht> =
            Automaton::ALL.iter().map(|&automaton| PackedPht::new(4, automaton)).collect();
        let mut next = xorshift(0x0123_4567_89ab_cdef);
        let mut events = Vec::new();
        let mut lanes = Vec::new();
        for _ in 0..4000 {
            let r = next();
            // Width-6 patterns against width-4 banks: fold in play.
            events.push(((r as u32 >> 8) & 0b11_1111) << 1 | (r as u32 & 1));
            lanes.push((r >> 40) as u32 % 7);
        }
        let mut reference = vec![0u64; templates.len()];
        let mut shadow: Vec<Vec<PackedPht>> = Vec::new();
        for (&event, &lane) in events.iter().zip(&lanes) {
            let lane = lane as usize;
            if lane >= shadow.len() {
                shadow.resize_with(lane + 1, || templates.clone());
            }
            let pattern = (event >> 1) as usize & 0b1111;
            let taken = event & 1 != 0;
            for (member, table) in shadow[lane].iter_mut().enumerate() {
                reference[member] += u64::from(table.predict_update(pattern, taken) == taken);
            }
        }
        for mode in EVERY_MODE {
            let mut bank = TransposedLanePhtBank::new(&templates);
            assert_eq!(bank.members(), templates.len());
            assert_eq!(bank.history_bits(), 4);
            bank.replay(&events, &lanes, mode);
            assert_eq!(bank.counts(), &reference[..], "{mode:?} lane counts diverged");
        }
    }

    #[test]
    fn transposed_replay_accumulates_across_blocks() {
        // Splitting the event stream into arbitrary replay() calls must
        // not change the result (the engine feeds blocks).
        let tables: Vec<PackedPht> =
            Automaton::FIGURE5.iter().map(|&automaton| PackedPht::new(6, automaton)).collect();
        let events = random_events(6, 2048, 0xdead_beef_cafe_f00d);
        let mut whole = TransposedPhtBank::new(&tables);
        whole.replay(&events, SimdMode::Swar);
        let mut split = TransposedPhtBank::new(&tables);
        for block in events.chunks(97) {
            split.replay(block, SimdMode::Swar);
        }
        assert_eq!(whole.counts(), split.counts());
    }

    #[test]
    #[should_panic(expected = "share one table geometry")]
    fn transposed_bank_rejects_mixed_geometries() {
        let _ = TransposedPhtBank::new(&[
            PackedPht::new(6, Automaton::A2),
            PackedPht::new(8, Automaton::A2),
        ]);
    }
}
