//! The pattern history table (PHT) of the paper's Section 2.1.

use crate::automaton::{Automaton, State};

/// A pattern history table: `2^k` automaton states indexed by the content
/// of a k-bit history register.
///
/// "For each of these 2^k patterns, there is a corresponding entry in the
/// pattern history table which contains branch results for the last s times
/// the preceding k branches were represented by that specific content of
/// the history register."
///
/// All entries are initialized per Section 4.2 (strongly-taken for the
/// four-state automata, taken for Last-Time); the paper notes the PHT is
/// *not* reinitialized on context switches.
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::pht::PatternHistoryTable;
///
/// let mut pht = PatternHistoryTable::new(4, Automaton::A2);
/// assert_eq!(pht.len(), 16);
/// assert!(pht.predict(0b1010)); // initialized strongly taken
/// pht.update(0b1010, false);
/// pht.update(0b1010, false);
/// assert!(!pht.predict(0b1010)); // learned not-taken for this pattern
/// assert!(pht.predict(0b0101)); // other patterns unaffected
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHistoryTable {
    automaton: Automaton,
    history_bits: u32,
    states: Vec<State>,
}

impl PatternHistoryTable {
    /// Creates a table for `history_bits`-bit patterns (so `2^history_bits`
    /// entries), every entry at the automaton's initial state.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or exceeds
    /// [`crate::history::MAX_HISTORY_BITS`].
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton) -> Self {
        assert!(
            (1..=crate::history::MAX_HISTORY_BITS).contains(&history_bits),
            "history bits {history_bits} out of range"
        );
        let entries = 1usize << history_bits;
        PatternHistoryTable {
            automaton,
            history_bits,
            states: vec![automaton.initial_state(); entries],
        }
    }

    /// The automaton stored in each entry.
    #[must_use]
    pub fn automaton(&self) -> Automaton {
        self.automaton
    }

    /// Number of entries (`2^k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`; a table has at least two entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The history-register length `k` this table is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Predicts the branch direction for `pattern` (Equation 1).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn predict(&self, pattern: usize) -> bool {
        self.automaton.predict(self.states[pattern])
    }

    /// Applies the transition function δ to the entry for `pattern`
    /// (Equation 2).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    pub fn update(&mut self, pattern: usize, taken: bool) {
        let state = self.states[pattern];
        self.states[pattern] = self.automaton.update(state, taken);
    }

    /// Fused [`PatternHistoryTable::predict`] +
    /// [`PatternHistoryTable::update`]: one table access instead of two.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[inline]
    pub fn predict_update(&mut self, pattern: usize, taken: bool) -> bool {
        let state = self.states[pattern];
        self.states[pattern] = self.automaton.update(state, taken);
        self.automaton.predict(state)
    }

    /// The current state of the entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn state(&self, pattern: usize) -> State {
        self.states[pattern]
    }

    /// Overwrites the state of the entry for `pattern` — used by the
    /// Static Training schemes to preset prediction bits from profiling.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range or `state` is invalid for the
    /// table's automaton.
    pub fn set_state(&mut self, pattern: usize, state: State) {
        assert!(
            self.automaton.is_valid_state(state),
            "state {state} invalid for {}",
            self.automaton
        );
        self.states[pattern] = state;
    }

    /// Resets every entry to the automaton's initial state.
    ///
    /// The paper's context-switch model deliberately does *not* do this
    /// ("the pattern history table of the saved process is more likely to
    /// be similar to the current process's"); it exists for experiment
    /// ablations and for starting fresh runs.
    pub fn reinitialize(&mut self) {
        self.states.fill(self.automaton.initial_state());
    }
}

/// A bit-packed pattern history table for the replay path: 2-bit automaton
/// states, 32 per `u64` word, stepped through a per-automaton 256-entry
/// lookup table fusing δ and λ ([`Automaton::packed_lut`]).
///
/// Behaviorally identical to [`PatternHistoryTable`] (pinned by the
/// round-trip tests below and by `tests/differential.rs`), but the whole
/// transition is branchless: read two bits, index the LUT with
/// `(state << 1) | taken`, write two bits back, report bit 2. A `2^12`
/// table is 1 KiB of words — L1-resident for the entire replay.
#[derive(Debug, Clone)]
pub struct PackedPht {
    automaton: Automaton,
    history_bits: u32,
    lut: [u8; 256],
    words: Vec<u64>,
}

impl PackedPht {
    /// Creates a packed table equivalent to
    /// [`PatternHistoryTable::new`]: every entry at the automaton's
    /// initial state.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or exceeds
    /// [`crate::history::MAX_HISTORY_BITS`].
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton) -> Self {
        assert!(
            (1..=crate::history::MAX_HISTORY_BITS).contains(&history_bits),
            "history bits {history_bits} out of range"
        );
        let entries = 1usize << history_bits;
        let initial = u64::from(automaton.initial_state().value());
        let mut word = 0u64;
        for slot in 0..32 {
            word |= initial << (slot * 2);
        }
        PackedPht {
            automaton,
            history_bits,
            lut: automaton.packed_lut(),
            words: vec![word; entries.div_ceil(32)],
        }
    }

    /// Packs an existing table, preserving every entry's current state —
    /// the path by which the Static Training preset tables (GSg/PSg) and
    /// any pre-warmed table enter the replay loop.
    #[must_use]
    pub fn from_table(table: &PatternHistoryTable) -> Self {
        let mut packed = PackedPht::new(table.history_bits(), table.automaton());
        for pattern in 0..table.len() {
            packed.set_state(pattern, table.state(pattern));
        }
        packed
    }

    /// The automaton stored in each entry.
    #[must_use]
    pub fn automaton(&self) -> Automaton {
        self.automaton
    }

    /// The history-register length `k` this table is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of entries (`2^k`).
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.history_bits
    }

    /// Always `false`; a table has at least two entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current state of the entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn state(&self, pattern: usize) -> State {
        assert!(pattern < self.len(), "pattern {pattern} out of range");
        let shift = (pattern & 31) * 2;
        State::new(((self.words[pattern >> 5] >> shift) & 0b11) as u8)
    }

    /// Overwrites the state of the entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range or `state` is invalid for the
    /// table's automaton.
    pub fn set_state(&mut self, pattern: usize, state: State) {
        assert!(pattern < self.len(), "pattern {pattern} out of range");
        assert!(
            self.automaton.is_valid_state(state),
            "state {state} invalid for {}",
            self.automaton
        );
        let shift = (pattern & 31) * 2;
        let word = &mut self.words[pattern >> 5];
        *word = (*word & !(0b11 << shift)) | (u64::from(state.value()) << shift);
    }

    /// Fused predict + update, identical in contract to
    /// [`PatternHistoryTable::predict_update`]: the returned prediction is
    /// λ of the entry's state *before* the transition.
    ///
    /// This is the replay inner loop, so the word index is wrapped by
    /// masking rather than bounds-checked — `x & (len - 1)` is always in
    /// range, which lets the check compile away. In-range patterns (the
    /// only ones a stream derived at this table's width can carry, and
    /// debug-asserted here) are unaffected.
    #[inline]
    pub fn predict_update(&mut self, pattern: usize, taken: bool) -> bool {
        debug_assert!(pattern < self.len(), "pattern {pattern} out of range");
        let shift = (pattern & 31) * 2;
        let index = (pattern >> 5) & (self.words.len() - 1);
        let word = &mut self.words[index];
        let state = ((*word >> shift) & 0b11) as u8;
        let entry = self.lut[usize::from((state << 1) | u8::from(taken))];
        *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
        entry & 0b100 != 0
    }
}

/// A bank of equally-sized [`PackedPht`]s interleaved into one
/// allocation: word `w` of member `m` lives at index `w * members + m`,
/// so every member's entry for one pattern sits on the same (or the
/// next) cache line.
///
/// This is how a replay batch walks many second levels over one shared
/// pattern stream. Separately-allocated tables make the batched walk
/// hostage to the allocator: members hit identical offsets in distinct
/// buffers back to back, and buffers landing 4 KiB-congruent (common
/// once the heap has churned) turn every member's load into a false
/// store-forwarding conflict with the previous member's store.
/// Interleaving makes the batch's per-event traffic contiguous instead.
///
/// Each member keeps its own automaton transition word, so a bank can
/// mix automata — the automaton-ablation sweep is exactly that. The
/// transition word compresses the member's [`Automaton::packed_lut`]
/// into a `u32` (8 live `(state, taken)` inputs × 4-bit entries), so
/// stepping a member shifts a register instead of loading from a
/// 256-byte table — one dependent load per member-step instead of two.
/// Final member states stay in the bank (replay only needs the
/// prediction counts), so there is no write-back to the source tables.
#[derive(Debug, Clone)]
pub struct PackedPhtBank {
    history_bits: u32,
    members: usize,
    word_mask: usize,
    luts: Vec<u32>,
    words: Vec<u64>,
}

impl PackedPhtBank {
    /// Interleaves `tables` into a bank.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or its members disagree on
    /// `history_bits`.
    #[must_use]
    pub fn new(tables: &[PackedPht]) -> Self {
        let first = tables.first().expect("a bank needs at least one member");
        assert!(
            tables.iter().all(|t| t.history_bits == first.history_bits),
            "bank members must share one table geometry"
        );
        let members = tables.len();
        let word_count = first.words.len();
        let mut words = vec![0u64; word_count * members];
        for (member, table) in tables.iter().enumerate() {
            for (index, &word) in table.words.iter().enumerate() {
                words[index * members + member] = word;
            }
        }
        let luts = tables
            .iter()
            .map(|table| {
                (0..8).fold(0u32, |flags, index| flags | u32::from(table.lut[index]) << (index * 4))
            })
            .collect();
        PackedPhtBank {
            history_bits: first.history_bits,
            members,
            word_mask: word_count - 1,
            luts,
            words,
        }
    }

    /// The history-register length `k` every member is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Number of member tables.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// [`PackedPht::predict_update`] on every member's entry for
    /// `pattern`, calling `sink(member, predicted)` in member order.
    #[inline]
    pub fn predict_update_each(
        &mut self,
        pattern: usize,
        taken: bool,
        mut sink: impl FnMut(usize, bool),
    ) {
        debug_assert!(pattern >> 5 <= self.word_mask, "pattern {pattern} out of range");
        let shift = (pattern & 31) * 2;
        let base = ((pattern >> 5) & self.word_mask) * self.members;
        let row = &mut self.words[base..base + self.members];
        for (member, (word, &flags)) in row.iter_mut().zip(&self.luts).enumerate() {
            let state = ((*word >> shift) & 0b11) as u32;
            let entry = (flags >> (((state << 1) | u32::from(taken)) * 4)) & 0b111;
            *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
            sink(member, entry & 0b100 != 0);
        }
    }

    /// [`PackedPhtBank::predict_update_each`] specialized for counting:
    /// adds 1 to `corrects[member]` for every member whose prediction
    /// matches `taken`. The replay inner loop — everything (row, LUTs,
    /// counters) advances in one zip with no per-member indexing.
    ///
    /// # Panics
    ///
    /// Panics if `corrects` is shorter than [`PackedPhtBank::members`].
    #[inline]
    pub fn predict_update_count(&mut self, pattern: usize, taken: bool, corrects: &mut [u64]) {
        debug_assert!(pattern >> 5 <= self.word_mask, "pattern {pattern} out of range");
        assert!(corrects.len() >= self.members, "one counter per member");
        let shift = (pattern & 31) * 2;
        let base = ((pattern >> 5) & self.word_mask) * self.members;
        let row = &mut self.words[base..base + self.members];
        for ((word, &flags), correct) in row.iter_mut().zip(&self.luts).zip(corrects) {
            let state = ((*word >> shift) & 0b11) as u32;
            let entry = (flags >> (((state << 1) | u32::from(taken)) * 4)) & 0b111;
            *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
            *correct += u64::from((entry & 0b100 != 0) == taken);
        }
    }

    /// [`PackedPhtBank::predict_update_count`] with the member count as a
    /// compile-time constant: the member loop fully unrolls and the
    /// counters live in a fixed array the optimizer can keep in
    /// registers. Callers dispatch on [`PackedPhtBank::members`] and fall
    /// back to the dynamic variant for sizes they didn't specialize.
    ///
    /// # Panics
    ///
    /// Panics if `N` differs from [`PackedPhtBank::members`].
    #[inline]
    pub fn predict_update_count_fixed<const N: usize>(
        &mut self,
        pattern: usize,
        taken: bool,
        corrects: &mut [u64; N],
    ) {
        debug_assert!(pattern >> 5 <= self.word_mask, "pattern {pattern} out of range");
        assert_eq!(N, self.members, "bank walked at the wrong width");
        let shift = (pattern & 31) * 2;
        let base = ((pattern >> 5) & self.word_mask) * N;
        let row: &mut [u64; N] =
            (&mut self.words[base..base + N]).try_into().expect("row is N words");
        let luts: &[u32; N] = self.luts[..N].try_into().expect("one lut per member");
        for member in 0..N {
            let word = &mut row[member];
            let state = ((*word >> shift) & 0b11) as u32;
            let entry = (luts[member] >> (((state << 1) | u32::from(taken)) * 4)) & 0b111;
            *word = (*word & !(0b11 << shift)) | (u64::from(entry & 0b11) << shift);
            corrects[member] += u64::from((entry & 0b100 != 0) == taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_to_biased_taken() {
        for automaton in Automaton::ALL {
            let pht = PatternHistoryTable::new(3, automaton);
            for pattern in 0..pht.len() {
                assert!(pht.predict(pattern), "{automaton} pattern {pattern}");
            }
        }
    }

    #[test]
    fn entries_are_independent() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.update(0b01, false);
        assert!(!pht.predict(0b01));
        assert!(pht.predict(0b00));
        assert!(pht.predict(0b10));
        assert!(pht.predict(0b11));
    }

    #[test]
    fn len_is_power_of_two() {
        assert_eq!(PatternHistoryTable::new(6, Automaton::A2).len(), 64);
        assert_eq!(PatternHistoryTable::new(18, Automaton::A2).len(), 262_144);
    }

    #[test]
    fn update_follows_automaton() {
        let mut pht = PatternHistoryTable::new(2, Automaton::A2);
        pht.update(1, false);
        assert_eq!(pht.state(1), State::new(2));
        pht.update(1, false);
        assert_eq!(pht.state(1), State::new(1));
        assert!(!pht.predict(1));
    }

    #[test]
    fn set_state_validates() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.set_state(0, State::new(0));
        assert!(!pht.predict(0));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn set_state_rejects_out_of_range_state() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.set_state(0, State::new(2));
    }

    #[test]
    fn reinitialize_restores_initial() {
        let mut pht = PatternHistoryTable::new(3, Automaton::A2);
        for pattern in 0..pht.len() {
            pht.update(pattern, false);
            pht.update(pattern, false);
            pht.update(pattern, false);
        }
        assert!(!pht.predict(0));
        pht.reinitialize();
        for pattern in 0..pht.len() {
            assert!(pht.predict(pattern));
            assert_eq!(pht.state(pattern), Automaton::A2.initial_state());
        }
    }

    #[test]
    fn preset_table_ignores_updates() {
        let mut pht = PatternHistoryTable::new(2, Automaton::PresetBit);
        pht.set_state(2, State::new(0));
        pht.update(2, true);
        pht.update(2, true);
        assert!(!pht.predict(2), "preset bit must not learn");
    }

    #[test]
    fn packed_pht_matches_unpacked_on_random_walks() {
        let mut rng = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for automaton in Automaton::ALL {
            let mut pht = PatternHistoryTable::new(6, automaton);
            let mut packed = PackedPht::from_table(&pht);
            assert_eq!(packed.len(), pht.len());
            for _ in 0..4000 {
                let r = next();
                let pattern = (r as usize >> 8) & (pht.len() - 1);
                let taken = r & 1 != 0;
                assert_eq!(
                    packed.predict_update(pattern, taken),
                    pht.predict_update(pattern, taken),
                    "{automaton} pattern {pattern} taken {taken}"
                );
            }
            for pattern in 0..pht.len() {
                assert_eq!(packed.state(pattern), pht.state(pattern), "{automaton} {pattern}");
            }
        }
    }

    #[test]
    fn bank_matches_individual_packed_tables() {
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        // A mixed-automata bank, as the ablation sweeps build.
        let mut tables: Vec<PackedPht> =
            Automaton::ALL.iter().map(|&automaton| PackedPht::new(7, automaton)).collect();
        let mut bank = PackedPhtBank::new(&tables);
        assert_eq!(bank.members(), tables.len());
        assert_eq!(bank.history_bits(), 7);
        for _ in 0..4000 {
            let r = next();
            let pattern = (r as usize >> 8) & (tables[0].len() - 1);
            let taken = r & 1 != 0;
            let mut banked = Vec::new();
            bank.predict_update_each(pattern, taken, |member, predicted| {
                banked.push((member, predicted));
            });
            for (member, table) in tables.iter_mut().enumerate() {
                assert_eq!(
                    banked[member],
                    (member, table.predict_update(pattern, taken)),
                    "member {member} diverged at pattern {pattern}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "share one table geometry")]
    fn bank_rejects_mixed_geometries() {
        let _ = PackedPhtBank::new(&[
            PackedPht::new(6, Automaton::A2),
            PackedPht::new(8, Automaton::A2),
        ]);
    }

    #[test]
    fn packed_pht_round_trips_preset_states() {
        // A PSg-style preset table: mixed 0/1 states under PresetBit.
        let mut pht = PatternHistoryTable::new(4, Automaton::PresetBit);
        for pattern in 0..pht.len() {
            pht.set_state(pattern, State::new(u8::from(pattern % 3 == 0)));
        }
        let mut packed = PackedPht::from_table(&pht);
        for pattern in 0..pht.len() {
            assert_eq!(packed.state(pattern), pht.state(pattern));
            // Updates never move a preset bit.
            assert_eq!(packed.predict_update(pattern, true), pht.predict_update(pattern, true));
            assert_eq!(packed.state(pattern), pht.state(pattern));
        }
    }

    #[test]
    fn packed_pht_word_boundaries() {
        // Entries 31/32/33 straddle the first word boundary.
        let mut packed = PackedPht::new(6, Automaton::A2);
        packed.predict_update(31, false);
        packed.predict_update(32, false);
        assert_eq!(packed.state(31), State::new(2));
        assert_eq!(packed.state(32), State::new(2));
        assert_eq!(packed.state(33), State::new(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn packed_pht_state_rejects_out_of_range_pattern() {
        let packed = PackedPht::new(2, Automaton::A2);
        let _ = packed.state(4);
    }
}
