//! The pattern history table (PHT) of the paper's Section 2.1.

use crate::automaton::{Automaton, State};

/// A pattern history table: `2^k` automaton states indexed by the content
/// of a k-bit history register.
///
/// "For each of these 2^k patterns, there is a corresponding entry in the
/// pattern history table which contains branch results for the last s times
/// the preceding k branches were represented by that specific content of
/// the history register."
///
/// All entries are initialized per Section 4.2 (strongly-taken for the
/// four-state automata, taken for Last-Time); the paper notes the PHT is
/// *not* reinitialized on context switches.
///
/// # Example
///
/// ```
/// use tlabp_core::automaton::Automaton;
/// use tlabp_core::pht::PatternHistoryTable;
///
/// let mut pht = PatternHistoryTable::new(4, Automaton::A2);
/// assert_eq!(pht.len(), 16);
/// assert!(pht.predict(0b1010)); // initialized strongly taken
/// pht.update(0b1010, false);
/// pht.update(0b1010, false);
/// assert!(!pht.predict(0b1010)); // learned not-taken for this pattern
/// assert!(pht.predict(0b0101)); // other patterns unaffected
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHistoryTable {
    automaton: Automaton,
    history_bits: u32,
    states: Vec<State>,
}

impl PatternHistoryTable {
    /// Creates a table for `history_bits`-bit patterns (so `2^history_bits`
    /// entries), every entry at the automaton's initial state.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is zero or exceeds
    /// [`crate::history::MAX_HISTORY_BITS`].
    #[must_use]
    pub fn new(history_bits: u32, automaton: Automaton) -> Self {
        assert!(
            (1..=crate::history::MAX_HISTORY_BITS).contains(&history_bits),
            "history bits {history_bits} out of range"
        );
        let entries = 1usize << history_bits;
        PatternHistoryTable {
            automaton,
            history_bits,
            states: vec![automaton.initial_state(); entries],
        }
    }

    /// The automaton stored in each entry.
    #[must_use]
    pub fn automaton(&self) -> Automaton {
        self.automaton
    }

    /// Number of entries (`2^k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`; a table has at least two entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The history-register length `k` this table is sized for.
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Predicts the branch direction for `pattern` (Equation 1).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn predict(&self, pattern: usize) -> bool {
        self.automaton.predict(self.states[pattern])
    }

    /// Applies the transition function δ to the entry for `pattern`
    /// (Equation 2).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    pub fn update(&mut self, pattern: usize, taken: bool) {
        let state = self.states[pattern];
        self.states[pattern] = self.automaton.update(state, taken);
    }

    /// Fused [`PatternHistoryTable::predict`] +
    /// [`PatternHistoryTable::update`]: one table access instead of two.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[inline]
    pub fn predict_update(&mut self, pattern: usize, taken: bool) -> bool {
        let state = self.states[pattern];
        self.states[pattern] = self.automaton.update(state, taken);
        self.automaton.predict(state)
    }

    /// The current state of the entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range.
    #[must_use]
    pub fn state(&self, pattern: usize) -> State {
        self.states[pattern]
    }

    /// Overwrites the state of the entry for `pattern` — used by the
    /// Static Training schemes to preset prediction bits from profiling.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is out of range or `state` is invalid for the
    /// table's automaton.
    pub fn set_state(&mut self, pattern: usize, state: State) {
        assert!(
            self.automaton.is_valid_state(state),
            "state {state} invalid for {}",
            self.automaton
        );
        self.states[pattern] = state;
    }

    /// Resets every entry to the automaton's initial state.
    ///
    /// The paper's context-switch model deliberately does *not* do this
    /// ("the pattern history table of the saved process is more likely to
    /// be similar to the current process's"); it exists for experiment
    /// ablations and for starting fresh runs.
    pub fn reinitialize(&mut self) {
        self.states.fill(self.automaton.initial_state());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_to_biased_taken() {
        for automaton in Automaton::ALL {
            let pht = PatternHistoryTable::new(3, automaton);
            for pattern in 0..pht.len() {
                assert!(pht.predict(pattern), "{automaton} pattern {pattern}");
            }
        }
    }

    #[test]
    fn entries_are_independent() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.update(0b01, false);
        assert!(!pht.predict(0b01));
        assert!(pht.predict(0b00));
        assert!(pht.predict(0b10));
        assert!(pht.predict(0b11));
    }

    #[test]
    fn len_is_power_of_two() {
        assert_eq!(PatternHistoryTable::new(6, Automaton::A2).len(), 64);
        assert_eq!(PatternHistoryTable::new(18, Automaton::A2).len(), 262_144);
    }

    #[test]
    fn update_follows_automaton() {
        let mut pht = PatternHistoryTable::new(2, Automaton::A2);
        pht.update(1, false);
        assert_eq!(pht.state(1), State::new(2));
        pht.update(1, false);
        assert_eq!(pht.state(1), State::new(1));
        assert!(!pht.predict(1));
    }

    #[test]
    fn set_state_validates() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.set_state(0, State::new(0));
        assert!(!pht.predict(0));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn set_state_rejects_out_of_range_state() {
        let mut pht = PatternHistoryTable::new(2, Automaton::LastTime);
        pht.set_state(0, State::new(2));
    }

    #[test]
    fn reinitialize_restores_initial() {
        let mut pht = PatternHistoryTable::new(3, Automaton::A2);
        for pattern in 0..pht.len() {
            pht.update(pattern, false);
            pht.update(pattern, false);
            pht.update(pattern, false);
        }
        assert!(!pht.predict(0));
        pht.reinitialize();
        for pattern in 0..pht.len() {
            assert!(pht.predict(pattern));
            assert_eq!(pht.state(pattern), Automaton::A2.initial_state());
        }
    }

    #[test]
    fn preset_table_ignores_updates() {
        let mut pht = PatternHistoryTable::new(2, Automaton::PresetBit);
        pht.set_state(2, State::new(0));
        pht.update(2, true);
        pht.update(2, true);
        assert!(!pht.predict(2), "preset bit must not learn");
    }
}
