//! The predictor naming convention of the paper's Table 3, plus a factory
//! that instantiates any named configuration.
//!
//! The paper identifies each simulated predictor as
//! `Scheme(History(Size, Associativity, Entry_Content),
//! Pattern_Table_Set_Size × Pattern(Size, Entry_Content), Context_Switch)`,
//! e.g. `PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)`. [`SchemeConfig`]
//! round-trips this notation through [`std::fmt::Display`] and
//! [`std::str::FromStr`] and builds the corresponding predictor.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use tlabp_trace::Trace;

use crate::any::AnyPredictor;
use crate::automaton::Automaton;
use crate::bht::BhtConfig;
use crate::cost::{BhtGeometry, CostModel};
use crate::predictor::BranchPredictor;
use crate::schemes::{
    train_global, train_per_address, AlwaysTaken, Btb, Btfn, Gag, Gsg, Pag, Pap, Profiling, Psg,
};

/// Which prediction scheme a configuration names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Global two-level adaptive (global HR, global PHT).
    Gag,
    /// Per-address two-level adaptive with a global PHT.
    Pag,
    /// Per-address two-level adaptive with per-address PHTs.
    Pap,
    /// Global Static Training (preset global PHT).
    Gsg,
    /// Per-address Static Training (preset global PHT) — Lee & A. Smith.
    Psg,
    /// Branch target buffer design — J. Smith.
    Btb,
    /// Static: predict taken always.
    AlwaysTaken,
    /// Static: backward taken, forward not taken.
    Btfn,
    /// Static: per-branch majority from a profiling run.
    Profiling,
}

impl SchemeKind {
    /// The scheme mnemonic used in configuration strings.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            SchemeKind::Gag => "GAg",
            SchemeKind::Pag => "PAg",
            SchemeKind::Pap => "PAp",
            SchemeKind::Gsg => "GSg",
            SchemeKind::Psg => "PSg",
            SchemeKind::Btb => "BTB",
            SchemeKind::AlwaysTaken => "AlwaysTaken",
            SchemeKind::Btfn => "BTFN",
            SchemeKind::Profiling => "Profiling",
        }
    }

    /// Whether this scheme requires a training (profiling) trace before it
    /// can predict.
    #[must_use]
    pub fn needs_training(self) -> bool {
        matches!(self, SchemeKind::Gsg | SchemeKind::Psg | SchemeKind::Profiling)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A fully specified predictor configuration in the paper's Table 3
/// vocabulary.
///
/// # Example
///
/// ```
/// use tlabp_core::config::SchemeConfig;
///
/// let config = SchemeConfig::pag(12).with_context_switch(true);
/// assert_eq!(config.to_string(), "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)");
/// let parsed: SchemeConfig = config.to_string().parse()?;
/// assert_eq!(parsed, config);
/// # Ok::<(), tlabp_core::config::ParseSchemeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    kind: SchemeKind,
    history_bits: u32,
    bht: Option<BhtConfig>,
    automaton: Automaton,
    context_switch: bool,
}

impl SchemeConfig {
    /// GAg with an A2 pattern table.
    #[must_use]
    pub fn gag(history_bits: u32) -> Self {
        SchemeConfig {
            kind: SchemeKind::Gag,
            history_bits,
            bht: None,
            automaton: Automaton::A2,
            context_switch: false,
        }
    }

    /// PAg with the paper's standard 4-way 512-entry BHT and A2.
    #[must_use]
    pub fn pag(history_bits: u32) -> Self {
        SchemeConfig {
            kind: SchemeKind::Pag,
            history_bits,
            bht: Some(BhtConfig::PAPER_DEFAULT),
            automaton: Automaton::A2,
            context_switch: false,
        }
    }

    /// PAp with the paper's standard BHT and A2.
    #[must_use]
    pub fn pap(history_bits: u32) -> Self {
        SchemeConfig { bht: Some(BhtConfig::PAPER_DEFAULT), ..Self::gag(history_bits) }
            .with_kind(SchemeKind::Pap)
    }

    /// GSg (global Static Training).
    #[must_use]
    pub fn gsg(history_bits: u32) -> Self {
        SchemeConfig {
            kind: SchemeKind::Gsg,
            history_bits,
            bht: None,
            automaton: Automaton::PresetBit,
            context_switch: false,
        }
    }

    /// PSg (per-address Static Training) with the standard BHT.
    #[must_use]
    pub fn psg(history_bits: u32) -> Self {
        SchemeConfig {
            kind: SchemeKind::Psg,
            history_bits,
            bht: Some(BhtConfig::PAPER_DEFAULT),
            automaton: Automaton::PresetBit,
            context_switch: false,
        }
    }

    /// BTB with the standard 4-way 512-entry table and the given per-entry
    /// automaton.
    #[must_use]
    pub fn btb(automaton: Automaton) -> Self {
        SchemeConfig {
            kind: SchemeKind::Btb,
            history_bits: 0,
            bht: Some(BhtConfig::PAPER_DEFAULT),
            automaton,
            context_switch: false,
        }
    }

    /// The Always-Taken static scheme.
    #[must_use]
    pub fn always_taken() -> Self {
        SchemeConfig {
            kind: SchemeKind::AlwaysTaken,
            history_bits: 0,
            bht: None,
            automaton: Automaton::PresetBit,
            context_switch: false,
        }
    }

    /// The backward-taken/forward-not-taken static scheme.
    #[must_use]
    pub fn btfn() -> Self {
        SchemeConfig { kind: SchemeKind::Btfn, ..Self::always_taken() }
    }

    /// The profiling static scheme.
    #[must_use]
    pub fn profiling() -> Self {
        SchemeConfig { kind: SchemeKind::Profiling, ..Self::always_taken() }
    }

    fn with_kind(mut self, kind: SchemeKind) -> Self {
        self.kind = kind;
        self
    }

    /// Replaces the BHT implementation (PAg/PAp/PSg/BTB).
    #[must_use]
    pub fn with_bht(mut self, bht: BhtConfig) -> Self {
        self.bht = Some(bht);
        self
    }

    /// Replaces the pattern automaton.
    #[must_use]
    pub fn with_automaton(mut self, automaton: Automaton) -> Self {
        self.automaton = automaton;
        self
    }

    /// Enables or disables context-switch simulation (the `c` flag).
    #[must_use]
    pub fn with_context_switch(mut self, enabled: bool) -> Self {
        self.context_switch = enabled;
        self
    }

    /// The scheme kind.
    #[must_use]
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The history register length `k` (0 for history-less schemes).
    #[must_use]
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// The BHT implementation, if the scheme uses one.
    #[must_use]
    pub fn bht(&self) -> Option<BhtConfig> {
        self.bht
    }

    /// The pattern (or BTB entry) automaton.
    #[must_use]
    pub fn automaton(&self) -> Automaton {
        self.automaton
    }

    /// Whether context switches are simulated for this configuration.
    #[must_use]
    pub fn context_switch(&self) -> bool {
        self.context_switch
    }

    /// Whether [`SchemeConfig::build`] would fail for lack of a training
    /// trace.
    #[must_use]
    pub fn needs_training(&self) -> bool {
        self.kind.needs_training()
    }

    /// Builds the predictor for schemes that need no training run.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NeedsTraining`] for GSg, PSg and Profiling;
    /// use [`SchemeConfig::build_trained`] for those.
    pub fn build(&self) -> Result<Box<dyn BranchPredictor>, BuildError> {
        if self.needs_training() {
            return Err(BuildError::NeedsTraining { config: self.to_string() });
        }
        Ok(match self.kind {
            SchemeKind::Gag => Box::new(Gag::new(self.history_bits, self.automaton)),
            SchemeKind::Pag => Box::new(Pag::new(
                self.history_bits,
                self.bht.unwrap_or(BhtConfig::PAPER_DEFAULT),
                self.automaton,
            )),
            SchemeKind::Pap => Box::new(Pap::new(
                self.history_bits,
                self.bht.unwrap_or(BhtConfig::PAPER_DEFAULT),
                self.automaton,
            )),
            SchemeKind::Btb => {
                let (entries, ways) = match self.bht {
                    Some(BhtConfig::Cache { entries, ways }) => (entries, ways),
                    _ => (512, 4),
                };
                Box::new(Btb::new(entries, ways, self.automaton))
            }
            SchemeKind::AlwaysTaken => Box::new(AlwaysTaken::new()),
            SchemeKind::Btfn => Box::new(Btfn::new()),
            SchemeKind::Gsg | SchemeKind::Psg | SchemeKind::Profiling => {
                unreachable!("training schemes handled above")
            }
        })
    }

    /// Builds the predictor, running the profiling pass on `training` when
    /// the scheme requires it (adaptive schemes ignore `training`).
    #[must_use]
    pub fn build_trained(&self, training: &Trace) -> Box<dyn BranchPredictor> {
        match self.kind {
            SchemeKind::Gsg => Box::new(Gsg::new(&train_global(training, self.history_bits))),
            SchemeKind::Psg => Box::new(Psg::new(
                &train_per_address(training, self.history_bits),
                self.bht.unwrap_or(BhtConfig::PAPER_DEFAULT),
            )),
            SchemeKind::Profiling => Box::new(Profiling::train(training)),
            _ => self.build().expect("non-training scheme builds without a trace"),
        }
    }

    /// Builds the same predictor as [`SchemeConfig::build`] wrapped in the
    /// statically dispatched [`AnyPredictor`] enum, for monomorphized
    /// simulation.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NeedsTraining`] for GSg, PSg and Profiling;
    /// use [`SchemeConfig::build_any_trained`] for those.
    pub fn build_any(&self) -> Result<AnyPredictor, BuildError> {
        if self.needs_training() {
            return Err(BuildError::NeedsTraining { config: self.to_string() });
        }
        Ok(match self.kind {
            SchemeKind::Gag => AnyPredictor::Gag(Gag::new(self.history_bits, self.automaton)),
            SchemeKind::Pag => AnyPredictor::Pag(Pag::new(
                self.history_bits,
                self.bht.unwrap_or(BhtConfig::PAPER_DEFAULT),
                self.automaton,
            )),
            SchemeKind::Pap => AnyPredictor::Pap(Pap::new(
                self.history_bits,
                self.bht.unwrap_or(BhtConfig::PAPER_DEFAULT),
                self.automaton,
            )),
            SchemeKind::Btb => {
                let (entries, ways) = match self.bht {
                    Some(BhtConfig::Cache { entries, ways }) => (entries, ways),
                    _ => (512, 4),
                };
                AnyPredictor::Btb(Btb::new(entries, ways, self.automaton))
            }
            SchemeKind::AlwaysTaken => AnyPredictor::AlwaysTaken(AlwaysTaken::new()),
            SchemeKind::Btfn => AnyPredictor::Btfn(Btfn::new()),
            SchemeKind::Gsg | SchemeKind::Psg | SchemeKind::Profiling => {
                unreachable!("training schemes handled above")
            }
        })
    }

    /// Builds the same predictor as [`SchemeConfig::build_trained`] wrapped
    /// in the statically dispatched [`AnyPredictor`] enum.
    ///
    /// GSg and PSg produce preset [`Gag`]/[`Pag`] structures, so they land
    /// in those variants.
    #[must_use]
    pub fn build_any_trained(&self, training: &Trace) -> AnyPredictor {
        match self.kind {
            SchemeKind::Gsg => {
                AnyPredictor::Gag(Gsg::new(&train_global(training, self.history_bits)))
            }
            SchemeKind::Psg => AnyPredictor::Pag(Psg::new(
                &train_per_address(training, self.history_bits),
                self.bht.unwrap_or(BhtConfig::PAPER_DEFAULT),
            )),
            SchemeKind::Profiling => AnyPredictor::Profiling(Profiling::train(training)),
            _ => self.build_any().expect("non-training scheme builds without a trace"),
        }
    }

    /// The hardware cost of this configuration under `model` (the paper's
    /// simplified Equations 4–6), when the model covers the scheme.
    ///
    /// Returns `None` for schemes the paper's cost model does not price:
    /// the static schemes, the BTB, and ideal (infinite) BHTs.
    #[must_use]
    pub fn cost(&self, model: &CostModel) -> Option<f64> {
        let pattern_bits = self.automaton.history_bits();
        let geometry = match self.bht {
            Some(BhtConfig::Cache { entries, ways }) => Some(BhtGeometry { entries, ways }),
            _ => None,
        };
        match self.kind {
            SchemeKind::Gag | SchemeKind::Gsg => {
                Some(model.gag_cost(self.history_bits, pattern_bits))
            }
            SchemeKind::Pag | SchemeKind::Psg => {
                Some(model.pag_cost(geometry?, self.history_bits, pattern_bits))
            }
            SchemeKind::Pap => Some(model.pap_cost(geometry?, self.history_bits, pattern_bits)),
            SchemeKind::Btb
            | SchemeKind::AlwaysTaken
            | SchemeKind::Btfn
            | SchemeKind::Profiling => None,
        }
    }
}

impl fmt::Display for SchemeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cs = if self.context_switch { ",c" } else { "" };
        match self.kind {
            SchemeKind::AlwaysTaken | SchemeKind::Btfn | SchemeKind::Profiling => {
                write!(f, "{}", self.kind)
            }
            SchemeKind::Btb => {
                let (entries, ways) = match self.bht {
                    Some(BhtConfig::Cache { entries, ways }) => (entries, ways),
                    _ => (512, 4),
                };
                write!(f, "BTB(BHT({entries},{ways},{}),{cs})", self.automaton)
            }
            SchemeKind::Gag | SchemeKind::Gsg => {
                let k = self.history_bits;
                write!(f, "{}(HR(1,,{k}-sr),1xPHT(2^{k},{}){cs})", self.kind, self.automaton)
            }
            SchemeKind::Pag | SchemeKind::Psg | SchemeKind::Pap => {
                let k = self.history_bits;
                let bht = self.bht.unwrap_or(BhtConfig::PAPER_DEFAULT);
                let history = match bht {
                    BhtConfig::Ideal => format!("IBHT(inf,,{k}-sr)"),
                    BhtConfig::Cache { entries, ways } => {
                        format!("BHT({entries},{ways},{k}-sr)")
                    }
                };
                let set_size = if self.kind == SchemeKind::Pap {
                    match bht {
                        BhtConfig::Ideal => "inf".to_owned(),
                        BhtConfig::Cache { entries, .. } => entries.to_string(),
                    }
                } else {
                    "1".to_owned()
                };
                write!(f, "{}({history},{set_size}xPHT(2^{k},{}){cs})", self.kind, self.automaton)
            }
        }
    }
}

/// Error building a predictor from a [`SchemeConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The scheme is profiling-based; call [`SchemeConfig::build_trained`].
    NeedsTraining {
        /// The configuration string of the offending scheme.
        config: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NeedsTraining { config } => {
                write!(f, "scheme {config} requires a training trace; use build_trained")
            }
        }
    }
}

impl Error for BuildError {}

/// Error parsing a configuration string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError {
    message: String,
}

impl ParseSchemeError {
    fn new(message: impl Into<String>) -> Self {
        ParseSchemeError { message: message.into() }
    }
}

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scheme configuration: {}", self.message)
    }
}

impl Error for ParseSchemeError {}

impl FromStr for SchemeConfig {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s {
            "AlwaysTaken" => return Ok(SchemeConfig::always_taken()),
            "BTFN" => return Ok(SchemeConfig::btfn()),
            "Profiling" => return Ok(SchemeConfig::profiling()),
            _ => {}
        }
        let open =
            s.find('(').ok_or_else(|| ParseSchemeError::new(format!("unknown scheme {s:?}")))?;
        if !s.ends_with(')') {
            return Err(ParseSchemeError::new("missing closing parenthesis"));
        }
        let mnemonic = &s[..open];
        let body = &s[open + 1..s.len() - 1];
        let parts = split_top_level(body);

        let context_switch = parts.last().map(|p| p.trim() == "c").unwrap_or(false);
        let args: Vec<&str> = parts[..parts.len() - usize::from(context_switch)].to_vec();

        match mnemonic {
            "BTB" => {
                let history = args
                    .first()
                    .ok_or_else(|| ParseSchemeError::new("BTB needs a history spec"))?;
                let (entries, ways, content) = parse_table_spec(history)?;
                let automaton: Automaton =
                    content.parse().map_err(|e| ParseSchemeError::new(format!("{e}")))?;
                let entries =
                    entries.parse::<usize>().map_err(|_| ParseSchemeError::new("bad BTB size"))?;
                let ways = ways
                    .parse::<usize>()
                    .map_err(|_| ParseSchemeError::new("bad BTB associativity"))?;
                Ok(SchemeConfig::btb(automaton)
                    .with_bht(BhtConfig::Cache { entries, ways })
                    .with_context_switch(context_switch))
            }
            "GAg" | "GSg" | "PAg" | "PSg" | "PAp" => {
                if args.len() < 2 {
                    return Err(ParseSchemeError::new(
                        "two-level scheme needs history and pattern specs",
                    ));
                }
                let (size, assoc, content) = parse_table_spec(args[0])?;
                let history_bits = parse_sr_content(content)?;
                let bht = match (mnemonic, args[0].starts_with("IBHT"), size) {
                    ("GAg" | "GSg", _, _) => None,
                    (_, true, _) => Some(BhtConfig::Ideal),
                    (_, false, size) => {
                        let entries = size
                            .parse::<usize>()
                            .map_err(|_| ParseSchemeError::new("bad BHT size"))?;
                        let ways = assoc
                            .parse::<usize>()
                            .map_err(|_| ParseSchemeError::new("bad BHT associativity"))?;
                        Some(BhtConfig::Cache { entries, ways })
                    }
                };
                let (pattern_k, automaton) = parse_pattern_spec(args[1])?;
                if pattern_k != history_bits {
                    return Err(ParseSchemeError::new(format!(
                        "history length {history_bits} disagrees with PHT size 2^{pattern_k}"
                    )));
                }
                let base = match mnemonic {
                    "GAg" => SchemeConfig::gag(history_bits),
                    "GSg" => SchemeConfig::gsg(history_bits),
                    "PAg" => SchemeConfig::pag(history_bits),
                    "PSg" => SchemeConfig::psg(history_bits),
                    "PAp" => SchemeConfig::pap(history_bits),
                    _ => unreachable!(),
                };
                let mut config = base.with_automaton(automaton);
                if let Some(bht) = bht {
                    config = config.with_bht(bht);
                }
                Ok(config.with_context_switch(context_switch))
            }
            other => Err(ParseSchemeError::new(format!("unknown scheme {other:?}"))),
        }
    }
}

/// Splits `a,b(c,d),e` into `["a", "b(c,d)", "e"]`.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Parses `NAME(size,assoc,content)` into its three fields.
fn parse_table_spec(s: &str) -> Result<(&str, &str, &str), ParseSchemeError> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| ParseSchemeError::new(format!("bad table spec {s:?}")))?;
    if !s.ends_with(')') {
        return Err(ParseSchemeError::new(format!("bad table spec {s:?}")));
    }
    let body = &s[open + 1..s.len() - 1];
    let fields: Vec<&str> = body.splitn(3, ',').collect();
    if fields.len() != 3 {
        return Err(ParseSchemeError::new(format!(
            "table spec {s:?} needs (size,associativity,content)"
        )));
    }
    Ok((fields[0].trim(), fields[1].trim(), fields[2].trim()))
}

/// Parses `12-sr` into 12.
fn parse_sr_content(s: &str) -> Result<u32, ParseSchemeError> {
    let digits = s
        .strip_suffix("-sr")
        .ok_or_else(|| ParseSchemeError::new(format!("expected `<k>-sr`, got {s:?}")))?;
    digits
        .parse::<u32>()
        .map_err(|_| ParseSchemeError::new(format!("bad history length {digits:?}")))
}

/// Parses `1xPHT(2^12,A2)` into `(12, Automaton::A2)`.
fn parse_pattern_spec(s: &str) -> Result<(u32, Automaton), ParseSchemeError> {
    let s = s.trim();
    let x = s.find('x').ok_or_else(|| ParseSchemeError::new(format!("bad pattern spec {s:?}")))?;
    // Set size prefix (1, 512, inf, ...) is implied by the scheme; skip it.
    let rest = &s[x + 1..];
    let (size, content) = parse_pht_body(rest)?;
    let k = if let Some(exponent) = size.strip_prefix("2^") {
        exponent
            .parse::<u32>()
            .map_err(|_| ParseSchemeError::new(format!("bad PHT size {size:?}")))?
    } else {
        let entries = size
            .parse::<u64>()
            .map_err(|_| ParseSchemeError::new(format!("bad PHT size {size:?}")))?;
        if !entries.is_power_of_two() {
            return Err(ParseSchemeError::new(format!(
                "PHT size {entries} must be a power of two"
            )));
        }
        entries.trailing_zeros()
    };
    let automaton: Automaton =
        content.parse().map_err(|e| ParseSchemeError::new(format!("{e}")))?;
    Ok((k, automaton))
}

fn parse_pht_body(s: &str) -> Result<(&str, &str), ParseSchemeError> {
    let s = s.trim();
    let body = s
        .strip_prefix("PHT(")
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or_else(|| ParseSchemeError::new(format!("expected PHT(...), got {s:?}")))?;
    let mut fields = body.splitn(2, ',');
    let size = fields.next().ok_or_else(|| ParseSchemeError::new("PHT spec missing size"))?;
    let content = fields.next().ok_or_else(|| ParseSchemeError::new("PHT spec missing content"))?;
    Ok((size.trim(), content.trim()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlabp_trace::synth::BiasedCoins;

    #[test]
    fn display_matches_table3_rows() {
        assert_eq!(
            SchemeConfig::gag(12).with_context_switch(true).to_string(),
            "GAg(HR(1,,12-sr),1xPHT(2^12,A2),c)"
        );
        assert_eq!(SchemeConfig::pag(12).to_string(), "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))");
        assert_eq!(
            SchemeConfig::pag(12).with_bht(BhtConfig::Ideal).to_string(),
            "PAg(IBHT(inf,,12-sr),1xPHT(2^12,A2))"
        );
        assert_eq!(SchemeConfig::pap(6).to_string(), "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))");
        assert_eq!(SchemeConfig::psg(12).to_string(), "PSg(BHT(512,4,12-sr),1xPHT(2^12,PB))");
        assert_eq!(
            SchemeConfig::btb(Automaton::A2).with_context_switch(true).to_string(),
            "BTB(BHT(512,4,A2),,c)"
        );
        assert_eq!(SchemeConfig::btfn().to_string(), "BTFN");
    }

    #[test]
    fn round_trip_every_kind() {
        let configs = [
            SchemeConfig::gag(18),
            SchemeConfig::gag(6).with_automaton(Automaton::A4).with_context_switch(true),
            SchemeConfig::pag(12),
            SchemeConfig::pag(10).with_bht(BhtConfig::Cache { entries: 256, ways: 1 }),
            SchemeConfig::pag(12).with_bht(BhtConfig::Ideal).with_context_switch(true),
            SchemeConfig::pap(6),
            SchemeConfig::pap(8).with_bht(BhtConfig::Ideal),
            SchemeConfig::gsg(12),
            SchemeConfig::psg(12).with_context_switch(true),
            SchemeConfig::btb(Automaton::A2),
            SchemeConfig::btb(Automaton::LastTime).with_context_switch(true),
            SchemeConfig::always_taken(),
            SchemeConfig::btfn(),
            SchemeConfig::profiling(),
        ];
        for config in configs {
            let text = config.to_string();
            let parsed: SchemeConfig = text.parse().unwrap_or_else(|e| {
                panic!("failed to parse {text:?}: {e}");
            });
            assert_eq!(parsed, config, "round trip of {text:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "XYZ(BHT(512,4,12-sr),1xPHT(2^12,A2))",
            "PAg(BHT(512,4,12-sr)",
            "PAg(BHT(512,4,12),1xPHT(2^12,A2))",
            "PAg(BHT(512,4,12-sr),1xPHT(2^10,A2))", // k mismatch
            "PAg(BHT(512,4,12-sr),1xPHT(2^12,A9))",
            "BTB(BHT(abc,4,A2),)",
        ] {
            assert!(bad.parse::<SchemeConfig>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_decimal_pht_size() {
        let parsed: SchemeConfig = "PAg(BHT(512,4,12-sr),1xPHT(4096,A2))".parse().unwrap();
        assert_eq!(parsed, SchemeConfig::pag(12));
    }

    #[test]
    fn build_adaptive_schemes() {
        for config in [
            SchemeConfig::gag(8),
            SchemeConfig::pag(8),
            SchemeConfig::pap(6),
            SchemeConfig::btb(Automaton::A2),
            SchemeConfig::always_taken(),
            SchemeConfig::btfn(),
        ] {
            let predictor = config.build().expect("adaptive scheme builds");
            // Name of the built predictor matches the config (modulo the
            // context-switch flag, which belongs to the simulator).
            let expected = config.with_context_switch(false).to_string();
            assert_eq!(predictor.name(), expected);
        }
    }

    #[test]
    fn build_training_schemes_requires_trace() {
        let err = match SchemeConfig::psg(8).build() {
            Err(err) => err,
            Ok(_) => panic!("PSg must refuse to build without training"),
        };
        assert!(err.to_string().contains("training"));

        let training = BiasedCoins::uniform(4, 0.8, 100, 3).generate();
        for config in [SchemeConfig::gsg(8), SchemeConfig::psg(8), SchemeConfig::profiling()] {
            let predictor = config.build_trained(&training);
            assert!(!predictor.name().is_empty());
        }
    }

    #[test]
    fn cost_covers_the_right_schemes() {
        let model = CostModel::paper_default();
        assert!(SchemeConfig::gag(12).cost(&model).is_some());
        assert!(SchemeConfig::pag(12).cost(&model).is_some());
        assert!(SchemeConfig::pap(6).cost(&model).is_some());
        assert!(SchemeConfig::psg(12).cost(&model).is_some());
        assert!(SchemeConfig::btfn().cost(&model).is_none());
        assert!(SchemeConfig::btb(Automaton::A2).cost(&model).is_none());
        assert!(
            SchemeConfig::pag(12).with_bht(BhtConfig::Ideal).cost(&model).is_none(),
            "infinite tables have no finite cost"
        );
    }

    #[test]
    fn accessors() {
        let config = SchemeConfig::pag(12).with_context_switch(true);
        assert_eq!(config.kind(), SchemeKind::Pag);
        assert_eq!(config.history_bits(), 12);
        assert_eq!(config.bht(), Some(BhtConfig::PAPER_DEFAULT));
        assert_eq!(config.automaton(), Automaton::A2);
        assert!(config.context_switch());
        assert!(!config.needs_training());
        assert!(SchemeConfig::profiling().needs_training());
    }
}
