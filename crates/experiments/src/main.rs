//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <artifact> [--out DIR] [--section NAME]
//! ```
//!
//! Run `experiments --help` for the artifact list — it is generated from
//! the single [`ARTIFACTS`] registry, which is the only place an
//! artifact's name, description and runner are declared. `all` iterates
//! the same registry (skipping the artifacts marked as not part of the
//! paper reproduction: `bench` and `calibrate`).
//!
//! Each artifact prints an ASCII table and writes `results/<name>.csv`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

mod ablations;
mod analysis;
mod bench;
mod fetch;
mod figures;
mod tables;

/// Shared experiment context: the trace cache, the output directory and
/// the optional `--section` filter (honored by the artifacts that have
/// named sections, currently `bench`).
pub struct Ctx {
    store: tlabp_sim::TraceStore,
    out_dir: PathBuf,
    section: Option<String>,
}

impl Ctx {
    fn new(out_dir: PathBuf, section: Option<String>) -> Self {
        // Drivers persist trace artifacts across processes by default
        // (TLABP_TRACE_DIR overrides the directory; set it empty to
        // disable): the first run after a clean checkout pays for VM
        // generation and derivation once, every later driver hydrates
        // from disk.
        Ctx { store: tlabp_sim::TraceStore::persistent(), out_dir, section }
    }

    /// The shared trace cache.
    pub fn store(&self) -> &tlabp_sim::TraceStore {
        &self.store
    }

    /// The `--section` filter, if one was given.
    pub fn section(&self) -> Option<&str> {
        self.section.as_deref()
    }

    /// Writes `<file_name>` verbatim into the output directory.
    pub fn emit_raw(&self, file_name: &str, contents: &str) {
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(file_name);
        match fs::write(&path, contents) {
            Ok(()) => println!("[wrote {}]\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// Prints the table under a heading and writes `<name>.csv`.
    pub fn emit(&self, name: &str, title: &str, table: &tlabp_sim::report::Table) {
        println!("== {title} ==");
        println!("{}", table.to_ascii());
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.csv"));
        match fs::write(&path, table.to_csv()) {
            Ok(()) => println!("[wrote {}]\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// One registered artifact: its CLI name, a one-line description for the
/// usage text, the runner, and whether `all` includes it.
struct Artifact {
    name: &'static str,
    description: &'static str,
    run: fn(&Ctx),
    /// `false` for helper artifacts outside the paper reproduction
    /// (throughput benchmarking, calibration); `all` skips those.
    in_all: bool,
}

const fn artifact(name: &'static str, description: &'static str, run: fn(&Ctx)) -> Artifact {
    Artifact { name, description, run, in_all: true }
}

const fn helper(name: &'static str, description: &'static str, run: fn(&Ctx)) -> Artifact {
    Artifact { name, description, run, in_all: false }
}

/// The single registry every dispatch path reads: lookup by name, the
/// `all` iteration and the usage text all come from this table.
const ARTIFACTS: [Artifact; 19] = [
    artifact("table1", "static conditional branches per benchmark (Table 1)", tables::table1),
    artifact("table2", "training/testing data sets (Table 2)", tables::table2),
    artifact("table3", "simulated predictor configurations (Table 3)", tables::table3),
    artifact("fig4", "distribution of dynamic branch classes (Figure 4)", figures::fig4),
    artifact("fig5", "PAg with automata LT/A1/A2/A3/A4 (Figure 5)", figures::fig5),
    artifact("fig6", "GAg vs PAg vs PAp at equal history length (Figure 6)", figures::fig6),
    artifact("fig7", "GAg history-length sweep (Figure 7)", figures::fig7),
    artifact("fig8", "the ~97% configurations and their hardware costs (Figure 8)", figures::fig8),
    artifact("fig9", "context-switch effect (Figure 9)", figures::fig9),
    artifact("fig10", "BHT implementation effect on PAg (Figure 10)", figures::fig10),
    artifact("fig11", "comparison of all prediction schemes (Figure 11)", figures::fig11),
    artifact("costs", "cost-model curves (Equations 4-6)", tables::costs),
    artifact(
        "ablations",
        "design-choice ablations (speculative history, PHT flush)",
        ablations::ablations,
    ),
    artifact("extensions", "gshare vs GAg (beyond the paper)", figures::extensions),
    artifact(
        "analysis",
        "misprediction characterization (\"examining that 3 percent\")",
        analysis::analysis,
    ),
    artifact("fetch", "Section 3.2 fetch-path outcomes with target caching", fetch::fetch),
    artifact(
        "grid",
        "automaton x history-width x scheme accuracy grid (beyond the paper)",
        tables::grid,
    ),
    helper("bench", "engine throughput vs the sequential reference baseline", bench::bench),
    helper("calibrate", "quick accuracy readout for reference schemes", figures::calibrate),
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut artifact = None;
    let mut out_dir = PathBuf::from("results");
    let mut section = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--section" => match iter.next() {
                Some(name) => section = Some(name.clone()),
                None => {
                    eprintln!("--section requires a section name");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name if artifact.is_none() => artifact = Some(name.to_owned()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(artifact) = artifact else {
        print_usage();
        return ExitCode::FAILURE;
    };

    let ctx = Ctx::new(out_dir, section);
    if artifact == "all" {
        for entry in ARTIFACTS.iter().filter(|a| a.in_all) {
            println!(">>> {}", entry.name);
            (entry.run)(&ctx);
        }
        return ExitCode::SUCCESS;
    }
    match ARTIFACTS.iter().find(|a| a.name == artifact) {
        Some(entry) => {
            (entry.run)(&ctx);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown artifact {artifact:?}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("usage: experiments <artifact> [--out DIR] [--section NAME]");
    println!("artifacts:");
    let width = ARTIFACTS.iter().map(|a| a.name.len()).max().unwrap_or(0);
    for entry in &ARTIFACTS {
        let suffix = if entry.in_all { "" } else { " [not in `all`]" };
        println!("  {:width$}  {}{suffix}", entry.name, entry.description);
    }
    println!("  {:width$}  every artifact above marked as part of the reproduction", "all");
}
