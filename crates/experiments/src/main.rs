//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <artifact> [--out DIR]
//!
//! artifacts:
//!   table1   static conditional branches per benchmark (Table 1)
//!   table2   training/testing data sets (Table 2)
//!   table3   simulated predictor configurations (Table 3)
//!   fig4     distribution of dynamic branch classes (Figure 4)
//!   fig5     PAg with automata LT/A1/A2/A3/A4 (Figure 5)
//!   fig6     GAg vs PAg vs PAp at equal history length (Figure 6)
//!   fig7     GAg history-length sweep (Figure 7)
//!   fig8     the ~97% configurations and their hardware costs (Figure 8)
//!   fig9     context-switch effect (Figure 9)
//!   fig10    BHT implementation effect on PAg (Figure 10)
//!   fig11    comparison of all prediction schemes (Figure 11)
//!   costs      cost-model curves (Equations 4-6)
//!   ablations  design-choice ablations (speculative history, PHT flush)
//!   extensions gshare vs GAg (beyond the paper)
//!   analysis   misprediction characterization ("examining that 3 percent")
//!   fetch      Section 3.2 fetch-path outcomes with target caching
//!   bench      sweep-engine throughput vs the sequential baseline
//!   all        everything above (except bench and calibrate)
//! ```
//!
//! Each artifact prints an ASCII table and writes `results/<name>.csv`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

mod ablations;
mod analysis;
mod bench;
mod fetch;
mod figures;
mod tables;

/// Shared experiment context: the trace cache and the output directory.
pub struct Ctx {
    store: tlabp_sim::TraceStore,
    out_dir: PathBuf,
}

impl Ctx {
    fn new(out_dir: PathBuf) -> Self {
        Ctx { store: tlabp_sim::TraceStore::new(), out_dir }
    }

    /// The shared trace cache.
    pub fn store(&self) -> &tlabp_sim::TraceStore {
        &self.store
    }

    /// Writes `<file_name>` verbatim into the output directory.
    pub fn emit_raw(&self, file_name: &str, contents: &str) {
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(file_name);
        match fs::write(&path, contents) {
            Ok(()) => println!("[wrote {}]\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// Prints the table under a heading and writes `<name>.csv`.
    pub fn emit(&self, name: &str, title: &str, table: &tlabp_sim::report::Table) {
        println!("== {title} ==");
        println!("{}", table.to_ascii());
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.csv"));
        match fs::write(&path, table.to_csv()) {
            Ok(()) => println!("[wrote {}]\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

type Artifact = (&'static str, fn(&Ctx));

const ARTIFACTS: [Artifact; 18] = [
    ("bench", bench::bench),
    ("table1", tables::table1),
    ("table2", tables::table2),
    ("table3", tables::table3),
    ("fig4", figures::fig4),
    ("fig5", figures::fig5),
    ("fig6", figures::fig6),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("fig11", figures::fig11),
    ("costs", tables::costs),
    ("ablations", ablations::ablations),
    ("extensions", figures::extensions),
    ("analysis", analysis::analysis),
    ("fetch", fetch::fetch),
    ("calibrate", figures::calibrate),
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut artifact = None;
    let mut out_dir = PathBuf::from("results");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name if artifact.is_none() => artifact = Some(name.to_owned()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(artifact) = artifact else {
        print_usage();
        return ExitCode::FAILURE;
    };

    let ctx = Ctx::new(out_dir);
    if artifact == "all" {
        for (name, run) in
            ARTIFACTS.iter().filter(|(n, _)| *n != "calibrate" && *n != "bench")
        {
            println!(">>> {name}");
            run(&ctx);
        }
        return ExitCode::SUCCESS;
    }
    match ARTIFACTS.iter().find(|(name, _)| *name == artifact) {
        Some((_, run)) => {
            run(&ctx);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown artifact {artifact:?}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("usage: experiments <artifact> [--out DIR]");
    println!("artifacts: all, {}", ARTIFACTS.map(|(n, _)| n).join(", "));
}
