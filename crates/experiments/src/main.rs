//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <artifact> [--out DIR] [--section NAME]
//! experiments plan <artifact> [--out DIR]     # serialize the artifact's Plan
//! experiments exec <plan.json> [--out DIR]    # execute a serialized Plan in-process
//! experiments serve                           # run the sweep daemon (TLABP_SERVE_ADDR)
//! experiments client <plan.json> [--out DIR]  # submit a Plan to a running daemon
//! experiments import [capture.tlbe] [--out DIR]  # ingest an external trace capture
//! ```
//!
//! Run `experiments --help` for the artifact list — it is generated from
//! the single [`ARTIFACTS`] registry, which is the only place an
//! artifact's name, description, runner and (where it has one)
//! serializable plan are declared. `all` iterates the same registry
//! (skipping the artifacts marked as not part of the paper
//! reproduction: `bench` and `calibrate`).
//!
//! Each artifact prints an ASCII table and writes `results/<name>.csv`.
//! `plan`/`exec`/`client` instead exchange the engine's canonical JSON
//! wire forms, so a result produced by the daemon can be diffed
//! bit-for-bit against an in-process execution of the same plan.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

mod ablations;
mod analysis;
mod bench;
mod fetch;
mod figures;
mod tables;

/// Shared experiment context: the trace cache, the output directory and
/// the optional `--section` filter (honored by the artifacts that have
/// named sections, currently `bench`).
pub struct Ctx {
    store: tlabp_sim::TraceStore,
    out_dir: PathBuf,
    section: Option<String>,
}

impl Ctx {
    fn new(out_dir: PathBuf, section: Option<String>) -> Self {
        // Drivers persist trace artifacts across processes by default
        // (TLABP_TRACE_DIR overrides the directory; set it empty to
        // disable): the first run after a clean checkout pays for VM
        // generation and derivation once, every later driver hydrates
        // from disk.
        Ctx { store: tlabp_sim::TraceStore::persistent(), out_dir, section }
    }

    /// The shared trace cache.
    pub fn store(&self) -> &tlabp_sim::TraceStore {
        &self.store
    }

    /// Executes a plan on the session-oriented streaming core — the one
    /// execution path every driver shares (and the same path the sweep
    /// daemon runs per connection).
    pub fn run(&self, plan: &tlabp_sim::Plan) -> tlabp_sim::ResultSet {
        tlabp_sim::Session::new(self.store.clone()).run(plan)
    }

    /// The `--section` filter, if one was given.
    pub fn section(&self) -> Option<&str> {
        self.section.as_deref()
    }

    /// Writes `<file_name>` verbatim into the output directory.
    pub fn emit_raw(&self, file_name: &str, contents: &str) {
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(file_name);
        match fs::write(&path, contents) {
            Ok(()) => println!("[wrote {}]\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// Prints the table under a heading and writes `<name>.csv`.
    pub fn emit(&self, name: &str, title: &str, table: &tlabp_sim::report::Table) {
        self.emit_with_meta(name, title, &[], table);
    }

    /// [`Ctx::emit`] with `# key=value` comment lines prefixed to the
    /// CSV. Bench artifacts are committed to the repository, so each one
    /// records the measuring host's facts (core count, pool width,
    /// selected kernel tier) — a throughput number divorced from the
    /// hardware that produced it is not reproducible.
    pub fn emit_with_meta(
        &self,
        name: &str,
        title: &str,
        meta: &[(&str, String)],
        table: &tlabp_sim::report::Table,
    ) {
        println!("== {title} ==");
        println!("{}", table.to_ascii());
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let mut contents = String::new();
        for (key, value) in meta {
            contents.push_str(&format!("# {key}={value}\n"));
        }
        contents.push_str(&table.to_csv());
        let path = self.out_dir.join(format!("{name}.csv"));
        match fs::write(&path, contents) {
            Ok(()) => println!("[wrote {}]\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// One registered artifact: its CLI name, a one-line description for the
/// usage text, the runner, the serializable plan behind the runner (for
/// the artifacts whose work is one engine plan), and whether `all`
/// includes it.
struct Artifact {
    name: &'static str,
    description: &'static str,
    run: fn(&Ctx),
    /// The plan the runner executes, for `experiments plan <name>`.
    /// `None` for artifacts that do no simulation (tables 1-3, fig4,
    /// costs) or that build registry state per variant inline
    /// (ablations, bench).
    plan: Option<fn() -> tlabp_sim::Plan>,
    /// `false` for helper artifacts outside the paper reproduction
    /// (throughput benchmarking, calibration); `all` skips those.
    in_all: bool,
}

const fn artifact(name: &'static str, description: &'static str, run: fn(&Ctx)) -> Artifact {
    Artifact { name, description, run, plan: None, in_all: true }
}

const fn planned(
    name: &'static str,
    description: &'static str,
    run: fn(&Ctx),
    plan: fn() -> tlabp_sim::Plan,
) -> Artifact {
    Artifact { name, description, run, plan: Some(plan), in_all: true }
}

const fn helper(name: &'static str, description: &'static str, run: fn(&Ctx)) -> Artifact {
    Artifact { name, description, run, plan: None, in_all: false }
}

/// The single registry every dispatch path reads: lookup by name, the
/// `all` iteration, `plan` lookup and the usage text all come from this
/// table.
const ARTIFACTS: [Artifact; 19] = [
    artifact("table1", "static conditional branches per benchmark (Table 1)", tables::table1),
    artifact("table2", "training/testing data sets (Table 2)", tables::table2),
    artifact("table3", "simulated predictor configurations (Table 3)", tables::table3),
    artifact("fig4", "distribution of dynamic branch classes (Figure 4)", figures::fig4),
    planned(
        "fig5",
        "PAg with automata LT/A1/A2/A3/A4 (Figure 5)",
        figures::fig5,
        figures::fig5_plan,
    ),
    planned(
        "fig6",
        "GAg vs PAg vs PAp at equal history length (Figure 6)",
        figures::fig6,
        figures::fig6_plan,
    ),
    planned("fig7", "GAg history-length sweep (Figure 7)", figures::fig7, figures::fig7_plan),
    planned(
        "fig8",
        "the ~97% configurations and their hardware costs (Figure 8)",
        figures::fig8,
        figures::fig8_plan,
    ),
    planned("fig9", "context-switch effect (Figure 9)", figures::fig9, figures::fig9_plan),
    planned(
        "fig10",
        "BHT implementation effect on PAg (Figure 10)",
        figures::fig10,
        figures::fig10_plan,
    ),
    planned(
        "fig11",
        "comparison of all prediction schemes (Figure 11)",
        figures::fig11,
        figures::fig11_plan,
    ),
    artifact("costs", "cost-model curves (Equations 4-6)", tables::costs),
    artifact(
        "ablations",
        "design-choice ablations (speculative history, PHT flush)",
        ablations::ablations,
    ),
    planned(
        "extensions",
        "gshare vs GAg (beyond the paper)",
        figures::extensions,
        figures::extensions_plan,
    ),
    planned(
        "analysis",
        "misprediction characterization (\"examining that 3 percent\")",
        analysis::analysis,
        analysis::analysis_plan,
    ),
    planned(
        "fetch",
        "Section 3.2 fetch-path outcomes with target caching",
        fetch::fetch,
        fetch::fetch_plan,
    ),
    planned(
        "grid",
        "automaton x history-width x scheme accuracy grid (beyond the paper)",
        tables::grid,
        tables::grid_plan,
    ),
    helper("bench", "engine throughput vs the sequential reference baseline", bench::bench),
    helper("calibrate", "quick accuracy readout for reference schemes", figures::calibrate),
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut section = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--section" => match iter.next() {
                Some(name) => section = Some(name.clone()),
                None => {
                    eprintln!("--section requires a section name");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') && positional.len() < 2 => {
                positional.push(name.to_owned());
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(command) = positional.first().cloned() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let operand = positional.get(1).cloned();

    match command.as_str() {
        "plan" => return cmd_plan(operand.as_deref(), &out_dir),
        "exec" => return cmd_exec(operand.as_deref(), &out_dir),
        "serve" => return cmd_serve(),
        "client" => return cmd_client(operand.as_deref(), &out_dir),
        "import" => return cmd_import(operand.as_deref(), &out_dir),
        _ => {}
    }
    if let Some(extra) = operand {
        eprintln!("unexpected argument {extra:?}");
        return ExitCode::FAILURE;
    }

    let ctx = Ctx::new(out_dir, section);
    if command == "all" {
        for entry in ARTIFACTS.iter().filter(|a| a.in_all) {
            println!(">>> {}", entry.name);
            (entry.run)(&ctx);
        }
        return ExitCode::SUCCESS;
    }
    match ARTIFACTS.iter().find(|a| a.name == command) {
        Some(entry) => {
            (entry.run)(&ctx);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown artifact {command:?}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

/// `experiments plan <artifact>`: serialize the artifact's plan to
/// `<out>/<artifact>.plan.json` in the canonical wire form.
fn cmd_plan(name: Option<&str>, out_dir: &Path) -> ExitCode {
    let Some(name) = name else {
        eprintln!("usage: experiments plan <artifact> [--out DIR]");
        return ExitCode::FAILURE;
    };
    let Some(entry) = ARTIFACTS.iter().find(|a| a.name == name) else {
        eprintln!("unknown artifact {name:?}");
        return ExitCode::FAILURE;
    };
    let Some(make_plan) = entry.plan else {
        eprintln!("artifact {name:?} has no serializable plan (it does no engine work)");
        return ExitCode::FAILURE;
    };
    let plan = make_plan();
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(format!("{name}.plan.json"));
    let mut text = plan.to_json_string();
    text.push('\n');
    match fs::write(&path, text) {
        Ok(()) => {
            println!(
                "[wrote {} ({} jobs, hash {})]",
                path.display(),
                plan.len(),
                plan.wire_hash_hex()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Reads and decodes a serialized plan file.
fn load_plan(path: &str) -> Result<tlabp_sim::Plan, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    tlabp_sim::Plan::from_json_str(text.trim_end())
        .map_err(|e| format!("cannot decode {path}: {e}"))
}

/// Output path for the results of the plan file at `input`:
/// `<out>/<stem>.results.json` where `<stem>` drops a trailing
/// `.plan.json` (or any single extension).
fn results_path(input: &str, out_dir: &Path) -> PathBuf {
    let file_name = Path::new(input).file_name().and_then(|n| n.to_str()).unwrap_or(input);
    let stem = file_name
        .strip_suffix(".plan.json")
        .or_else(|| file_name.rsplit_once('.').map(|(stem, _)| stem))
        .unwrap_or(file_name);
    out_dir.join(format!("{stem}.results.json"))
}

fn write_results(path: &Path, results: &tlabp_sim::ResultSet) -> ExitCode {
    if let Some(parent) = path.parent() {
        if let Err(e) = fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    let mut text = results.to_json_string();
    text.push('\n');
    match fs::write(path, text) {
        Ok(()) => {
            println!("[wrote {}]", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// `experiments exec <plan.json>`: execute a serialized plan in-process
/// on the session core and write the canonical result JSON. The
/// reference half of the service smoke test: `client` output must be
/// byte-identical to this.
fn cmd_exec(input: Option<&str>, out_dir: &Path) -> ExitCode {
    let Some(input) = input else {
        eprintln!("usage: experiments exec <plan.json> [--out DIR]");
        return ExitCode::FAILURE;
    };
    figures::register_custom_predictors();
    let plan = match load_plan(input) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = Ctx::new(out_dir.to_path_buf(), None);
    let results = ctx.run(&plan);
    write_results(&results_path(input, out_dir), &results)
}

/// `experiments serve`: run the sweep daemon per `TLABP_SERVE_ADDR` /
/// `TLABP_SERVE_BACKEND` / `TLABP_SERVE_INFLIGHT` /
/// `TLABP_SERVE_MEMO_BYTES` / `TLABP_SERVE_MEMO_DIR` /
/// `TLABP_SERVE_WINDOW`, sharing one warm trace store and the global
/// worker pool across every connection.
fn cmd_serve() -> ExitCode {
    figures::register_custom_predictors();
    let config = tlabp_service::ServeConfig::from_env();
    let store = tlabp_sim::TraceStore::persistent();
    match tlabp_service::serve(&config, store, tlabp_sim::ExecOptions::default()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cannot serve on {}: {e}", config.addr);
            ExitCode::FAILURE
        }
    }
}

/// `experiments client <plan.json>`: submit a serialized plan to the
/// daemon at `TLABP_SERVE_ADDR` and write the streamed results as the
/// same canonical JSON `exec` writes.
fn cmd_client(input: Option<&str>, out_dir: &Path) -> ExitCode {
    let Some(input) = input else {
        eprintln!("usage: experiments client <plan.json> [--out DIR]");
        return ExitCode::FAILURE;
    };
    let plan = match load_plan(input) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = env::var(tlabp_service::SERVE_ADDR_ENV)
        .unwrap_or_else(|_| tlabp_service::DEFAULT_SERVE_ADDR.to_owned());
    let mut client = match tlabp_service::Client::connect_with_retry(&addr, Duration::from_secs(10))
    {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.execute(&plan) {
        Ok((results, done)) => {
            println!(
                "[{} jobs streamed from {addr}{}]",
                done.jobs,
                if done.memo { ", memoized" } else { "" }
            );
            write_results(&results_path(input, out_dir), &results)
        }
        Err(e) => {
            eprintln!("sweep service error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `experiments import [capture.tlbe]`: decode an external TLBE
/// execution-trace capture and persist it as a v3 chunked artifact named
/// by the capture's content fingerprint — into the persistent trace
/// cache (`TLABP_TRACE_DIR`) when one is configured, else `--out`.
/// Without an operand a small built-in loop-nest capture is encoded and
/// imported instead, so the pipeline can be exercised end-to-end with no
/// external tracer.
///
/// The import is deterministic (re-importing the same capture yields the
/// identical artifact bytes — re-verified on every run), which is what
/// makes imported workloads cacheable in the disk tier and memoizable
/// through the sweep service. The summary replays the imported trace
/// through PAg(8) as a smoke check that the decoded branch stream is
/// simulate-ready.
fn cmd_import(input: Option<&str>, out_dir: &Path) -> ExitCode {
    use tlabp_trace::import::{import_artifacts, write_etrace};
    use tlabp_trace::io::{chunk_bytes_from_env, read_artifacts, write_file_atomic};

    let (bytes, label) = match input {
        Some(path) => match fs::read(path) {
            Ok(bytes) => (bytes, path.to_owned()),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let demo = tlabp_trace::synth::LoopNest::new(&[41, 23, 7]).generate();
            (write_etrace(&demo), "built-in demo capture".to_owned())
        }
    };

    let chunk_bytes = chunk_bytes_from_env();
    let (fingerprint, artifact) = match import_artifacts(&bytes, chunk_bytes) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("cannot import {label}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let again = import_artifacts(&bytes, chunk_bytes).expect("a decodable capture stays decodable");
    assert_eq!(again.1, artifact, "import must be deterministic for the same capture bytes");

    let store = tlabp_sim::TraceStore::persistent();
    let dir = store.cache_dir().map_or_else(|| out_dir.to_path_buf(), Path::to_path_buf);
    let path = dir.join(format!("import-{fingerprint:016x}.tlabp"));
    if let Err(e) = write_file_atomic(&path, &artifact) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }

    let bundle = read_artifacts(&artifact).expect("a just-encoded artifact decodes");
    let trace = bundle.trace.as_ref().expect("import always serializes the trace");
    let interned = bundle.interned.as_ref().expect("import always serializes the interned form");
    println!(
        "[imported {label}: {} capture bytes -> {} artifact bytes]",
        bytes.len(),
        artifact.len()
    );
    println!(
        "[{} trace events, {} conditional branches, {} static branch sites]",
        trace.len(),
        bundle.packed.as_ref().map_or(0, Vec::len),
        interned.distinct_pcs()
    );
    println!("[wrote {} (fingerprint {fingerprint:016x})]", path.display());

    // Replay smoke check: derive a first-level stream from the imported
    // interned form and run one small scheme over it.
    let config = tlabp_core::config::SchemeConfig::pag(8);
    let key = tlabp_sim::replay_stream_key(config).expect("PAg(8) replays");
    let stream = tlabp_sim::derive_pattern_stream(interned, key);
    let predictors = vec![config.build_any().expect("untrained PAg builds")];
    let sims = tlabp_sim::simulate_replay_transposed(
        &predictors,
        &stream,
        tlabp_core::SimdMode::from_env(),
    )
    .expect("PAg replays");
    let sim = &sims[0];
    if sim.predictions > 0 {
        println!(
            "[replay smoke check: PAg(8) predicted {}/{} ({:.2}%)]",
            sim.correct,
            sim.predictions,
            sim.correct as f64 / sim.predictions as f64 * 100.0
        );
    } else {
        println!("[replay smoke check: capture has no conditional branches to predict]");
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    println!("usage: experiments <artifact> [--out DIR] [--section NAME]");
    println!("       experiments plan <artifact> [--out DIR]");
    println!("       experiments exec <plan.json> [--out DIR]");
    println!("       experiments serve");
    println!("       experiments client <plan.json> [--out DIR]");
    println!("       experiments import [capture.tlbe] [--out DIR]");
    println!("artifacts:");
    let width = ARTIFACTS.iter().map(|a| a.name.len()).max().unwrap_or(0);
    for entry in &ARTIFACTS {
        let suffix = if entry.in_all { "" } else { " [not in `all`]" };
        println!("  {:width$}  {}{suffix}", entry.name, entry.description);
    }
    println!("  {:width$}  every artifact above marked as part of the reproduction", "all");
    println!(
        "\nThe daemon commands honor TLABP_SERVE_ADDR (default {});",
        tlabp_service::DEFAULT_SERVE_ADDR
    );
    println!(
        "`serve` additionally honors TLABP_SERVE_BACKEND, TLABP_SERVE_INFLIGHT,\n\
         TLABP_SERVE_MEMO_BYTES, TLABP_SERVE_MEMO_DIR, TLABP_SERVE_MEMO_DISK_BYTES\n\
         and TLABP_SERVE_WINDOW."
    );
    println!(
        "`import` decodes a TLBE execution-trace capture (or a built-in demo when no\n\
         file is given) into a v3 chunked artifact named by its content fingerprint,\n\
         honoring TLABP_CHUNK_BYTES and TLABP_TRACE_DIR."
    );
}
