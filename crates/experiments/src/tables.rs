//! Table 1, Table 2, Table 3 and the cost-model curves.

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::config::SchemeConfig;
use tlabp_core::cost::{BhtGeometry, CostModel};
use tlabp_sim::report::Table;
use tlabp_sim::SimConfig;
use tlabp_trace::stats::TraceSummary;
use tlabp_workloads::{Benchmark, DataSet};

use crate::Ctx;

/// Table 1: number of static conditional branches in each benchmark,
/// paper value vs. this reproduction's stand-in workload.
pub fn table1(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "kind".into(),
        "paper static cnd. br.".into(),
        "measured static cnd. br.".into(),
        "dynamic cnd. br.".into(),
    ]);
    for benchmark in &Benchmark::ALL {
        let trace = ctx.store().get(benchmark, DataSet::Testing);
        let summary = TraceSummary::from_trace(&trace);
        table.push_row(vec![
            benchmark.name().into(),
            benchmark.kind().to_string(),
            benchmark.paper_static_branches().to_string(),
            summary.static_conditional_branches.to_string(),
            summary.dynamic_conditional_branches.to_string(),
        ]);
    }
    ctx.emit("table1", "Table 1: static conditional branches", &table);
}

/// Table 2: training and testing data sets of each benchmark.
pub fn table2(ctx: &Ctx) {
    // The named inputs of the paper's Table 2, alongside what the
    // stand-in uses (seed/scale variants; "NA" entries have no training
    // set and are excluded from profiled-scheme averages).
    let paper: [(&str, &str, &str); 9] = [
        ("eqntott", "NA", "int_pri_3.eqn"),
        ("espresso", "cps", "bca"),
        ("gcc", "cexp.i", "dbxout.i"),
        ("li", "tower of hanoi", "eight queens"),
        ("doduc", "tiny doducin", "doducin"),
        ("fpppp", "NA", "natoms"),
        ("matrix300", "NA", "Built-in"),
        ("spice2g6", "short greycode.in", "greycode.in"),
        ("tomcatv", "NA", "Built-in"),
    ];
    let mut table = Table::new(vec![
        "benchmark".into(),
        "paper training".into(),
        "paper testing".into(),
        "reproduction training".into(),
        "reproduction testing".into(),
    ]);
    for (name, train, test) in paper {
        let benchmark = Benchmark::by_name(name).expect("benchmark exists");
        let repro_train = if benchmark.has_training_set() {
            "seed/scale variant A".to_owned()
        } else {
            "NA".to_owned()
        };
        table.push_row(vec![
            name.into(),
            train.into(),
            test.into(),
            repro_train,
            "seed/scale variant B".into(),
        ]);
    }
    ctx.emit("table2", "Table 2: training and testing data sets", &table);
}

/// Table 3: the configurations simulated in this study, in the paper's
/// naming convention (every row parses back to an identical config).
pub fn table3(ctx: &Ctx) {
    let configs = all_table3_configs();
    let mut table = Table::new(vec![
        "configuration".into(),
        "BHT entries".into(),
        "assoc".into(),
        "k".into(),
        "automaton".into(),
        "parses back".into(),
    ]);
    for config in configs {
        let text = config.to_string();
        let round_trip = text.parse::<SchemeConfig>().map(|c| c == config);
        let (entries, ways) = match config.bht() {
            Some(BhtConfig::Cache { entries, ways }) => (entries.to_string(), ways.to_string()),
            Some(BhtConfig::Ideal) => ("inf".into(), "-".into()),
            None => ("1".into(), "-".into()),
        };
        table.push_row(vec![
            text,
            entries,
            ways,
            config.history_bits().to_string(),
            config.automaton().to_string(),
            match round_trip {
                Ok(true) => "yes".into(),
                Ok(false) => "MISMATCH".into(),
                Err(e) => format!("ERROR: {e}"),
            },
        ]);
    }
    ctx.emit("table3", "Table 3: simulated predictor configurations", &table);
}

/// The configuration rows of the paper's Table 3 (with `r` instantiated
/// at the values used across the figures).
pub fn all_table3_configs() -> Vec<SchemeConfig> {
    let mut configs = vec![
        SchemeConfig::gag(18),
        SchemeConfig::pag(12).with_bht(BhtConfig::Cache { entries: 256, ways: 1 }),
        SchemeConfig::pag(12).with_bht(BhtConfig::Cache { entries: 256, ways: 4 }),
        SchemeConfig::pag(12).with_bht(BhtConfig::Cache { entries: 512, ways: 1 }),
    ];
    for automaton in
        [Automaton::A1, Automaton::A2, Automaton::A3, Automaton::A4, Automaton::LastTime]
    {
        configs.push(SchemeConfig::pag(12).with_automaton(automaton));
    }
    configs.extend([
        SchemeConfig::pag(12).with_bht(BhtConfig::Ideal),
        SchemeConfig::pap(12),
        SchemeConfig::gsg(18),
        SchemeConfig::psg(12),
        SchemeConfig::btb(Automaton::A2),
        SchemeConfig::btb(Automaton::LastTime),
    ]);
    configs
}

/// A function making a scheme from a history width.
type MakeScheme = fn(u32) -> SchemeConfig;

/// The grid's axes: history widths and base schemes.
fn grid_axes() -> ([u32; 5], [(&'static str, MakeScheme); 3]) {
    (
        [4u32, 6, 8, 10, 12],
        [("GAg", SchemeConfig::gag), ("PAg", SchemeConfig::pag), ("PAp", SchemeConfig::pap)],
    )
}

/// The plan behind [`grid`]: every (scheme, width, automaton) suite.
pub fn grid_plan() -> tlabp_sim::Plan {
    let (widths, schemes) = grid_axes();
    let configs: Vec<SchemeConfig> = schemes
        .iter()
        .flat_map(|&(_, make)| widths.iter().map(move |&k| make(k)))
        .flat_map(|config| {
            Automaton::FIGURE5.iter().map(move |&automaton| config.with_automaton(automaton))
        })
        .collect();
    tlabp_sim::Plan::suites(&configs, &SimConfig::no_context_switch())
}

/// The full automaton x history-width x scheme accuracy grid (beyond the
/// paper's figures, which each slice this space along one axis). 75
/// suite evaluations; affordable because every cell lowers to a
/// pattern-stream replay, so each (scheme, width, benchmark) trace walk
/// happens once and the five automata replay over it.
pub fn grid(ctx: &Ctx) {
    let (widths, schemes) = grid_axes();
    let results = ctx.run(&grid_plan()).suites();

    let mut header = vec!["scheme".into(), "k".into()];
    header.extend(Automaton::FIGURE5.iter().map(|a| format!("{a} Tot GMean %")));
    let mut table = Table::new(header);
    let mut rows = results.iter();
    for (name, _) in schemes {
        for k in widths {
            let mut row = vec![name.to_string(), k.to_string()];
            for _ in Automaton::FIGURE5 {
                let result = rows.next().expect("one result per config");
                row.push(format!("{:.2}", result.total_gmean() * 100.0));
            }
            table.push_row(row);
        }
    }
    ctx.emit("grid", "Accuracy grid: scheme x history width x automaton", &table);
}

/// Cost-model curves: Equations 4-6 as functions of the history length,
/// plus the BHT-size scaling.
pub fn costs(ctx: &Ctx) {
    let model = CostModel::paper_default();
    let geometry = BhtGeometry::PAPER_DEFAULT;
    let mut table = Table::new(vec![
        "k".into(),
        "GAg (eq. 4)".into(),
        "PAg 512x4 (eq. 5)".into(),
        "PAp 512x4 (eq. 6)".into(),
        "full PAg (eq. 3)".into(),
    ]);
    for k in (6..=18).step_by(2) {
        table.push_row(vec![
            k.to_string(),
            format!("{:.0}", model.gag_cost(k, 2)),
            format!("{:.0}", model.pag_cost(geometry, k, 2)),
            format!("{:.0}", model.pap_cost(geometry, k, 2)),
            format!("{:.0}", model.full_cost(geometry, k, 2, 1)),
        ]);
    }
    ctx.emit("costs", "Hardware cost curves (Equations 3-6)", &table);

    let mut scaling =
        Table::new(vec!["BHT entries".into(), "PAg k=12 (eq. 5)".into(), "PAp k=6 (eq. 6)".into()]);
    for entries in [128usize, 256, 512, 1024, 2048] {
        let g = BhtGeometry { entries, ways: 4 };
        scaling.push_row(vec![
            entries.to_string(),
            format!("{:.0}", model.pag_cost(g, 12, 2)),
            format!("{:.0}", model.pap_cost(g, 6, 2)),
        ]);
    }
    ctx.emit("costs_bht_scaling", "Cost vs BHT size", &scaling);
}
