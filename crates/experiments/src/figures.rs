//! Figures 4 through 11: the simulation experiments.

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::config::SchemeConfig;
use tlabp_core::cost::CostModel;
use tlabp_sim::plan::{Job, Plan};
use tlabp_sim::report::{format_accuracy, suite_table, Table};
use tlabp_sim::runner::SimConfig;
use tlabp_trace::stats::BranchMix;
use tlabp_trace::BranchClass;
use tlabp_workloads::{Benchmark, DataSet};

use crate::Ctx;

/// Every figure driver declares its whole configuration matrix as one
/// [`Plan`] (exposed as a `*_plan()` function so `experiments plan` can
/// serialize it for the sweep service) and hands it to the session core
/// in a single call, so cells from every configuration share the worker
/// pool.
fn run_suites(ctx: &Ctx, plan: &Plan) -> Vec<tlabp_sim::SuiteResult> {
    ctx.run(plan).suites()
}

/// Figure 4: distribution of dynamic branch instructions by class.
pub fn fig4(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "conditional %".into(),
        "unconditional %".into(),
        "call %".into(),
        "return %".into(),
    ]);
    for benchmark in &Benchmark::ALL {
        let trace = ctx.store().get(benchmark, DataSet::Testing);
        let mix = BranchMix::from_trace(&trace);
        let pct = |class: BranchClass| format!("{:.1}", 100.0 * mix.fraction(class));
        table.push_row(vec![
            benchmark.name().into(),
            pct(BranchClass::Conditional),
            pct(BranchClass::Unconditional),
            pct(BranchClass::Call),
            pct(BranchClass::Return),
        ]);
    }
    ctx.emit("fig4", "Figure 4: distribution of dynamic branch instructions", &table);
}

/// The plan behind [`fig5`].
pub fn fig5_plan() -> Plan {
    let configs: Vec<SchemeConfig> =
        Automaton::FIGURE5.iter().map(|&a| SchemeConfig::pag(12).with_automaton(a)).collect();
    Plan::suites(&configs, &SimConfig::no_context_switch())
}

/// Figure 5: PAg(BHT(512,4,12-sr)) under each pattern automaton.
pub fn fig5(ctx: &Ctx) {
    let table = suite_table(&run_suites(ctx, &fig5_plan()));
    ctx.emit("fig5", "Figure 5: effect of the pattern history automaton", &table);
}

/// The plan behind [`fig6`].
pub fn fig6_plan() -> Plan {
    let mut configs = Vec::new();
    for k in [6u32, 8, 10, 12] {
        configs.push(SchemeConfig::gag(k));
        configs.push(SchemeConfig::pag(k));
        configs.push(SchemeConfig::pap(k));
    }
    Plan::suites(&configs, &SimConfig::no_context_switch())
}

/// Figure 6: the three variations at equal history register lengths.
pub fn fig6(ctx: &Ctx) {
    let table = suite_table(&run_suites(ctx, &fig6_plan()));
    ctx.emit("fig6", "Figure 6: GAg vs PAg vs PAp at equal history length", &table);
}

/// The plan behind [`fig7`].
pub fn fig7_plan() -> Plan {
    let configs: Vec<SchemeConfig> = (6..=18).step_by(2).map(SchemeConfig::gag).collect();
    Plan::suites(&configs, &SimConfig::no_context_switch())
}

/// Figure 7: GAg accuracy as the global history register lengthens.
pub fn fig7(ctx: &Ctx) {
    let table = suite_table(&run_suites(ctx, &fig7_plan()));
    ctx.emit("fig7", "Figure 7: effect of history register length on GAg", &table);
}

/// The equal-accuracy triple of Figure 8. The paper's is
/// GAg(18)/PAg(12)/PAp(6); with our workloads' loop periods, PAp needs 8
/// history bits to reach the same band (see EXPERIMENTS.md).
fn fig8_configs() -> [SchemeConfig; 3] {
    [SchemeConfig::gag(18), SchemeConfig::pag(12), SchemeConfig::pap(8)]
}

/// The plan behind [`fig8`].
pub fn fig8_plan() -> Plan {
    Plan::suites(&fig8_configs(), &SimConfig::no_context_switch())
}

/// Figure 8: the three configurations that reach roughly equal accuracy,
/// with their hardware cost estimates.
pub fn fig8(ctx: &Ctx) {
    let configs = fig8_configs();
    let results = run_suites(ctx, &fig8_plan());
    let mut table = suite_table(&results);
    ctx.emit("fig8", "Figure 8: equal-accuracy configurations", &table);

    let model = CostModel::paper_default();
    table = Table::new(vec![
        "configuration".into(),
        "Tot GMean %".into(),
        "hardware cost (unit constants)".into(),
    ]);
    for (config, result) in configs.iter().zip(&results) {
        table.push_row(vec![
            config.to_string(),
            format_accuracy(Some(result.total_gmean())),
            format!("{:.0}", config.cost(&model).expect("costed scheme")),
        ]);
    }
    ctx.emit("fig8_costs", "Figure 8: cost of the equal-accuracy configurations", &table);
}

/// The plan behind [`fig9`]: one sweep over the interleaved
/// (no-CS, with-CS) pairs. The sweep cell honors each config's own `c`
/// flag, so the plain configs run without context switches and the
/// flagged ones with the paper model.
pub fn fig9_plan() -> Plan {
    let configs: Vec<SchemeConfig> =
        fig8_configs().iter().flat_map(|base| [*base, base.with_context_switch(true)]).collect();
    Plan::suites(&configs, &SimConfig::no_context_switch())
}

/// Figure 9: effect of context switches on the three ~equal-accuracy
/// schemes.
pub fn fig9(ctx: &Ctx) {
    let results = run_suites(ctx, &fig9_plan());
    let table = suite_table(&results);
    ctx.emit("fig9", "Figure 9: effect of context switches", &table);

    // Degradation summary.
    let mut summary = Table::new(vec![
        "scheme".into(),
        "no CS Tot GMean %".into(),
        "with CS Tot GMean %".into(),
        "degradation (points)".into(),
        "gcc degradation (points)".into(),
    ]);
    for pair in results.chunks(2) {
        let (no_cs, with_cs) = (&pair[0], &pair[1]);
        let gcc_no = no_cs.accuracy_of("gcc").unwrap_or(f64::NAN);
        let gcc_with = with_cs.accuracy_of("gcc").unwrap_or(f64::NAN);
        summary.push_row(vec![
            no_cs.scheme.clone(),
            format_accuracy(Some(no_cs.total_gmean())),
            format_accuracy(Some(with_cs.total_gmean())),
            format!("{:.2}", 100.0 * (no_cs.total_gmean() - with_cs.total_gmean())),
            format!("{:.2}", 100.0 * (gcc_no - gcc_with)),
        ]);
    }
    ctx.emit("fig9_summary", "Figure 9: context-switch degradation", &summary);
}

/// The plan behind [`fig10`].
pub fn fig10_plan() -> Plan {
    let configs: Vec<SchemeConfig> = BhtConfig::FIGURE10
        .iter()
        .map(|&bht| SchemeConfig::pag(12).with_bht(bht).with_context_switch(true))
        .collect();
    Plan::suites(&configs, &SimConfig::paper_context_switch())
}

/// Figure 10: effect of the BHT implementation on PAg (with context
/// switches, as in the paper).
pub fn fig10(ctx: &Ctx) {
    let table = suite_table(&run_suites(ctx, &fig10_plan()));
    ctx.emit("fig10", "Figure 10: effect of BHT implementation on PAg", &table);
}

/// The plan behind [`fig11`].
pub fn fig11_plan() -> Plan {
    let configs = [
        SchemeConfig::pag(12),
        SchemeConfig::psg(12),
        SchemeConfig::gsg(18),
        SchemeConfig::btb(Automaton::A2),
        SchemeConfig::profiling(),
        SchemeConfig::btb(Automaton::LastTime),
        SchemeConfig::btfn(),
        SchemeConfig::always_taken(),
    ];
    Plan::suites(&configs, &SimConfig::no_context_switch())
}

/// Figure 11: the shoot-out against every other scheme.
pub fn fig11(ctx: &Ctx) {
    let table = suite_table(&run_suites(ctx, &fig11_plan()));
    ctx.emit("fig11", "Figure 11: comparison of branch prediction schemes", &table);
}

/// Registers the custom (outside-the-catalog) predictors that serialized
/// plans may reference by name — currently the gshare pair of the
/// extensions artifact. Idempotent; called by the drivers that need the
/// builders and by the `exec`/`serve` commands before they execute
/// client-supplied plans.
pub fn register_custom_predictors() {
    use tlabp_core::registry;
    use tlabp_core::schemes::Gshare;

    // gshare lives outside the Table 3 catalog, so it enters the engine
    // through the predictor registry rather than a SchemeConfig.
    for bits in [12u32, 16] {
        registry::register(&format!("gshare({bits})"), move || {
            Box::new(Gshare::new(bits, Automaton::A2))
        });
    }
}

/// The plan behind [`extensions`]: a flat benchmark-major
/// (benchmark × variant) matrix.
pub fn extensions_plan() -> Plan {
    Benchmark::ALL
        .iter()
        .flat_map(|benchmark| {
            [
                Job::scheme(SchemeConfig::gag(12), benchmark),
                Job::custom("gshare(12)", benchmark),
                Job::scheme(SchemeConfig::gag(16), benchmark),
                Job::custom("gshare(16)", benchmark),
            ]
        })
        .collect()
}

/// Extension beyond the paper: the gshare predictor attacks the residual
/// global-table interference the paper's conclusion identifies ("we are
/// examining that 3 percent"). Compare it with GAg at equal table sizes.
pub fn extensions(ctx: &Ctx) {
    register_custom_predictors();

    let mut table = Table::new(vec![
        "benchmark".into(),
        "GAg(12) %".into(),
        "gshare(12) %".into(),
        "GAg(16) %".into(),
        "gshare(16) %".into(),
    ]);
    let variants = 4usize;
    let accuracies = ctx.run(&extensions_plan()).accuracies();
    for (benchmark, row) in Benchmark::ALL.iter().zip(accuracies.chunks(variants)) {
        let mut cells = vec![benchmark.name().to_owned()];
        cells.extend(
            row.iter().map(|a| format!("{:.2}", 100.0 * a.expect("all variants measurable"))),
        );
        table.push_row(cells);
    }
    ctx.emit(
        "extensions_gshare",
        "Extension: gshare (address-hashed global history) vs GAg",
        &table,
    );
}

/// The plan behind [`calibrate`].
pub fn calibrate_plan() -> Plan {
    let configs = [
        SchemeConfig::pag(12),
        SchemeConfig::pag(12).with_bht(BhtConfig::Ideal),
        SchemeConfig::pap(6).with_bht(BhtConfig::Ideal),
        SchemeConfig::gag(12),
        SchemeConfig::pap(6),
        SchemeConfig::btb(Automaton::A2),
        SchemeConfig::btfn(),
        SchemeConfig::always_taken(),
    ];
    Plan::suites(&configs, &SimConfig::no_context_switch())
}

/// Calibration helper (not a paper artifact): a quick per-benchmark
/// accuracy readout for a handful of reference schemes.
pub fn calibrate(ctx: &Ctx) {
    let table = suite_table(&run_suites(ctx, &calibrate_plan()));
    ctx.emit("calibrate", "Calibration readout", &table);
}
