//! Misprediction characterization — the paper's concluding direction.
//!
//! "Finally, we should point out that we feel our 97 percent prediction
//! accuracy figures are not good enough ... We are examining that 3
//! percent to try to characterize it and hopefully reduce it." This
//! artifact performs that examination for PAg(12): every misprediction is
//! attributed to one of the causes visible in the predictor's state at
//! prediction time. The attribution loop itself lives in the execution
//! engine ([`MetricSet::miss_breakdown`]); this driver only declares the
//! plan and formats the buckets.
//!
//! [`MetricSet::miss_breakdown`]: tlabp_sim::plan::MetricSet

use tlabp_core::config::SchemeConfig;
use tlabp_sim::metrics::MissBreakdown;
use tlabp_sim::plan::{Job, MetricSet, Plan};
use tlabp_sim::report::Table;
use tlabp_workloads::Benchmark;

use crate::Ctx;

/// The plan behind [`analysis`]: PAg(12) on every benchmark with the
/// misprediction-attribution metric enabled.
pub fn analysis_plan() -> Plan {
    let metrics = MetricSet { miss_breakdown: true, fetch: None };
    Benchmark::ALL
        .iter()
        .map(|benchmark| Job::scheme(SchemeConfig::pag(12), benchmark).with_metrics(metrics))
        .collect()
}

/// Characterize the residual mispredictions of PAg(12) per benchmark.
pub fn analysis(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "mispredictions".into(),
        "miss rate %".into(),
        "BHT miss %".into(),
        "weak pattern %".into(),
        "interference %".into(),
        "intrinsic noise %".into(),
    ]);

    let results = ctx.run(&analysis_plan());

    let mut total = MissBreakdown::default();
    let mut total_mispredictions = 0u64;
    let mut total_predictions = 0u64;
    for (job, outcome) in &results {
        let measured = outcome.metrics().expect("PAg runs everywhere");
        let buckets = measured.miss_breakdown.expect("PAg yields a breakdown");
        let mispredictions = measured.sim.predictions - measured.sim.correct;
        let pct = |n: u64| format!("{:.1}", 100.0 * n as f64 / mispredictions.max(1) as f64);
        table.push_row(vec![
            job.trace.benchmark.name().into(),
            mispredictions.to_string(),
            format!("{:.2}", 100.0 * measured.sim.miss_rate()),
            pct(buckets.bht_miss),
            pct(buckets.weak_pattern),
            pct(buckets.interference),
            pct(buckets.noise),
        ]);
        total.accumulate(&buckets);
        total_mispredictions += mispredictions;
        total_predictions += measured.sim.predictions;
    }
    let pct = |n: u64| format!("{:.1}", 100.0 * n as f64 / total_mispredictions.max(1) as f64);
    table.push_row(vec![
        "TOTAL".into(),
        total_mispredictions.to_string(),
        format!("{:.2}", 100.0 * total_mispredictions as f64 / total_predictions.max(1) as f64),
        pct(total.bht_miss),
        pct(total.weak_pattern),
        pct(total.interference),
        pct(total.noise),
    ]);
    ctx.emit(
        "analysis_mispredictions",
        "Analysis: characterizing PAg(12)'s residual mispredictions (the paper's 'examining that 3 percent')",
        &table,
    );

    // Sanity footer: the sum of buckets must equal the misprediction count
    // (the engine asserts this per benchmark; re-check the totals here).
    assert_eq!(
        total.total(),
        total_mispredictions,
        "every misprediction is classified exactly once"
    );
}
