//! Misprediction characterization — the paper's concluding direction.
//!
//! "Finally, we should point out that we feel our 97 percent prediction
//! accuracy figures are not good enough ... We are examining that 3
//! percent to try to characterize it and hopefully reduce it." This
//! artifact performs that examination for PAg(12): every misprediction is
//! attributed to one of three causes visible in the predictor's state at
//! prediction time.

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::predictor::BranchPredictor;
use tlabp_core::schemes::Pag;
use tlabp_sim::report::Table;
use tlabp_workloads::{Benchmark, DataSet};

use crate::Ctx;

#[derive(Default)]
struct MissBuckets {
    /// The branch's history register was not resident: the prediction came
    /// from a fresh all-ones history (cold start / BHT capacity).
    bht_miss: u64,
    /// The PHT entry was in a weak state (1 or 2): the pattern was still
    /// training or oscillating.
    weak_pattern: u64,
    /// The PHT entry was saturated (0 or 3) yet wrong, and the entry's
    /// most recent update came from a *different* static branch: pattern
    /// interference — the component gshare later attacked.
    interference: u64,
    /// Saturated yet wrong with the entry last updated by this same
    /// branch: intrinsic data-dependent noise.
    noise: u64,
}

/// Characterize the residual mispredictions of PAg(12) per benchmark.
pub fn analysis(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "mispredictions".into(),
        "miss rate %".into(),
        "BHT miss %".into(),
        "weak pattern %".into(),
        "interference %".into(),
        "intrinsic noise %".into(),
    ]);

    let mut total = MissBuckets::default();
    let mut total_mispredictions = 0u64;
    let mut total_predictions = 0u64;
    for benchmark in &Benchmark::ALL {
        let trace = ctx.store().get(benchmark, DataSet::Testing);
        let mut predictor = Pag::new(12, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let mut buckets = MissBuckets::default();
        let mut mispredictions = 0u64;
        let mut predictions = 0u64;
        // Shadow of the global PHT: which static branch last updated each
        // entry (for interference attribution).
        let mut last_writer: Vec<Option<u64>> = vec![None; 1 << 12];
        for branch in trace.conditional_branches() {
            let diagnostics = predictor.predict_diagnosed(branch);
            predictor.update(branch);
            predictions += 1;
            if diagnostics.predicted_taken != branch.taken {
                mispredictions += 1;
                if !diagnostics.bht_hit {
                    buckets.bht_miss += 1;
                } else if matches!(diagnostics.pattern_state.value(), 1 | 2) {
                    buckets.weak_pattern += 1;
                } else if last_writer[diagnostics.pattern]
                    .is_some_and(|writer| writer != branch.pc)
                {
                    buckets.interference += 1;
                } else {
                    buckets.noise += 1;
                }
            }
            last_writer[diagnostics.pattern] = Some(branch.pc);
        }
        let pct = |n: u64| format!("{:.1}", 100.0 * n as f64 / mispredictions.max(1) as f64);
        table.push_row(vec![
            benchmark.name().into(),
            mispredictions.to_string(),
            format!("{:.2}", 100.0 * mispredictions as f64 / predictions.max(1) as f64),
            pct(buckets.bht_miss),
            pct(buckets.weak_pattern),
            pct(buckets.interference),
            pct(buckets.noise),
        ]);
        total.bht_miss += buckets.bht_miss;
        total.weak_pattern += buckets.weak_pattern;
        total.interference += buckets.interference;
        total.noise += buckets.noise;
        total_mispredictions += mispredictions;
        total_predictions += predictions;
    }
    let pct = |n: u64| format!("{:.1}", 100.0 * n as f64 / total_mispredictions.max(1) as f64);
    table.push_row(vec![
        "TOTAL".into(),
        total_mispredictions.to_string(),
        format!(
            "{:.2}",
            100.0 * total_mispredictions as f64 / total_predictions.max(1) as f64
        ),
        pct(total.bht_miss),
        pct(total.weak_pattern),
        pct(total.interference),
        pct(total.noise),
    ]);
    ctx.emit(
        "analysis_mispredictions",
        "Analysis: characterizing PAg(12)'s residual mispredictions (the paper's 'examining that 3 percent')",
        &table,
    );

    // Sanity footer: the sum of buckets must equal the misprediction count.
    assert_eq!(
        total.bht_miss + total.weak_pattern + total.interference + total.noise,
        total_mispredictions,
        "every misprediction is classified exactly once"
    );
}
