//! Throughput harness: reference baseline vs the engine's fast paths.
//!
//! Not a paper artifact. Two sections, both built as plans on the
//! execution engine:
//!
//! **Single scheme** — the full-suite PAg(12) evaluation (the workhorse
//! configuration of Figures 5–11) measured two ways:
//!
//! * **reference** — each job forced onto the reference path (one boxed
//!   `dyn BranchPredictor` per benchmark, the event-dispatching
//!   simulation loop over the full trace), executed on a one-worker pool
//!   so cells run strictly one after another: the pre-sweep code path;
//! * **engine** — the same plan lowered normally, which takes the
//!   monomorphized packed-conditional fast path per cell on the global
//!   worker pool.
//!
//! **Multi scheme** — the full catalog sweep (every Table 3
//! configuration on every benchmark), the shape every real experiment
//! driver has, measured two ways:
//!
//! * **per-cell** — fusion disabled ([`Job::fuse`] off), so every job
//!   runs its own pass over the packed stream: the pre-fusion engine;
//! * **fused** — the default lowering, which groups the plan's jobs by
//!   trace and runs batched passes over the pc-interned stream
//!   ([`tlabp_sim::runner::simulate_fused`]).
//!
//! All runs start from warmed trace caches, so the numbers compare
//! simulation throughput, not VM trace generation. Within each section
//! the throughput numerator is identical across modes (trace events for
//! the single-scheme pair, measured predictions for the catalog pair),
//! so each reported speedup equals the wall-clock ratio. Results print
//! as tables and land in `results/BENCH_sweep.json`.
//!
//! Timing iterations default to 3 (best-of); the `TLABP_BENCH_ITERS`
//! environment variable overrides (CI smoke runs set 1).

use std::time::Instant;

use tlabp_core::config::SchemeConfig;
use tlabp_sim::engine::{execute, execute_on};
use tlabp_sim::plan::{Job, Plan};
use tlabp_sim::report::Table;
use tlabp_sim::runner::SimConfig;
use tlabp_sim::SweepPool;
use tlabp_workloads::{Benchmark, DataSet};

use crate::tables::all_table3_configs;
use crate::Ctx;

/// Fastest of `n` timed runs, in seconds.
fn best_of(n: u32, mut body: impl FnMut()) -> f64 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Timing iterations: `TLABP_BENCH_ITERS` when it holds a positive
/// integer, else 3.
fn bench_iterations() -> u32 {
    std::env::var("TLABP_BENCH_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// `cargo run -p tlabp-experiments --release -- bench`
pub fn bench(ctx: &Ctx) {
    let config = SchemeConfig::pag(12);
    let iterations = bench_iterations();
    let threads = SweepPool::global().threads();

    // ---- Single scheme: full-suite PAg(12), reference vs engine. ----

    // Warm every cache both modes touch.
    let mut total_events = 0u64;
    let mut total_conditionals = 0u64;
    for benchmark in &Benchmark::ALL {
        total_events += ctx.store().get(benchmark, DataSet::Testing).len() as u64;
        total_conditionals += ctx.store().get_packed(benchmark, DataSet::Testing).len() as u64;
    }

    let fast_plan: Plan =
        Benchmark::ALL.iter().map(|benchmark| Job::scheme(config, benchmark)).collect();
    let reference_plan: Plan = Benchmark::ALL
        .iter()
        .map(|benchmark| Job::scheme(config, benchmark).with_reference_path(true))
        .collect();

    let sequential_pool = SweepPool::new(1);
    let sequential_secs = best_of(iterations, || {
        let results = execute_on(&sequential_pool, &reference_plan, ctx.store());
        assert!(results.iter().all(|(_, o)| o.accuracy().is_some()));
    });
    let sweep_secs = best_of(iterations, || {
        let results = execute(&fast_plan, ctx.store());
        assert_eq!(results.len(), Benchmark::ALL.len());
    });

    let seq_eps = total_events as f64 / sequential_secs;
    let sweep_eps = total_events as f64 / sweep_secs;
    let sweep_speedup = sequential_secs / sweep_secs;

    let mut table = Table::new(vec![
        "mode".into(),
        format!("seconds (best of {iterations})"),
        "events/sec".into(),
        "speedup".into(),
    ]);
    table.push_row(vec![
        "sequential dyn".into(),
        format!("{sequential_secs:.3}"),
        format!("{seq_eps:.0}"),
        "1.00".into(),
    ]);
    table.push_row(vec![
        format!("sweep ({threads} threads)"),
        format!("{sweep_secs:.3}"),
        format!("{sweep_eps:.0}"),
        format!("{sweep_speedup:.2}"),
    ]);
    ctx.emit("BENCH_sweep_table", "Sweep throughput: full-suite PAg(12)", &table);

    // ---- Multi scheme: full catalog sweep, per-cell vs fused. ----

    let configs = all_table3_configs();
    let fused_plan = Plan::suites(&configs, &SimConfig::no_context_switch());
    let cell_plan: Plan =
        fused_plan.jobs().iter().map(|job| job.clone().with_fusion(false)).collect();

    // One throwaway execution warms the training traces and interned
    // streams and supplies the shared numerator: the predictions every
    // measured job makes (identical across modes by construction —
    // fusion never changes results, asserted by the differential suite).
    let warm = execute(&fused_plan, ctx.store());
    let multi_predictions: u64 =
        warm.iter().filter_map(|(_, o)| o.metrics()).map(|m| m.sim.predictions).sum();

    let cell_secs = best_of(iterations, || {
        let results = execute(&cell_plan, ctx.store());
        assert_eq!(results.len(), cell_plan.len());
    });
    let fused_secs = best_of(iterations, || {
        let results = execute(&fused_plan, ctx.store());
        assert_eq!(results.len(), fused_plan.len());
    });

    let cell_eps = multi_predictions as f64 / cell_secs;
    let fused_eps = multi_predictions as f64 / fused_secs;
    let fused_speedup = cell_secs / fused_secs;

    let mut fused_table = Table::new(vec![
        "mode".into(),
        format!("seconds (best of {iterations})"),
        "predictions/sec".into(),
        "speedup".into(),
    ]);
    fused_table.push_row(vec![
        format!("per-cell ({threads} threads)"),
        format!("{cell_secs:.3}"),
        format!("{cell_eps:.0}"),
        "1.00".into(),
    ]);
    fused_table.push_row(vec![
        format!("fused ({threads} threads)"),
        format!("{fused_secs:.3}"),
        format!("{fused_eps:.0}"),
        format!("{fused_speedup:.2}"),
    ]);
    ctx.emit(
        "BENCH_fused_table",
        &format!(
            "Fused trace passes: {} Table 3 configs x {} benchmarks",
            configs.len(),
            Benchmark::ALL.len()
        ),
        &fused_table,
    );

    let json = format!(
        "{{\n  \"iterations\": {iterations},\n  \
         \"sweep_threads\": {threads},\n  \
         \"single_scheme\": {{\n    \
           \"benchmark\": \"full-suite PAg(12), no context switches\",\n    \
           \"total_trace_events\": {total_events},\n    \
           \"total_conditional_branches\": {total_conditionals},\n    \
           \"sequential\": {{ \"seconds\": {sequential_secs:.6}, \"events_per_sec\": {seq_eps:.1} }},\n    \
           \"sweep\": {{ \"seconds\": {sweep_secs:.6}, \"events_per_sec\": {sweep_eps:.1} }},\n    \
           \"speedup\": {sweep_speedup:.3}\n  }},\n  \
         \"multi_scheme\": {{\n    \
           \"benchmark\": \"all Table 3 configs x all benchmarks, no context switches\",\n    \
           \"configs\": {n_configs},\n    \
           \"jobs\": {n_jobs},\n    \
           \"measured_predictions\": {multi_predictions},\n    \
           \"cell\": {{ \"seconds\": {cell_secs:.6}, \"events_per_sec\": {cell_eps:.1} }},\n    \
           \"fused\": {{ \"seconds\": {fused_secs:.6}, \"events_per_sec\": {fused_eps:.1} }},\n    \
           \"speedup\": {fused_speedup:.3}\n  }}\n}}\n",
        n_configs = configs.len(),
        n_jobs = fused_plan.len(),
    );
    ctx.emit_raw("BENCH_sweep.json", &json);
}
