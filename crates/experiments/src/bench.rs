//! Throughput harness: reference baseline vs the engine's fast path.
//!
//! Not a paper artifact. Measures the full-suite PAg(12) evaluation —
//! the workhorse configuration of Figures 5–11 — two ways, both as plans
//! on the execution engine:
//!
//! * **reference** — each job forced onto the reference path (one boxed
//!   `dyn BranchPredictor` per benchmark, the event-dispatching
//!   simulation loop over the full trace), executed on a one-worker pool
//!   so cells run strictly one after another: the pre-sweep code path;
//! * **engine** — the same plan lowered normally, which takes the
//!   monomorphized packed-conditional fast path per cell on the global
//!   worker pool.
//!
//! Both runs start from warmed trace caches, so the numbers compare
//! simulation throughput, not VM trace generation. Results print as a
//! table and land in `results/BENCH_sweep.json`; throughput is reported
//! in simulated trace events per second (same numerator for both modes,
//! so the speedup equals the wall-clock ratio).

use std::time::Instant;

use tlabp_core::config::SchemeConfig;
use tlabp_sim::engine::{execute, execute_on};
use tlabp_sim::plan::{Job, Plan};
use tlabp_sim::report::Table;
use tlabp_sim::SweepPool;
use tlabp_workloads::{Benchmark, DataSet};

use crate::Ctx;

/// Fastest of `n` timed runs, in seconds.
fn best_of(n: u32, mut body: impl FnMut()) -> f64 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// `cargo run -p tlabp-experiments --release -- bench`
pub fn bench(ctx: &Ctx) {
    let config = SchemeConfig::pag(12);
    let iterations = 3;

    // Warm every cache both modes touch.
    let mut total_events = 0u64;
    let mut total_conditionals = 0u64;
    for benchmark in &Benchmark::ALL {
        total_events += ctx.store().get(benchmark, DataSet::Testing).len() as u64;
        total_conditionals += ctx.store().get_packed(benchmark, DataSet::Testing).len() as u64;
    }

    let fast_plan: Plan =
        Benchmark::ALL.iter().map(|benchmark| Job::scheme(config, benchmark)).collect();
    let reference_plan: Plan = Benchmark::ALL
        .iter()
        .map(|benchmark| Job::scheme(config, benchmark).with_reference_path(true))
        .collect();

    let sequential_pool = SweepPool::new(1);
    let sequential_secs = best_of(iterations, || {
        let results = execute_on(&sequential_pool, &reference_plan, ctx.store());
        assert!(results.iter().all(|(_, o)| o.accuracy().is_some()));
    });
    let sweep_secs = best_of(iterations, || {
        let results = execute(&fast_plan, ctx.store());
        assert_eq!(results.len(), Benchmark::ALL.len());
    });

    let seq_eps = total_events as f64 / sequential_secs;
    let sweep_eps = total_events as f64 / sweep_secs;
    let speedup = sequential_secs / sweep_secs;
    let threads = SweepPool::global().threads();

    let mut table = Table::new(vec![
        "mode".into(),
        "seconds (best of 3)".into(),
        "events/sec".into(),
        "speedup".into(),
    ]);
    table.push_row(vec![
        "sequential dyn".into(),
        format!("{sequential_secs:.3}"),
        format!("{seq_eps:.0}"),
        "1.00".into(),
    ]);
    table.push_row(vec![
        format!("sweep ({threads} threads)"),
        format!("{sweep_secs:.3}"),
        format!("{sweep_eps:.0}"),
        format!("{speedup:.2}"),
    ]);
    ctx.emit("BENCH_sweep_table", "Sweep throughput: full-suite PAg(12)", &table);

    let json = format!(
        "{{\n  \"benchmark\": \"full-suite PAg(12), no context switches\",\n  \
         \"iterations\": {iterations},\n  \
         \"sweep_threads\": {threads},\n  \
         \"total_trace_events\": {total_events},\n  \
         \"total_conditional_branches\": {total_conditionals},\n  \
         \"sequential\": {{ \"seconds\": {sequential_secs:.6}, \"events_per_sec\": {seq_eps:.1} }},\n  \
         \"sweep\": {{ \"seconds\": {sweep_secs:.6}, \"events_per_sec\": {sweep_eps:.1} }},\n  \
         \"speedup\": {speedup:.3}\n}}\n"
    );
    ctx.emit_raw("BENCH_sweep.json", &json);
}
