//! Throughput harness: reference baseline vs the engine's fast paths.
//!
//! Not a paper artifact. Seven sections, each runnable alone via
//! `--section <name>` (mirroring the ARTIFACTS registry dispatch):
//!
//! **single** — the full-suite PAg(12) evaluation (the workhorse
//! configuration of Figures 5–11) measured two ways:
//!
//! * **reference** — each job forced onto the reference path (one boxed
//!   `dyn BranchPredictor` per benchmark, the event-dispatching
//!   simulation loop over the full trace), executed on a one-worker pool
//!   so cells run strictly one after another: the pre-sweep code path;
//! * **engine** — the same plan lowered normally on the global worker
//!   pool.
//!
//! **multi** — the full catalog sweep (every Table 3 configuration on
//! every benchmark), the shape every real experiment driver has,
//! measured two ways:
//!
//! * **per-cell** — fusion disabled ([`Job::fuse`] off), so every job
//!   runs its own pass over the packed stream: the pre-fusion engine;
//! * **fused** — replay disabled ([`Job::replay`] off) but fusion on, so
//!   the plan's jobs group by trace into batched passes over the
//!   pc-interned stream ([`tlabp_sim::runner::simulate_fused`]): the
//!   PR 3 engine.
//!
//! **replay** — the automaton-ablation sweep (every Figure 5 automaton
//! on PAg(12) plus the PSg(12) preset second level, all sharing the
//! paper-default `BHT(512,4,12)` first level, on every benchmark),
//! measured three ways:
//!
//! * **fused** — replay disabled: every job re-walks the shared BHT
//!   inside its fused batch (the PR 3 path, this section's baseline);
//! * **replay scalar** — the transposed replay lowering forced onto the
//!   scalar per-member kernel body
//!   ([`tlabp_core::SimdMode::Scalar`]): one stream walk for the
//!   whole batch, no bit-slicing — the PR 4-equivalent path;
//! * **replay** — the default lowering: the same single stream walk
//!   through the bit-sliced SWAR/`std::arch` kernel
//!   ([`tlabp_sim::runner::simulate_replay_transposed`]), body chosen
//!   by `TLABP_SIMD` (default: runtime feature detection).
//!
//! **cold_start** — trace *ingestion* rather than simulation: VM
//! generation plus form derivation for the ablation plan, measured lazy
//! and serial (no cache), through the engine's parallel prefetch
//! barrier, and as a warm disk-cache load
//! ([`tlabp_sim::TraceStore::with_cache_dir`]). Lands in
//! `results/BENCH_cold_start.csv`.
//!
//! **scaling** — one big replay batch (128 same-width members: eight
//! transposed words per PHT row, the full AVX-512 step) swept over
//! worker count 1..=host cores × forced kernel tier, with the engine's
//! intra-batch split (`TLABP_SPLIT`, default auto) fanning the batch's
//! member-words across the pool. Every cell's results are asserted
//! bit-identical to the warm reference — worker count, kernel tier and
//! split are throughput knobs, never results knobs. Lands in
//! `results/BENCH_scaling.csv`; the peak aggregate rate folds into
//! `BENCH_sweep.json`.
//!
//! **service** — the sweep daemon under 64 concurrent clients, the
//! event-driven connection core ([`tlabp_service::event`]) against the
//! thread-per-connection baseline, in two regimes:
//!
//! * **cold** — memoization disabled, one cheap job per plan: every
//!   submission simulates, so the cell is simulation-bound and the
//!   backends should tie;
//! * **memo** — a catalog-wide 27-job plan submitted repeatedly after
//!   one warm execution: every timed submission is a memo hit, so the
//!   cell isolates the connection-handling asymmetry (the event core
//!   answers hits from the raw payload without parsing the plan and
//!   writes response frames in readiness-sized batches; the threaded
//!   loop parses and re-renders every plan and flushes every frame).
//!
//! Every timed response is `read_exact` into a buffer and byte-compared
//! against frames encoded from an in-process `execute` of the same plan
//! — throughput numbers only count if the daemon's answers are
//! bit-identical. Lands in `results/BENCH_service.csv`; the memo-hit
//! event-vs-threaded speedup folds into `BENCH_sweep.json`.
//!
//! **stream** — chunked streaming replay
//! ([`tlabp_sim::StreamCursor`]) against the fully hydrated walk, on a
//! pattern stream tiled to more than 4x the streaming window so the
//! bounded-memory claim is actually exercised: the stream is persisted
//! as a many-chunk v3 artifact, replayed once hydrated and once through
//! the cursor (results asserted bit-identical), and the cursor's peak
//! resident bytes — tracked by the store's [`tlabp_sim::StreamWindow`]
//! gauge — are reported next to the window cap they must stay under.
//! Lands in `results/BENCH_stream.csv`; the streamed-vs-hydrated
//! throughput ratio and the peak/cap pair fold into `BENCH_sweep.json`.
//!
//! Every bench artifact (the CSVs and `BENCH_sweep.json`) records the
//! measuring host's facts — core count, pool width, requested and
//! detected/selected kernel tier — so a committed number carries the
//! hardware context that bounds it.
//!
//! All other runs start from warmed trace caches (including materialized
//! pattern streams), so the numbers compare simulation throughput, not
//! VM trace generation or stream derivation. Within each section the
//! throughput numerator is identical across modes (trace events for the
//! single-scheme pair, measured predictions for the other two), so each
//! reported speedup equals the wall-clock ratio. Results print as
//! tables; a full (unfiltered) run lands in `results/BENCH_sweep.json`.
//! Every run ends with the per-form cache-bytes report, warning when the
//! total exceeds the `TLABP_CACHE_BYTES` soft cap (default 1 GiB).
//!
//! Timing iterations default to 3 (best-of); the `TLABP_BENCH_ITERS`
//! environment variable overrides (CI smoke runs set 1).

use std::time::Instant;

use tlabp_core::automaton::Automaton;
use tlabp_core::config::SchemeConfig;
use tlabp_core::SimdMode;
use tlabp_sim::engine::{execute, execute_on, execute_with, prefetch_on, ExecOptions};
use tlabp_sim::plan::{Job, Plan};
use tlabp_sim::report::Table;
use tlabp_sim::runner::SimConfig;
use tlabp_sim::{SweepPool, TraceStore};
use tlabp_workloads::{Benchmark, DataSet};

use crate::tables::all_table3_configs;
use crate::Ctx;

/// Fastest of `n` timed runs, in seconds.
fn best_of(n: u32, mut body: impl FnMut()) -> f64 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Timing iterations: `TLABP_BENCH_ITERS` when it holds a positive
/// integer, else 3.
fn bench_iterations() -> u32 {
    std::env::var("TLABP_BENCH_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Soft cap for the trace-cache footprint report: `TLABP_CACHE_BYTES`
/// when it holds a positive integer (bytes), else 1 GiB.
fn cache_bytes_cap() -> usize {
    std::env::var("TLABP_CACHE_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1 << 30)
}

/// A bench section: runs its measurement and returns the JSON fragment
/// (a `"name": {...}` member) it contributes to `BENCH_sweep.json`.
type Section = fn(&Ctx, u32, usize) -> String;

/// The registered bench sections, in run order.
const SECTIONS: [(&str, Section); 7] = [
    ("single", single_section),
    ("multi", multi_section),
    ("replay", replay_section),
    ("cold_start", cold_start_section),
    ("scaling", scaling_section),
    ("service", service_section),
    ("stream", stream_section),
];

/// The measuring host's core count.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// The host facts every bench artifact records: core count, pool width,
/// and the requested vs detected/selected replay kernel tier.
fn host_meta(threads: usize) -> Vec<(&'static str, String)> {
    let mode = SimdMode::from_env();
    vec![
        ("host_cores", host_cores().to_string()),
        ("pool_threads", threads.to_string()),
        ("simd_requested", mode.name().to_owned()),
        ("simd_selected", mode.resolved_name().to_owned()),
    ]
}

/// `cargo run -p tlabp-experiments --release -- bench [--section NAME]`
pub fn bench(ctx: &Ctx) {
    let iterations = bench_iterations();
    let threads = SweepPool::global().threads();

    match ctx.section() {
        Some(name) => match SECTIONS.iter().find(|(section, _)| *section == name) {
            Some((_, run)) => {
                run(ctx, iterations, threads);
                println!("[section {name:?} only: not rewriting BENCH_sweep.json]\n");
            }
            None => {
                eprintln!("unknown bench section {name:?}");
                eprintln!("sections: {}", SECTIONS.map(|(section, _)| section).join(", "));
                std::process::exit(2);
            }
        },
        None => {
            let fragments: Vec<String> =
                SECTIONS.iter().map(|(_, run)| run(ctx, iterations, threads)).collect();
            let mode = SimdMode::from_env();
            let json = format!(
                "{{\n  \"iterations\": {iterations},\n  \
                 \"sweep_threads\": {threads},\n  \
                 \"host_cores\": {cores},\n  \
                 \"simd_requested\": \"{requested}\",\n  \
                 \"simd_selected\": \"{selected}\",\n{}\n}}\n",
                fragments.join(",\n"),
                cores = host_cores(),
                requested = mode.name(),
                selected = mode.resolved_name(),
            );
            ctx.emit_raw("BENCH_sweep.json", &json);
        }
    }

    report_cache_bytes(ctx);
}

/// Single scheme: full-suite PAg(12), reference vs engine.
fn single_section(ctx: &Ctx, iterations: u32, threads: usize) -> String {
    let config = SchemeConfig::pag(12);

    // Warm every cache both modes touch.
    let mut total_events = 0u64;
    let mut total_conditionals = 0u64;
    for benchmark in &Benchmark::ALL {
        total_events += ctx.store().get(benchmark, DataSet::Testing).len() as u64;
        total_conditionals += ctx.store().get_packed(benchmark, DataSet::Testing).len() as u64;
    }

    let fast_plan: Plan =
        Benchmark::ALL.iter().map(|benchmark| Job::scheme(config, benchmark)).collect();
    let reference_plan: Plan = Benchmark::ALL
        .iter()
        .map(|benchmark| Job::scheme(config, benchmark).with_reference_path(true))
        .collect();

    let sequential_pool = SweepPool::new(1);
    let sequential_secs = best_of(iterations, || {
        let results = execute_on(&sequential_pool, &reference_plan, ctx.store());
        assert!(results.iter().all(|(_, o)| o.accuracy().is_some()));
    });
    let sweep_secs = best_of(iterations, || {
        let results = execute(&fast_plan, ctx.store());
        assert_eq!(results.len(), Benchmark::ALL.len());
    });

    let seq_eps = total_events as f64 / sequential_secs;
    let sweep_eps = total_events as f64 / sweep_secs;
    let sweep_speedup = sequential_secs / sweep_secs;

    let mut table = Table::new(vec![
        "mode".into(),
        format!("seconds (best of {iterations})"),
        "events/sec".into(),
        "speedup".into(),
    ]);
    table.push_row(vec![
        "sequential dyn".into(),
        format!("{sequential_secs:.3}"),
        format!("{seq_eps:.0}"),
        "1.00".into(),
    ]);
    table.push_row(vec![
        format!("sweep ({threads} threads)"),
        format!("{sweep_secs:.3}"),
        format!("{sweep_eps:.0}"),
        format!("{sweep_speedup:.2}"),
    ]);
    ctx.emit("BENCH_sweep_table", "Sweep throughput: full-suite PAg(12)", &table);

    format!(
        "  \"single_scheme\": {{\n    \
           \"benchmark\": \"full-suite PAg(12), no context switches\",\n    \
           \"total_trace_events\": {total_events},\n    \
           \"total_conditional_branches\": {total_conditionals},\n    \
           \"sequential\": {{ \"seconds\": {sequential_secs:.6}, \"events_per_sec\": {seq_eps:.1} }},\n    \
           \"sweep\": {{ \"seconds\": {sweep_secs:.6}, \"events_per_sec\": {sweep_eps:.1} }},\n    \
           \"speedup\": {sweep_speedup:.3}\n  }}"
    )
}

/// Multi scheme: full catalog sweep, per-cell vs fused.
fn multi_section(ctx: &Ctx, iterations: u32, threads: usize) -> String {
    let configs = all_table3_configs();
    // Replay off in both modes: this section isolates what fusion buys
    // over per-cell passes (the PR 3 comparison); the replay section
    // below measures what replay buys over fusion.
    let fused_plan: Plan = Plan::suites(&configs, &SimConfig::no_context_switch())
        .into_iter()
        .map(|job| job.with_replay(false))
        .collect();
    let cell_plan: Plan =
        fused_plan.jobs().iter().map(|job| job.clone().with_fusion(false)).collect();

    // One throwaway execution warms the training traces and interned
    // streams and supplies the shared numerator: the predictions every
    // measured job makes (identical across modes by construction —
    // fusion never changes results, asserted by the differential suite).
    let warm = execute(&fused_plan, ctx.store());
    let multi_predictions: u64 =
        warm.iter().filter_map(|(_, o)| o.metrics()).map(|m| m.sim.predictions).sum();

    let cell_secs = best_of(iterations, || {
        let results = execute(&cell_plan, ctx.store());
        assert_eq!(results.len(), cell_plan.len());
    });
    let fused_secs = best_of(iterations, || {
        let results = execute(&fused_plan, ctx.store());
        assert_eq!(results.len(), fused_plan.len());
    });

    let cell_eps = multi_predictions as f64 / cell_secs;
    let fused_eps = multi_predictions as f64 / fused_secs;
    let fused_speedup = cell_secs / fused_secs;

    let mut fused_table = Table::new(vec![
        "mode".into(),
        format!("seconds (best of {iterations})"),
        "predictions/sec".into(),
        "speedup".into(),
    ]);
    fused_table.push_row(vec![
        format!("per-cell ({threads} threads)"),
        format!("{cell_secs:.3}"),
        format!("{cell_eps:.0}"),
        "1.00".into(),
    ]);
    fused_table.push_row(vec![
        format!("fused ({threads} threads)"),
        format!("{fused_secs:.3}"),
        format!("{fused_eps:.0}"),
        format!("{fused_speedup:.2}"),
    ]);
    ctx.emit(
        "BENCH_fused_table",
        &format!(
            "Fused trace passes: {} Table 3 configs x {} benchmarks",
            configs.len(),
            Benchmark::ALL.len()
        ),
        &fused_table,
    );

    format!(
        "  \"multi_scheme\": {{\n    \
           \"benchmark\": \"all Table 3 configs x all benchmarks, no context switches\",\n    \
           \"configs\": {n_configs},\n    \
           \"jobs\": {n_jobs},\n    \
           \"measured_predictions\": {multi_predictions},\n    \
           \"cell\": {{ \"seconds\": {cell_secs:.6}, \"events_per_sec\": {cell_eps:.1} }},\n    \
           \"fused\": {{ \"seconds\": {fused_secs:.6}, \"events_per_sec\": {fused_eps:.1} }},\n    \
           \"speedup\": {fused_speedup:.3}\n  }}",
        n_configs = configs.len(),
        n_jobs = fused_plan.len(),
    )
}

/// Replay: the automaton-ablation sweep, fused vs pattern-stream replay.
fn replay_section(ctx: &Ctx, iterations: u32, threads: usize) -> String {
    // Every second-level variant of the paper-default first level: all
    // six automata (the five of Figure 5 plus the untrained preset bit)
    // on PAg(12). All six share BHT(512,4,12), so fused execution
    // already rides one driver walk per benchmark — the strongest
    // available baseline — and replay shares one materialized stream per
    // benchmark. The trained PSg variant is deliberately absent: both
    // modes would rebuild (re-train) it inside the timed region, adding
    // a constant that measures training, not the sweep.
    let configs: Vec<SchemeConfig> = Automaton::ALL
        .iter()
        .map(|&automaton| SchemeConfig::pag(12).with_automaton(automaton))
        .collect();
    let replay_plan = Plan::suites(&configs, &SimConfig::no_context_switch());
    let fused_plan: Plan =
        replay_plan.jobs().iter().map(|job| job.clone().with_replay(false)).collect();

    // Warm run on the replay lowering: generates traces and derives and
    // caches every pattern stream — so the timed runs below measure
    // replay, not derivation — and supplies the shared numerator (replay
    // is bit-identical to fusion, asserted by the differential suite).
    let warm = execute(&replay_plan, ctx.store());
    let replay_predictions: u64 =
        warm.iter().filter_map(|(_, o)| o.metrics()).map(|m| m.sim.predictions).sum();

    let fused_secs = best_of(iterations, || {
        let results = execute(&fused_plan, ctx.store());
        assert_eq!(results.len(), fused_plan.len());
    });
    let scalar_secs = best_of(iterations, || {
        let results = execute_with(
            SweepPool::global(),
            &replay_plan,
            ctx.store(),
            ExecOptions { simd: SimdMode::Scalar, ..ExecOptions::default() },
        );
        assert_eq!(results.len(), replay_plan.len());
    });
    let replay_secs = best_of(iterations, || {
        let results = execute(&replay_plan, ctx.store());
        assert_eq!(results.len(), replay_plan.len());
    });

    let fused_eps = replay_predictions as f64 / fused_secs;
    let scalar_eps = replay_predictions as f64 / scalar_secs;
    let replay_eps = replay_predictions as f64 / replay_secs;
    let scalar_speedup = fused_secs / scalar_secs;
    let replay_speedup = fused_secs / replay_secs;
    let simd_speedup = scalar_secs / replay_secs;

    let mut table = Table::new(vec![
        "mode".into(),
        format!("seconds (best of {iterations})"),
        "predictions/sec".into(),
        "speedup".into(),
    ]);
    table.push_row(vec![
        format!("fused ({threads} threads)"),
        format!("{fused_secs:.3}"),
        format!("{fused_eps:.0}"),
        "1.00".into(),
    ]);
    table.push_row(vec![
        format!("replay scalar ({threads} threads)"),
        format!("{scalar_secs:.3}"),
        format!("{scalar_eps:.0}"),
        format!("{scalar_speedup:.2}"),
    ]);
    table.push_row(vec![
        format!("replay simd ({threads} threads)"),
        format!("{replay_secs:.3}"),
        format!("{replay_eps:.0}"),
        format!("{replay_speedup:.2}"),
    ]);
    ctx.emit_with_meta(
        "BENCH_replay_table",
        &format!(
            "Pattern-stream replay: {} automaton ablations x {} benchmarks (simd vs scalar: {simd_speedup:.2}x)",
            configs.len(),
            Benchmark::ALL.len()
        ),
        &host_meta(threads),
        &table,
    );

    format!(
        "  \"replay\": {{\n    \
           \"benchmark\": \"automaton ablations on BHT(512,4,12) x all benchmarks, no context switches\",\n    \
           \"configs\": {n_configs},\n    \
           \"jobs\": {n_jobs},\n    \
           \"measured_predictions\": {replay_predictions},\n    \
           \"fused\": {{ \"seconds\": {fused_secs:.6}, \"events_per_sec\": {fused_eps:.1} }},\n    \
           \"replay_scalar\": {{ \"seconds\": {scalar_secs:.6}, \"events_per_sec\": {scalar_eps:.1} }},\n    \
           \"replay\": {{ \"seconds\": {replay_secs:.6}, \"events_per_sec\": {replay_eps:.1} }},\n    \
           \"simd_speedup\": {simd_speedup:.3},\n    \
           \"speedup\": {replay_speedup:.3}\n  }}",
        n_configs = configs.len(),
        n_jobs = replay_plan.len(),
    )
}

/// Cold start: trace ingestion (VM generation + form derivation) for the
/// automaton-ablation plan, measured three ways — lazy serial with no
/// cache at all, the engine's parallel prefetch barrier, and a warm
/// disk-cache load. Unlike the other sections, the interesting state here
/// is an *empty* store, so every timed iteration builds a fresh one.
fn cold_start_section(ctx: &Ctx, iterations: u32, threads: usize) -> String {
    let configs: Vec<SchemeConfig> = Automaton::ALL
        .iter()
        .map(|&automaton| SchemeConfig::pag(12).with_automaton(automaton))
        .collect();
    let plan = Plan::suites(&configs, &SimConfig::no_context_switch());

    // (a) Cold, serial: one worker generates and derives every form in
    // sequence — what every lazy first touch cost before the prefetch
    // barrier existed.
    let serial_pool = SweepPool::new(1);
    let cold_serial_secs = best_of(iterations, || {
        let cold = TraceStore::new();
        prefetch_on(&serial_pool, &plan, &cold);
        assert_eq!(cold.len(), Benchmark::ALL.len());
    });

    // (b) Cold, parallel: the same work fanned across the global pool by
    // the prefetch barrier, still without any disk cache.
    let prefetch_secs = best_of(iterations, || {
        let cold = TraceStore::new();
        prefetch_on(SweepPool::global(), &plan, &cold);
        assert_eq!(cold.len(), Benchmark::ALL.len());
    });

    // (c) Warm disk: populate an artifact directory once (untimed), then
    // time fresh stores hydrating from it — no VM, no derivation.
    let dir = std::env::temp_dir().join(format!("tlabp-bench-cold-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    prefetch_on(SweepPool::global(), &plan, &TraceStore::with_cache_dir(&dir));
    let warm_disk_secs = best_of(iterations, || {
        let warm = TraceStore::with_cache_dir(&dir);
        prefetch_on(SweepPool::global(), &plan, &warm);
        assert_eq!(warm.len(), Benchmark::ALL.len());
    });
    let disk_bytes = TraceStore::with_cache_dir(&dir).cache_bytes().disk;
    let _ = std::fs::remove_dir_all(&dir);

    let prefetch_speedup = cold_serial_secs / prefetch_secs;
    let warm_speedup = cold_serial_secs / warm_disk_secs;
    // The measured cores, recorded with the numbers: prefetch-vs-serial
    // speedup is bounded by this, so the figure is meaningless without it.
    let host_cores = host_cores();

    let mut table = Table::new(vec![
        "mode".into(),
        format!("seconds (best of {iterations})"),
        "speedup".into(),
    ]);
    table.push_row(vec![
        "cold VM, serial (1 thread)".into(),
        format!("{cold_serial_secs:.3}"),
        "1.00".into(),
    ]);
    table.push_row(vec![
        format!("cold VM, prefetch ({threads} threads)"),
        format!("{prefetch_secs:.3}"),
        format!("{prefetch_speedup:.2}"),
    ]);
    table.push_row(vec![
        "warm disk cache".into(),
        format!("{warm_disk_secs:.3}"),
        format!("{warm_speedup:.2}"),
    ]);
    ctx.emit_with_meta(
        "BENCH_cold_start",
        &format!(
            "Cold-start ingestion: {} benchmarks, {} disk-artifact bytes, {host_cores}-core host",
            Benchmark::ALL.len(),
            disk_bytes
        ),
        &host_meta(threads),
        &table,
    );

    format!(
        "  \"cold_start\": {{\n    \
           \"benchmark\": \"trace generation + derivation for the automaton-ablation plan\",\n    \
           \"host_cores\": {host_cores},\n    \
           \"disk_artifact_bytes\": {disk_bytes},\n    \
           \"cold_serial\": {{ \"seconds\": {cold_serial_secs:.6} }},\n    \
           \"prefetch\": {{ \"seconds\": {prefetch_secs:.6}, \"speedup\": {prefetch_speedup:.3} }},\n    \
           \"warm_disk\": {{ \"seconds\": {warm_disk_secs:.6}, \"speedup\": {warm_speedup:.3} }}\n  }}"
    )
}

/// The kernel tiers the scaling sweep forces, narrowest to widest.
const SCALING_TIERS: [SimdMode; 4] =
    [SimdMode::Swar, SimdMode::Sse2, SimdMode::Avx2, SimdMode::Avx512];

/// Scaling: one big replay batch swept over workers × kernel tier.
///
/// The batch is 128 same-width members — the six automata cycled over
/// duplicate PAg(12) jobs on the longest benchmark trace. Duplicates
/// are legal in a plan and member outcomes are independent of batch
/// composition, so the padding changes throughput, never results; 128
/// members of one width make eight transposed words per PHT row, the
/// full 512-bit AVX-512 step, and give the intra-batch split eight
/// word-atoms to fan across the pool. Every cell's outcomes are
/// asserted bit-identical to the warm single-threaded reference.
fn scaling_section(ctx: &Ctx, iterations: u32, _threads: usize) -> String {
    // The longest trace: stream-walk time dominates there, which is the
    // configuration worth scaling.
    let benchmark = Benchmark::ALL
        .iter()
        .max_by_key(|benchmark| ctx.store().get_packed(benchmark, DataSet::Testing).len())
        .expect("the benchmark catalog is non-empty");
    let plan: Plan = (0..128)
        .map(|index| {
            let automaton = Automaton::ALL[index % Automaton::ALL.len()];
            Job::scheme(SchemeConfig::pag(12).with_automaton(automaton), benchmark)
        })
        .collect();

    // Warm run: derives and caches the pattern stream, and supplies the
    // reference outcomes plus the shared numerator.
    let reference = execute(&plan, ctx.store());
    let scaling_predictions: u64 =
        reference.iter().filter_map(|(_, o)| o.metrics()).map(|m| m.sim.predictions).sum();

    let cores = host_cores();
    let mut table = Table::new(vec![
        "workers".into(),
        "kernel".into(),
        "resolved".into(),
        format!("seconds (best of {iterations})"),
        "predictions/sec".into(),
        "speedup vs 1 worker".into(),
    ]);
    let mut rows = Vec::new();
    let mut peak: Option<(usize, SimdMode, f64)> = None;
    for mode in SCALING_TIERS {
        let mut single_worker_secs = None;
        for workers in 1..=cores {
            let pool = SweepPool::new(workers);
            let secs = best_of(iterations, || {
                let results = execute_with(
                    &pool,
                    &plan,
                    ctx.store(),
                    ExecOptions { simd: mode, ..ExecOptions::default() },
                );
                assert_eq!(results.len(), plan.len());
            });
            // Bit-identity across every worker count and kernel tier —
            // outside the timed region.
            let check = execute_with(
                &pool,
                &plan,
                ctx.store(),
                ExecOptions { simd: mode, ..ExecOptions::default() },
            );
            for index in 0..plan.len() {
                assert_eq!(
                    check.outcome(index),
                    reference.outcome(index),
                    "job {index} diverged at {workers} workers under {mode:?}"
                );
            }
            let eps = scaling_predictions as f64 / secs;
            let single = *single_worker_secs.get_or_insert(secs);
            if peak.is_none_or(|(_, _, best)| eps > best) {
                peak = Some((workers, mode, eps));
            }
            table.push_row(vec![
                workers.to_string(),
                mode.name().into(),
                mode.resolved_name().into(),
                format!("{secs:.3}"),
                format!("{eps:.0}"),
                format!("{:.2}", single / secs),
            ]);
            rows.push(format!(
                "      {{ \"workers\": {workers}, \"kernel\": \"{kernel}\", \
                 \"resolved\": \"{resolved}\", \"seconds\": {secs:.6}, \
                 \"events_per_sec\": {eps:.1} }}",
                kernel = mode.name(),
                resolved = mode.resolved_name(),
            ));
        }
    }
    let (peak_workers, peak_mode, peak_eps) = peak.expect("at least one scaling cell ran");

    ctx.emit_with_meta(
        "BENCH_scaling",
        &format!(
            "Replay scaling: one 128-member batch on {}, workers 1..={cores} x kernel tier \
             (peak {peak_eps:.0} preds/s at {peak_workers} worker(s), {})",
            benchmark.name(),
            peak_mode.name()
        ),
        &host_meta(cores),
        &table,
    );

    format!(
        "  \"scaling\": {{\n    \
           \"benchmark\": \"128-member PAg(12) automaton batch on {name}, no context switches\",\n    \
           \"jobs\": {jobs},\n    \
           \"host_cores\": {cores},\n    \
           \"detected_tier\": \"{detected}\",\n    \
           \"measured_predictions\": {scaling_predictions},\n    \
           \"peak\": {{ \"workers\": {peak_workers}, \"kernel\": \"{peak_kernel}\", \
           \"events_per_sec\": {peak_eps:.1} }},\n    \
           \"rows\": [\n{rows}\n    ]\n  }}",
        name = benchmark.name(),
        jobs = plan.len(),
        detected = SimdMode::Auto.resolved_name(),
        peak_kernel = peak_mode.name(),
        rows = rows.join(",\n"),
    )
}

/// Concurrent clients the service load generator drives per cell.
const SERVICE_CLIENTS: usize = 64;
/// Timed rounds each client submits in the memo-hit cells.
const SERVICE_MEMO_ROUNDS: usize = 16;

/// The exact response byte stream the daemon must produce for `plan`:
/// one result frame per job in plan order, then the terminal done frame,
/// each newline-terminated.
fn service_expected_bytes(plan: &Plan, results: &tlabp_sim::ResultSet, memo: bool) -> Vec<u8> {
    use tlabp_service::proto::{done_payload, encode_frame, result_payload, FrameKind};
    let mut bytes = Vec::new();
    for index in 0..plan.len() {
        let payload = result_payload(index, results.outcome(index));
        bytes.extend_from_slice(encode_frame(FrameKind::Result, &payload).as_bytes());
        bytes.push(b'\n');
    }
    bytes.extend_from_slice(
        encode_frame(FrameKind::Done, &done_payload(plan.len(), memo)).as_bytes(),
    );
    bytes.push(b'\n');
    bytes
}

/// One timed service cell's aggregate numbers.
struct ServiceCell {
    seconds: f64,
    plans_per_s: f64,
    frames_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Drives `clients` concurrent raw-socket clients against the daemon at
/// `addr`: each submits `rounds` copies of the pre-encoded plan frame
/// and `read_exact`s the full response, byte-compared against the
/// expected in-process encoding. Returns the aggregate rates and the
/// per-plan latency percentiles across all clients.
fn service_drive(
    addr: &str,
    clients: usize,
    rounds: usize,
    plan_frame: &std::sync::Arc<Vec<u8>>,
    expected: &std::sync::Arc<Vec<u8>>,
    frames_per_plan: usize,
) -> ServiceCell {
    use std::io::{Read, Write};

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let addr = addr.to_owned();
            let plan_frame = std::sync::Arc::clone(plan_frame);
            let expected = std::sync::Arc::clone(expected);
            std::thread::spawn(move || {
                let mut stream =
                    std::net::TcpStream::connect(&addr).expect("bench client connects");
                stream.set_nodelay(true).expect("set_nodelay");
                let mut response = vec![0u8; expected.len()];
                let mut latencies = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    let sent = Instant::now();
                    stream.write_all(&plan_frame).expect("plan frame writes");
                    stream.read_exact(&mut response).expect("full response reads");
                    latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                    assert!(
                        response == *expected.as_slice(),
                        "client {client} round {round}: daemon response bytes diverged \
                         from the in-process execution"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|handle| handle.join().expect("bench client thread"))
        .collect();
    let seconds = start.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    let plans = (clients * rounds) as f64;
    ServiceCell {
        seconds,
        plans_per_s: plans / seconds,
        frames_per_s: plans * frames_per_plan as f64 / seconds,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// The **service** section: event core vs threaded baseline under
/// concurrent load. Iteration count is ignored — each cell already
/// aggregates over `clients x rounds` submissions.
fn service_section(ctx: &Ctx, _iterations: u32, threads: usize) -> String {
    use std::sync::Arc;
    use std::time::Duration;
    use tlabp_service::proto::{encode_frame, FrameKind};
    use tlabp_service::{
        Client, MemoDirMode, ServeBackend, ServeConfig, SweepServer, DEFAULT_INFLIGHT,
        DEFAULT_MEMO_BYTES,
    };

    // Memo-hit plan: three schemes across the whole catalog — 27 jobs of
    // canonical JSON per submission and 28 response frames, the shape
    // that exposes the backends' per-plan overhead asymmetry.
    let memo_plan: Plan = [SchemeConfig::pag(12), SchemeConfig::gag(10), SchemeConfig::gsg(6)]
        .iter()
        .flat_map(|&config| {
            Benchmark::ALL.iter().map(move |benchmark| Job::scheme(config, benchmark))
        })
        .collect();

    // Cold plan: one cheap job on the shortest trace. With memoization
    // off every submission simulates, so this cell is simulation-bound.
    let short = Benchmark::ALL
        .iter()
        .min_by_key(|benchmark| ctx.store().get_packed(benchmark, DataSet::Testing).len())
        .expect("catalog is non-empty");
    let cold_plan: Plan = std::iter::once(Job::scheme(SchemeConfig::btfn(), short)).collect();

    // In-process reference executions: the byte streams every timed
    // response is compared against.
    let memo_results = ctx.run(&memo_plan);
    let cold_results = ctx.run(&cold_plan);
    let frame_bytes = |plan: &Plan| {
        let mut bytes = encode_frame(FrameKind::Plan, &plan.to_json_string()).into_bytes();
        bytes.push(b'\n');
        Arc::new(bytes)
    };
    let memo_frame = frame_bytes(&memo_plan);
    let cold_frame = frame_bytes(&cold_plan);
    let memo_expected = Arc::new(service_expected_bytes(&memo_plan, &memo_results, true));
    let cold_expected = Arc::new(service_expected_bytes(&cold_plan, &cold_results, false));

    let spawn_server = |backend: ServeBackend, memo_bytes: usize| -> String {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            memo_bytes,
            window: None,
            inflight: DEFAULT_INFLIGHT,
            memo_dir: MemoDirMode::Off,
            memo_disk_bytes: None,
            backend,
        };
        let server = SweepServer::bind(&config, ctx.store().clone(), ExecOptions::default())
            .expect("bench daemon binds");
        let addr = server.local_addr().expect("bound address").to_string();
        std::thread::spawn(move || server.run());
        addr
    };

    let mut table = Table::new(vec![
        "backend".into(),
        "mode".into(),
        "clients".into(),
        "plans".into(),
        "plans/s".into(),
        "frames/s".into(),
        "p50 ms".into(),
        "p99 ms".into(),
    ]);
    let mut rows = Vec::new();
    let mut threaded_memo_rate = 0.0f64;
    let mut event_memo_rate = 0.0f64;
    for backend in [ServeBackend::Threaded, ServeBackend::Auto] {
        let label = match backend {
            ServeBackend::Threaded => "threaded",
            _ => "event",
        };

        // Cold cell: memoization off, one submission per client.
        let addr = spawn_server(backend, 0);
        let cold = service_drive(
            &addr,
            SERVICE_CLIENTS,
            1,
            &cold_frame,
            &cold_expected,
            cold_plan.len() + 1,
        );

        // Memo cell: one untimed warm execution through the structured
        // client (verifying the decoded results too), then every timed
        // submission is a memo hit.
        let addr = spawn_server(backend, DEFAULT_MEMO_BYTES);
        let mut client = Client::connect_with_retry(&addr, Duration::from_secs(10))
            .expect("bench daemon reachable");
        let (warm, done) = client.execute(&memo_plan).expect("warm submission");
        assert!(!done.memo, "the first submission must simulate");
        assert_eq!(
            warm.to_json_string(),
            memo_results.to_json_string(),
            "daemon results must be bit-identical to the in-process execution"
        );
        drop(client);
        let memo = service_drive(
            &addr,
            SERVICE_CLIENTS,
            SERVICE_MEMO_ROUNDS,
            &memo_frame,
            &memo_expected,
            memo_plan.len() + 1,
        );
        match backend {
            ServeBackend::Threaded => threaded_memo_rate = memo.plans_per_s,
            _ => event_memo_rate = memo.plans_per_s,
        }

        for (mode, rounds, cell) in [("cold", 1, &cold), ("memo", SERVICE_MEMO_ROUNDS, &memo)] {
            let plans = SERVICE_CLIENTS * rounds;
            table.push_row(vec![
                label.into(),
                mode.into(),
                SERVICE_CLIENTS.to_string(),
                plans.to_string(),
                format!("{:.1}", cell.plans_per_s),
                format!("{:.1}", cell.frames_per_s),
                format!("{:.3}", cell.p50_ms),
                format!("{:.3}", cell.p99_ms),
            ]);
            rows.push(format!(
                "      {{ \"backend\": \"{label}\", \"mode\": \"{mode}\", \
                 \"plans\": {plans}, \"seconds\": {:.6}, \"plans_per_s\": {:.1}, \
                 \"frames_per_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}",
                cell.seconds, cell.plans_per_s, cell.frames_per_s, cell.p50_ms, cell.p99_ms
            ));
        }
    }

    let memo_speedup = event_memo_rate / threaded_memo_rate;
    ctx.emit_with_meta(
        "BENCH_service",
        &format!(
            "Sweep service: {SERVICE_CLIENTS} concurrent clients, event core vs threaded \
             baseline (memo-hit speedup {memo_speedup:.2}x), every response byte-verified"
        ),
        &host_meta(threads),
        &table,
    );

    format!(
        "  \"service\": {{\n    \
           \"benchmark\": \"{SERVICE_CLIENTS} concurrent clients, cold vs memo-hit plans, \
           event core vs threaded baseline, responses byte-verified\",\n    \
           \"clients\": {SERVICE_CLIENTS},\n    \
           \"memo_plan_jobs\": {jobs},\n    \
           \"memo_speedup\": {memo_speedup:.3},\n    \
           \"rows\": [\n{rows}\n    ]\n  }}",
        jobs = memo_plan.len(),
        rows = rows.join(",\n"),
    )
}

/// Events the streaming section replays: 64 replay blocks (2^20), tiled
/// from a real benchmark stream. At four resident bytes per unlaned
/// event (eight laned) this is far above the window cap derived below.
const STREAM_BENCH_EVENTS: usize = 64 << 14;

/// Encoded chunk budget for the streaming section's artifact: small
/// enough that the section spans dozens of chunks even after the
/// varint+delta encoding, so the bounded ring actually cycles.
const STREAM_BENCH_CHUNK_BYTES: usize = 128 << 10;

/// Batch width of the streaming section: the full transposed-word shape
/// the scaling section uses. A wide batch makes replay compute per
/// decoded byte realistic — the regime streaming is for — instead of
/// measuring the decode thread against a nearly-free walk.
const STREAM_BENCH_MEMBERS: usize = 128;

/// The **stream** section: bounded-memory streaming replay vs the fully
/// hydrated walk, bit-identity asserted, peak residency reported.
fn stream_section(ctx: &Ctx, iterations: u32, threads: usize) -> String {
    use std::sync::Arc;
    use tlabp_core::any::AnyPredictor;
    use tlabp_sim::{
        replay_stream_key, simulate_replay_transposed, simulate_replay_transposed_streamed,
        StreamCursor, StreamWindow,
    };
    use tlabp_trace::io::{write_artifacts_chunked, ChunkedArtifact};
    use tlabp_trace::PatternStream;

    let mode = SimdMode::from_env();
    let config = SchemeConfig::pag(12);
    let key = replay_stream_key(config).expect("PAg(12) replays");

    // Tile the longest benchmark's real first-level stream up to the
    // section's event budget: real branch patterns, controlled size.
    // Tiling cannot break stream invariants (`from_raw_parts` recheck),
    // and both measured modes walk the identical tiled sequence.
    let benchmark = Benchmark::ALL
        .iter()
        .max_by_key(|benchmark| ctx.store().get_packed(benchmark, DataSet::Testing).len())
        .expect("the benchmark catalog is non-empty");
    let base = ctx.store().get_pattern_stream(benchmark, DataSet::Testing, key);
    let reps = STREAM_BENCH_EVENTS.div_ceil(base.len().max(1)).max(1);
    let stream = PatternStream::from_raw_parts(
        base.history_bits(),
        base.events().repeat(reps),
        base.lanes().repeat(reps),
        base.is_laned(),
    )
    .expect("tiling a valid stream yields a valid stream");
    let resident_bytes = stream.bytes();

    // Persist the stream as a many-chunk v3 artifact in a throwaway dir.
    let dir = std::env::temp_dir().join(format!("tlabp-bench-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join("stream-bench.tlabp");
    let key_bytes = key.to_bytes();
    std::fs::write(
        &path,
        write_artifacts_chunked(
            0,
            None,
            None,
            None,
            &[(key_bytes.clone(), &stream)],
            STREAM_BENCH_CHUNK_BYTES,
        ),
    )
    .expect("bench artifact writes");

    // The window cap: a quarter of the hydrated stream, floored at four
    // of the artifact's largest chunks so the ring always has room for
    // its minimum occupancy (producer + consumer + depth >= 1).
    let info = ChunkedArtifact::open(&path)
        .expect("just-written artifact opens")
        .find_stream(&key_bytes)
        .expect("just-written section is present");
    let per_event = if info.laned { 8 } else { 4 };
    let chunk_resident = info.chunk_items.iter().copied().max().unwrap_or(0) as usize * per_event;
    let cap_bytes = (resident_bytes / 4).max(4 * chunk_resident);
    let over_cap = resident_bytes as f64 / cap_bytes as f64;
    let chunks = info.chunk_items.len();

    let predictors: Vec<AnyPredictor> = (0..STREAM_BENCH_MEMBERS)
        .map(|index| {
            let automaton = Automaton::ALL[index % Automaton::ALL.len()];
            config.with_automaton(automaton).build_any().expect("untrained PAg builds")
        })
        .collect();
    let reference =
        simulate_replay_transposed(&predictors, &stream, mode).expect("PAg replays in memory");
    let predictions = (stream.len() * predictors.len()) as u64;

    let hydrated_secs = best_of(iterations, || {
        let sims =
            simulate_replay_transposed(&predictors, &stream, mode).expect("PAg replays in memory");
        assert_eq!(sims.len(), predictors.len());
    });

    let window = Arc::new(StreamWindow::new());
    window.reset_peak();
    let streamed_secs = best_of(iterations, || {
        let mut cursor = StreamCursor::open(&path, &key_bytes, cap_bytes, &window)
            .expect("bench artifact streams");
        let sims = simulate_replay_transposed_streamed(&predictors, &mut cursor, mode)
            .expect("PAg replays streamed")
            .expect("bench artifact is intact");
        assert_eq!(sims, reference, "streamed replay diverged from the hydrated walk");
    });
    let peak_bytes = window.peak();
    assert!(
        peak_bytes <= cap_bytes,
        "streaming window peaked at {peak_bytes} bytes, above the {cap_bytes}-byte cap"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let hydrated_eps = predictions as f64 / hydrated_secs;
    let streamed_eps = predictions as f64 / streamed_secs;
    let ratio = hydrated_secs / streamed_secs;

    let mut table = Table::new(vec![
        "mode".into(),
        format!("seconds (best of {iterations})"),
        "predictions/sec".into(),
        "resident bytes".into(),
        "vs hydrated".into(),
    ]);
    table.push_row(vec![
        "hydrated".into(),
        format!("{hydrated_secs:.3}"),
        format!("{hydrated_eps:.0}"),
        resident_bytes.to_string(),
        "1.00".into(),
    ]);
    table.push_row(vec![
        format!("streamed ({chunks} chunks)"),
        format!("{streamed_secs:.3}"),
        format!("{streamed_eps:.0}"),
        format!("{peak_bytes} (cap {cap_bytes})"),
        format!("{ratio:.2}"),
    ]);
    ctx.emit_with_meta(
        "BENCH_stream",
        &format!(
            "Streaming replay: {} tiled events x {} automata, {over_cap:.1}x the window cap, \
             bit-identical",
            stream.len(),
            predictors.len()
        ),
        &host_meta(threads),
        &table,
    );

    format!(
        "  \"stream\": {{\n    \
           \"benchmark\": \"PAg(12) automaton batch on {name} tiled x{reps}, streamed vs hydrated\",\n    \
           \"events\": {events},\n    \
           \"chunks\": {chunks},\n    \
           \"measured_predictions\": {predictions},\n    \
           \"stream_bytes\": {resident_bytes},\n    \
           \"window_cap_bytes\": {cap_bytes},\n    \
           \"window_peak_bytes\": {peak_bytes},\n    \
           \"stream_over_cap\": {over_cap:.2},\n    \
           \"hydrated\": {{ \"seconds\": {hydrated_secs:.6}, \"events_per_sec\": {hydrated_eps:.1} }},\n    \
           \"streamed\": {{ \"seconds\": {streamed_secs:.6}, \"events_per_sec\": {streamed_eps:.1} }},\n    \
           \"throughput_ratio\": {ratio:.3}\n  }}",
        name = benchmark.name(),
        events = stream.len(),
    )
}

/// Per-form cache footprint of everything the run materialized, with the
/// `TLABP_CACHE_BYTES` soft-cap warning. The soft cap covers every row —
/// hydrated forms, v3 disk artifacts and the live streaming window.
fn report_cache_bytes(ctx: &Ctx) {
    let bytes = ctx.store().cache_bytes();
    let mib = |n: usize| format!("{:.2}", n as f64 / (1024.0 * 1024.0));
    let mut table = Table::new(vec!["cached form".into(), "bytes".into(), "MiB".into()]);
    table.push_row(vec!["packed".into(), bytes.packed.to_string(), mib(bytes.packed)]);
    table.push_row(vec!["interned".into(), bytes.interned.to_string(), mib(bytes.interned)]);
    table.push_row(vec!["pattern streams".into(), bytes.streams.to_string(), mib(bytes.streams)]);
    table.push_row(vec!["disk artifacts".into(), bytes.disk.to_string(), mib(bytes.disk)]);
    table.push_row(vec![
        "streaming window".into(),
        bytes.stream_window.to_string(),
        mib(bytes.stream_window),
    ]);
    table.push_row(vec!["total".into(), bytes.total().to_string(), mib(bytes.total())]);
    ctx.emit("BENCH_cache_bytes", "Trace cache footprint by form", &table);
    let cap = cache_bytes_cap();
    if bytes.total() > cap {
        eprintln!(
            "warning: trace cache holds {} bytes, above the TLABP_CACHE_BYTES soft cap of {cap}",
            bytes.total()
        );
    }
}
