//! Target address caching (Section 3.2) integrated with the direction
//! predictor: the fetch-engine view of branch prediction.
//!
//! "After the direction of a branch is predicted, there is still the
//! possibility of a pipeline bubble due to the time it takes to generate
//! the target address. To eliminate this bubble, we cache the target
//! addresses of branches." This artifact runs PAg(12) as the direction
//! predictor with a 4-way 512-entry target cache over *every* branch
//! class (conditional, unconditional, call, return) and reports how often
//! the fetch engine proceeds down the correct path with the target in
//! hand.

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::predictor::BranchPredictor;
use tlabp_core::schemes::Pag;
use tlabp_core::target_cache::{FetchOutcome, TargetCache};
use tlabp_sim::report::Table;
use tlabp_workloads::{Benchmark, DataSet};

use crate::Ctx;

/// Per-benchmark fetch-path statistics.
pub fn fetch(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "branches (all classes)".into(),
        "correct path %".into(),
        "no-bubble taken fetch %".into(),
        "wrong-path squashes %".into(),
        "return-target misses %".into(),
    ]);

    for benchmark in &Benchmark::ALL {
        let trace = ctx.store().get(benchmark, DataSet::Testing);
        let mut direction = Pag::new(12, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        let mut cache = TargetCache::new(512, 4);

        let mut total = 0u64;
        let mut correct_path = 0u64;
        let mut no_bubble_taken = 0u64;
        let mut squashes = 0u64;
        let mut return_misses = 0u64;
        for branch in trace.branches() {
            // Direction: conditional branches consult the predictor;
            // everything else is architecturally taken.
            let predicted_taken = if branch.class.is_conditional() {
                let predicted = direction.predict(branch);
                direction.update(branch);
                predicted
            } else {
                true
            };
            let outcome = cache.fetch(branch, predicted_taken);
            cache.resolve(branch);

            total += 1;
            correct_path += u64::from(outcome.is_correct_path());
            match outcome {
                FetchOutcome::HitCorrectTarget => no_bubble_taken += 1,
                FetchOutcome::HitWrongPath => {
                    squashes += 1;
                    // Returns are the class whose target moves between
                    // executions (different call sites) — the classic
                    // motivation for return-address stacks.
                    if branch.class == tlabp_trace::BranchClass::Return {
                        return_misses += 1;
                    }
                }
                FetchOutcome::HitFallThrough { correct } | FetchOutcome::Miss { correct } => {
                    squashes += u64::from(!correct);
                }
            }
        }
        let pct = |n: u64| format!("{:.2}", 100.0 * n as f64 / total.max(1) as f64);
        table.push_row(vec![
            benchmark.name().into(),
            total.to_string(),
            pct(correct_path),
            pct(no_bubble_taken),
            pct(squashes),
            pct(return_misses),
        ]);
    }
    ctx.emit(
        "fetch",
        "Section 3.2: fetch-path outcomes with target address caching",
        &table,
    );
}
