//! Target address caching (Section 3.2) integrated with the direction
//! predictor: the fetch-engine view of branch prediction.
//!
//! "After the direction of a branch is predicted, there is still the
//! possibility of a pipeline bubble due to the time it takes to generate
//! the target address. To eliminate this bubble, we cache the target
//! addresses of branches." This artifact runs PAg(12) as the direction
//! predictor with a 4-way 512-entry target cache over *every* branch
//! class (conditional, unconditional, call, return) and reports how often
//! the fetch engine proceeds down the correct path with the target in
//! hand. The fetch loop itself lives in the execution engine
//! ([`MetricSet::fetch`]); this driver only declares the plan and formats
//! the counters.
//!
//! [`MetricSet::fetch`]: tlabp_sim::plan::MetricSet

use tlabp_core::config::SchemeConfig;
use tlabp_sim::plan::{Job, MetricSet, Plan, TargetCacheSpec};
use tlabp_sim::report::Table;
use tlabp_workloads::Benchmark;

use crate::Ctx;

/// The plan behind [`fetch`]: PAg(12) on every benchmark with the
/// paper-default target cache in the fetch path.
pub fn fetch_plan() -> Plan {
    let metrics = MetricSet { miss_breakdown: false, fetch: Some(TargetCacheSpec::PAPER_DEFAULT) };
    Benchmark::ALL
        .iter()
        .map(|benchmark| Job::scheme(SchemeConfig::pag(12), benchmark).with_metrics(metrics))
        .collect()
}

/// Per-benchmark fetch-path statistics.
pub fn fetch(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "branches (all classes)".into(),
        "correct path %".into(),
        "no-bubble taken fetch %".into(),
        "wrong-path squashes %".into(),
        "return-target misses %".into(),
    ]);

    let results = ctx.run(&fetch_plan());

    for (job, outcome) in &results {
        let stats = outcome.metrics().and_then(|m| m.fetch).expect("fetch stats requested");
        let pct = |n: u64| format!("{:.2}", 100.0 * n as f64 / stats.branches.max(1) as f64);
        table.push_row(vec![
            job.trace.benchmark.name().into(),
            stats.branches.to_string(),
            pct(stats.correct_path),
            pct(stats.no_bubble_taken),
            pct(stats.squashes),
            pct(stats.return_target_misses),
        ]);
    }
    ctx.emit("fetch", "Section 3.2: fetch-path outcomes with target address caching", &table);
}
