//! Accuracy ablations of the paper's design choices (DESIGN.md §4).

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::config::SchemeConfig;
use tlabp_core::registry;
use tlabp_core::schemes::Pag;
use tlabp_core::speculative::{HistoryUpdatePolicy, MispredictRepair, SpeculativeGag};
use tlabp_sim::plan::{Job, Plan};
use tlabp_sim::report::Table;
use tlabp_sim::runner::SimConfig;
use tlabp_workloads::Benchmark;

use crate::Ctx;

/// Section 3.1: speculative history update vs. waiting for resolution,
/// across pipeline depths, on the GAg structure (where staleness hurts
/// most because every branch shares the history register).
pub fn ablation_speculative(ctx: &Ctx) {
    const BENCHMARKS: [&str; 3] = ["eqntott", "gcc", "tomcatv"];
    let benchmarks: Vec<&'static Benchmark> =
        BENCHMARKS.iter().map(|name| Benchmark::by_name(name).expect("known benchmark")).collect();
    let mut table = Table::new(
        std::iter::once("policy".to_owned())
            .chain(BENCHMARKS.iter().map(|b| (*b).to_owned()))
            .collect(),
    );

    let policies: Vec<(String, HistoryUpdatePolicy)> = [0usize, 2, 4, 8]
        .iter()
        .flat_map(|&delay| {
            [
                (format!("stale history, depth {delay}"), HistoryUpdatePolicy::OnResolve { delay }),
                (
                    format!("speculative+repair, depth {delay}"),
                    HistoryUpdatePolicy::Speculative { delay, repair: MispredictRepair::Repair },
                ),
                (
                    format!("speculative+reinit, depth {delay}"),
                    HistoryUpdatePolicy::Speculative {
                        delay,
                        repair: MispredictRepair::Reinitialize,
                    },
                ),
            ]
        })
        .collect();

    // SpeculativeGag lives outside the Table 3 catalog: each policy
    // variant registers a builder once, then the whole (policy ×
    // benchmark) matrix is one plan.
    for (name, policy) in &policies {
        let policy = *policy;
        registry::register(name, move || Box::new(SpeculativeGag::new(12, Automaton::A2, policy)));
    }
    let plan: Plan = policies
        .iter()
        .flat_map(|(name, _)| {
            benchmarks.iter().map(move |&benchmark| Job::custom(name.clone(), benchmark))
        })
        .collect();
    let accuracies = ctx.run(&plan).accuracies();
    for ((name, _), row) in policies.iter().zip(accuracies.chunks(benchmarks.len())) {
        let mut cells = vec![name.clone()];
        cells.extend(row.iter().map(|a| format!("{:.2}", 100.0 * a.expect("measurable"))));
        table.push_row(cells);
    }
    ctx.emit(
        "ablation_speculative",
        "Ablation (Section 3.1): history update policy under pipeline depth",
        &table,
    );
}

/// Section 5.1.4's design decision: the PHT is *not* reinitialized on a
/// context switch. Quantify what flushing it would cost.
pub fn ablation_flush_pht(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "keep PHT (paper) %".into(),
        "flush PHT too %".into(),
        "cost of flushing (points)".into(),
    ]);
    // The flush variant is a modified PAg outside the catalog; the keep
    // variant is plain PAg(12). Both jobs simulate the paper's
    // context-switch model, which the engine lowers onto the full-trace
    // path (the packed stream has no traps or instruction counts).
    registry::register("PAg(12)+flushPHT", || {
        let mut p = Pag::new(12, BhtConfig::PAPER_DEFAULT, Automaton::A2);
        p.set_flush_pht_on_context_switch(true);
        Box::new(p)
    });
    let sim = SimConfig::paper_context_switch();
    let plan: Plan = Benchmark::ALL
        .iter()
        .flat_map(|benchmark| {
            [
                Job::scheme(SchemeConfig::pag(12), benchmark).with_sim(sim),
                Job::custom("PAg(12)+flushPHT", benchmark).with_sim(sim),
            ]
        })
        .collect();
    let accuracies = ctx.run(&plan).accuracies();
    for (benchmark, pair) in Benchmark::ALL.iter().zip(accuracies.chunks(2)) {
        let (keep, flush) = (pair[0].expect("measurable"), pair[1].expect("measurable"));
        table.push_row(vec![
            benchmark.name().into(),
            format!("{:.2}", 100.0 * keep),
            format!("{:.2}", 100.0 * flush),
            format!("{:.2}", 100.0 * (keep - flush)),
        ]);
    }
    ctx.emit(
        "ablation_flush_pht",
        "Ablation (Section 5.1.4): reinitializing the PHT on context switches",
        &table,
    );
}

/// Both ablations.
pub fn ablations(ctx: &Ctx) {
    ablation_speculative(ctx);
    ablation_flush_pht(ctx);
}
