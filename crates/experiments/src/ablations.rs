//! Accuracy ablations of the paper's design choices (DESIGN.md §4).

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::schemes::Pag;
use tlabp_core::speculative::{HistoryUpdatePolicy, MispredictRepair, SpeculativeGag};
use tlabp_sim::report::Table;
use tlabp_sim::runner::{simulate, simulate_packed, SimConfig};
use tlabp_sim::SweepPool;
use tlabp_workloads::{Benchmark, DataSet};

use crate::Ctx;

/// Section 3.1: speculative history update vs. waiting for resolution,
/// across pipeline depths, on the GAg structure (where staleness hurts
/// most because every branch shares the history register).
pub fn ablation_speculative(ctx: &Ctx) {
    const BENCHMARKS: [&str; 3] = ["eqntott", "gcc", "tomcatv"];
    let benchmarks = BENCHMARKS;
    let mut table = Table::new(
        std::iter::once("policy".to_owned())
            .chain(benchmarks.iter().map(|b| (*b).to_owned()))
            .collect(),
    );

    let policies: Vec<(String, HistoryUpdatePolicy)> = [0usize, 2, 4, 8]
        .iter()
        .flat_map(|&delay| {
            [
                (
                    format!("stale history, depth {delay}"),
                    HistoryUpdatePolicy::OnResolve { delay },
                ),
                (
                    format!("speculative+repair, depth {delay}"),
                    HistoryUpdatePolicy::Speculative {
                        delay,
                        repair: MispredictRepair::Repair,
                    },
                ),
                (
                    format!("speculative+reinit, depth {delay}"),
                    HistoryUpdatePolicy::Speculative {
                        delay,
                        repair: MispredictRepair::Reinitialize,
                    },
                ),
            ]
        })
        .collect();

    // A (policy × benchmark) cell matrix on the sweep pool.
    let cells = policies.iter().flat_map(|(_, policy)| {
        BENCHMARKS.iter().map(|benchmark| {
            let policy = *policy;
            let store = ctx.store().clone();
            move || {
                let packed = store.get_packed(
                    Benchmark::by_name(benchmark).expect("known benchmark"),
                    DataSet::Testing,
                );
                let mut predictor = SpeculativeGag::new(12, Automaton::A2, policy);
                let result = simulate_packed(&mut predictor, &packed);
                format!("{:.2}", 100.0 * result.accuracy())
            }
        })
    });
    let accuracies = SweepPool::global().run(cells);
    for ((name, _), row) in policies.iter().zip(accuracies.chunks(benchmarks.len())) {
        let mut cells = vec![name.clone()];
        cells.extend_from_slice(row);
        table.push_row(cells);
    }
    ctx.emit(
        "ablation_speculative",
        "Ablation (Section 3.1): history update policy under pipeline depth",
        &table,
    );
}

/// Section 5.1.4's design decision: the PHT is *not* reinitialized on a
/// context switch. Quantify what flushing it would cost.
pub fn ablation_flush_pht(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "keep PHT (paper) %".into(),
        "flush PHT too %".into(),
        "cost of flushing (points)".into(),
    ]);
    // Context switches need the full trace (traps and instruction
    // counts), so these pool cells use the unpacked simulation loop.
    let cells = Benchmark::ALL.iter().flat_map(|benchmark| {
        [false, true].map(|flush| {
            let store = ctx.store().clone();
            move || {
                let trace = store.get(benchmark, DataSet::Testing);
                let mut p = Pag::new(12, BhtConfig::PAPER_DEFAULT, Automaton::A2);
                p.set_flush_pht_on_context_switch(flush);
                simulate(&mut p, &trace, &SimConfig::paper_context_switch()).accuracy()
            }
        })
    });
    let accuracies = SweepPool::global().run(cells);
    for (benchmark, pair) in Benchmark::ALL.iter().zip(accuracies.chunks(2)) {
        let (keep, flush) = (pair[0], pair[1]);
        table.push_row(vec![
            benchmark.name().into(),
            format!("{:.2}", 100.0 * keep),
            format!("{:.2}", 100.0 * flush),
            format!("{:.2}", 100.0 * (keep - flush)),
        ]);
    }
    ctx.emit(
        "ablation_flush_pht",
        "Ablation (Section 5.1.4): reinitializing the PHT on context switches",
        &table,
    );
}

/// Both ablations.
pub fn ablations(ctx: &Ctx) {
    ablation_speculative(ctx);
    ablation_flush_pht(ctx);
}
