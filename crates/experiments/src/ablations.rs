//! Accuracy ablations of the paper's design choices (DESIGN.md §4).

use tlabp_core::automaton::Automaton;
use tlabp_core::bht::BhtConfig;
use tlabp_core::schemes::Pag;
use tlabp_core::speculative::{HistoryUpdatePolicy, MispredictRepair, SpeculativeGag};
use tlabp_sim::report::Table;
use tlabp_sim::runner::{simulate, SimConfig};
use tlabp_workloads::{Benchmark, DataSet};

use crate::Ctx;

/// Section 3.1: speculative history update vs. waiting for resolution,
/// across pipeline depths, on the GAg structure (where staleness hurts
/// most because every branch shares the history register).
pub fn ablation_speculative(ctx: &Ctx) {
    let benchmarks = ["eqntott", "gcc", "tomcatv"];
    let mut table = Table::new(
        std::iter::once("policy".to_owned())
            .chain(benchmarks.iter().map(|b| (*b).to_owned()))
            .collect(),
    );

    let policies: Vec<(String, HistoryUpdatePolicy)> = [0usize, 2, 4, 8]
        .iter()
        .flat_map(|&delay| {
            [
                (
                    format!("stale history, depth {delay}"),
                    HistoryUpdatePolicy::OnResolve { delay },
                ),
                (
                    format!("speculative+repair, depth {delay}"),
                    HistoryUpdatePolicy::Speculative {
                        delay,
                        repair: MispredictRepair::Repair,
                    },
                ),
                (
                    format!("speculative+reinit, depth {delay}"),
                    HistoryUpdatePolicy::Speculative {
                        delay,
                        repair: MispredictRepair::Reinitialize,
                    },
                ),
            ]
        })
        .collect();

    for (name, policy) in policies {
        let mut row = vec![name];
        for benchmark in benchmarks {
            let trace = ctx
                .store()
                .get(Benchmark::by_name(benchmark).expect("known benchmark"), DataSet::Testing);
            let mut predictor = SpeculativeGag::new(12, Automaton::A2, policy);
            let result =
                simulate(&mut predictor, &trace, &SimConfig::no_context_switch());
            row.push(format!("{:.2}", 100.0 * result.accuracy()));
        }
        table.push_row(row);
    }
    ctx.emit(
        "ablation_speculative",
        "Ablation (Section 3.1): history update policy under pipeline depth",
        &table,
    );
}

/// Section 5.1.4's design decision: the PHT is *not* reinitialized on a
/// context switch. Quantify what flushing it would cost.
pub fn ablation_flush_pht(ctx: &Ctx) {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "keep PHT (paper) %".into(),
        "flush PHT too %".into(),
        "cost of flushing (points)".into(),
    ]);
    for benchmark in &Benchmark::ALL {
        let trace = ctx.store().get(benchmark, DataSet::Testing);
        let sim = SimConfig::paper_context_switch();
        let run = |flush: bool| {
            let mut p = Pag::new(12, BhtConfig::PAPER_DEFAULT, Automaton::A2);
            p.set_flush_pht_on_context_switch(flush);
            simulate(&mut p, &trace, &sim).accuracy()
        };
        let keep = run(false);
        let flush = run(true);
        table.push_row(vec![
            benchmark.name().into(),
            format!("{:.2}", 100.0 * keep),
            format!("{:.2}", 100.0 * flush),
            format!("{:.2}", 100.0 * (keep - flush)),
        ]);
    }
    ctx.emit(
        "ablation_flush_pht",
        "Ablation (Section 5.1.4): reinitializing the PHT on context switches",
        &table,
    );
}

/// Both ablations.
pub fn ablations(ctx: &Ctx) {
    ablation_speculative(ctx);
    ablation_flush_pht(ctx);
}
